#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dkf {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // traffic-volume scales used in the workload generators.
    const double draw = Gaussian(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= Uniform();
  } while (product > threshold);
  return count;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double draw = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::LoadState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace dkf
