#ifndef DKF_COMMON_CSV_H_
#define DKF_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_series.h"

namespace dkf {

/// Writes rows of string cells as RFC-4180-ish CSV (quotes a cell only when
/// it contains a comma, quote, or newline).
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file.
  static Result<CsvWriter> Open(const std::string& path);

  CsvWriter(CsvWriter&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  CsvWriter& operator=(CsvWriter&& other) noexcept;
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  ~CsvWriter();

  Status WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes; further writes fail.
  Status Close();

 private:
  explicit CsvWriter(FILE* file) : file_(file) {}
  FILE* file_ = nullptr;
};

/// Parses one CSV line into cells (handles quoted cells and embedded
/// commas/quotes; does not handle embedded newlines across lines).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Reads an entire CSV file into rows of cells.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Serializes a TimeSeries as CSV with a header row
/// `timestamp,v0,v1,...`.
Status WriteTimeSeriesCsv(const TimeSeries& series, const std::string& path);

/// Reads a TimeSeries written by WriteTimeSeriesCsv.
Result<TimeSeries> ReadTimeSeriesCsv(const std::string& path);

}  // namespace dkf

#endif  // DKF_COMMON_CSV_H_
