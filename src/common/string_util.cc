#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>

namespace dkf {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StrStrip(std::string_view input) {
  const char* kWhitespace = " \t\r\n\f\v";
  const size_t begin = input.find_first_not_of(kWhitespace);
  if (begin == std::string_view::npos) return std::string_view();
  const size_t end = input.find_last_not_of(kWhitespace);
  return input.substr(begin, end - begin + 1);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool ParseDouble(std::string_view input, double* out) {
  const std::string buf(StrStrip(input));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view input, long long* out) {
  const std::string buf(StrStrip(input));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string DoubleToString(double value) {
  // %.17g always round-trips an IEEE double; prefer the shortest
  // representation that does.
  for (int precision = 6; precision <= 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    double parsed = 0.0;
    if (ParseDouble(candidate, &parsed) && parsed == value) return candidate;
  }
  return StrFormat("%.17g", value);
}

}  // namespace dkf
