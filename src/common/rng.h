#ifndef DKF_COMMON_RNG_H_
#define DKF_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dkf {

/// Deterministic pseudo-random number generator used by every workload
/// generator and noise model in the library.
///
/// The core generator is xoshiro256++ seeded through SplitMix64, which gives
/// reproducible streams across platforms (unlike std::mt19937's
/// distribution functions, whose output is implementation-defined for
/// normal/uniform-real draws). All distribution sampling is implemented
/// here so a (seed, call sequence) pair fully pins down an experiment.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Pareto with scale `xm > 0` and shape `alpha > 0` (heavy-tailed; used
  /// for bursty traffic on/off periods).
  double Pareto(double xm, double alpha);

  /// Poisson with the given mean (Knuth's method for small means, normal
  /// approximation above 64).
  int64_t Poisson(double mean);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Forks an independent generator deterministically derived from this
  /// one's current state (for giving each stream source its own RNG).
  Rng Fork();

  /// The complete generator state: the xoshiro256++ words plus the cached
  /// Box-Muller deviate. Capturing and restoring it mid-stream continues
  /// the draw sequence bit-identically — the checkpoint subsystem relies
  /// on this to replay fault cocktails across a save/restore boundary.
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  State SaveState() const;
  void LoadState(const State& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dkf

#endif  // DKF_COMMON_RNG_H_
