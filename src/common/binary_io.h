#ifndef DKF_COMMON_BINARY_IO_H_
#define DKF_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace dkf {

/// Byte-level little-endian codec underpinning the checkpoint snapshot
/// format (docs/checkpoint.md). Doubles travel as their raw IEEE-754 bit
/// pattern, so every value — including the corrupted payloads a snapshot
/// may carry in its in-flight queue — round-trips bit-exactly. The layer
/// above (src/checkpoint/) decides *what* to write; this file only
/// guarantees that bytes written on one host read back identically on
/// another, independent of native endianness.

/// FNV-1a 64-bit hash — the snapshot payload checksum. Same construction
/// as the 32-bit wire checksum in dsms/message.h, widened for file-sized
/// payloads.
uint64_t Fnv1a64(const uint8_t* data, size_t size);

/// Appends fixed-width little-endian primitives to a growing byte buffer.
/// Never fails; the buffer is a std::string so it can be handed to file
/// I/O and checksummed without a copy.
class BinaryWriter {
 public:
  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  /// Raw IEEE-754 bits; NaN/Inf pass through unchanged.
  void WriteF64(double value);
  void WriteBool(bool value);
  /// u64 byte length followed by the bytes.
  void WriteString(const std::string& value);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over a byte buffer. Every read errors with
/// OutOfRange instead of walking past the end, so a truncated or
/// corrupted snapshot surfaces as a clean Status, never undefined
/// behavior.
class BinaryReader {
 public:
  /// The reader borrows `bytes`; the buffer must outlive it.
  explicit BinaryReader(const std::string& bytes) : bytes_(bytes) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<bool> ReadBool();
  Result<std::string> ReadString();

  /// True when every byte has been consumed — snapshot loads require
  /// this, so trailing garbage is rejected rather than ignored.
  bool AtEnd() const { return offset_ == bytes_.size(); }
  size_t offset() const { return offset_; }
  /// Bytes not yet consumed — lets decoders sanity-check an element count
  /// against the payload before allocating for it.
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  Status Require(size_t count) const;

  const std::string& bytes_;
  size_t offset_ = 0;
};

/// Writes `bytes` to `path` atomically enough for checkpointing: the
/// content goes to `path + ".tmp"` first and is renamed over `path`, so
/// a crash mid-write never leaves a half-written snapshot at the
/// canonical name.
Status WriteFileBytes(const std::string& path, const std::string& bytes);

/// Reads the whole file at `path`. NotFound when it does not exist.
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace dkf

#endif  // DKF_COMMON_BINARY_IO_H_
