#ifndef DKF_COMMON_RESULT_H_
#define DKF_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dkf {

/// `Result<T>` holds either a value of type `T` or a non-OK `Status`
/// explaining why the value is absent (the StatusOr idiom). Accessing the
/// value of an errored result is a programming error and asserts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. The status must be
  /// non-OK; an OK status without a value is meaningless.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns OK when a value is present, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  /// Returns the value, or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> data_;
};

/// Evaluates `rexpr` (a Result<T>), propagating the error to the caller or
/// binding the value to `lhs`. Usable only in functions returning `Status`
/// or `Result<U>`.
#define DKF_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto DKF_CONCAT_(_dkf_result, __LINE__) = (rexpr); \
  if (!DKF_CONCAT_(_dkf_result, __LINE__).ok())      \
    return DKF_CONCAT_(_dkf_result, __LINE__).status(); \
  lhs = std::move(DKF_CONCAT_(_dkf_result, __LINE__)).value()

#define DKF_CONCAT_IMPL_(a, b) a##b
#define DKF_CONCAT_(a, b) DKF_CONCAT_IMPL_(a, b)

}  // namespace dkf

#endif  // DKF_COMMON_RESULT_H_
