#include "serve/interval_index.h"

#include <algorithm>

namespace dkf {

void IntervalIndex::Insert(int64_t id, double lo, double hi) {
  entries_.push_back({lo, hi, id});
  dirty_ = true;
}

void IntervalIndex::Erase(int64_t id) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_[i] = entries_.back();
      entries_.pop_back();
      dirty_ = true;
      return;
    }
  }
}

void IntervalIndex::Rebuild() {
  by_lo_ = entries_;
  std::sort(by_lo_.begin(), by_lo_.end(), [](const Entry& a, const Entry& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.id < b.id;
  });
  by_hi_ = entries_;
  std::sort(by_hi_.begin(), by_hi_.end(), [](const Entry& a, const Entry& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.id < b.id;
  });
  dirty_ = false;
}

size_t IntervalIndex::Changed(double v0, double v1,
                              std::vector<int64_t>* out) {
  if (entries_.empty() || v0 == v1) return 0;
  if (dirty_) Rebuild();
  const double a = std::min(v0, v1);
  const double b = std::max(v0, v1);
  size_t scanned = 0;

  // Intervals that contained a but not b: hi in [a, b), lo <= a.
  auto hi_begin = std::lower_bound(
      by_hi_.begin(), by_hi_.end(), a,
      [](const Entry& e, double v) { return e.hi < v; });
  for (auto it = hi_begin; it != by_hi_.end() && it->hi < b; ++it) {
    ++scanned;
    if (it->lo <= a) out->push_back(it->id);
  }

  // Intervals that contain b but not a: lo in (a, b], hi >= b.
  auto lo_begin = std::upper_bound(
      by_lo_.begin(), by_lo_.end(), a,
      [](double v, const Entry& e) { return v < e.lo; });
  for (auto it = lo_begin; it != by_lo_.end() && it->lo <= b; ++it) {
    ++scanned;
    if (it->hi >= b) out->push_back(it->id);
  }
  return scanned;
}

}  // namespace dkf
