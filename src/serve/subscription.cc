#include "serve/subscription.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace dkf {

namespace {

constexpr const char* kSubscriptionKindNames[static_cast<int>(
    SubscriptionKind::kCount)] = {
    "point",
    "band_alert",
    "range_predicate",
    "aggregate",
    "fused",
};

constexpr const char* kNotificationKindNames[static_cast<int>(
    NotificationKind::kCount)] = {
    "initial",
    "value",
    "band_exit",
    "band_enter",
    "uncertainty_high",
    "uncertainty_ok",
    "predicate_true",
    "predicate_false",
    "aggregate_update",
    "fused_update",
};

}  // namespace

const char* SubscriptionKindName(SubscriptionKind kind) {
  const int index = static_cast<int>(kind);
  if (index < 0 || index >= static_cast<int>(SubscriptionKind::kCount)) {
    return "unknown";
  }
  return kSubscriptionKindNames[index];
}

const char* NotificationKindName(NotificationKind kind) {
  const int index = static_cast<int>(kind);
  if (index < 0 || index >= static_cast<int>(NotificationKind::kCount)) {
    return "unknown";
  }
  return kNotificationKindNames[index];
}

std::string FormatNotification(const Notification& notification) {
  return StrFormat("%lld %d %lld %s %s %s",
                   static_cast<long long>(notification.step),
                   notification.source_id,
                   static_cast<long long>(notification.subscription_id),
                   NotificationKindName(notification.kind),
                   DoubleToString(notification.value).c_str(),
                   DoubleToString(notification.aux).c_str());
}

std::vector<NotificationBatch> MergeNotificationBatches(
    const std::vector<std::vector<NotificationBatch>>& streams) {
  // Group by step across all streams; the per-stream order within a
  // step is preserved (streams are appended in caller order, and the
  // final sort is stable), which is what keeps "same subscription,
  // several kinds in one tick" sequences intact.
  std::map<int64_t, std::vector<Notification>> by_step;
  for (const auto& stream : streams) {
    for (const NotificationBatch& batch : stream) {
      auto& bucket = by_step[batch.step];
      bucket.insert(bucket.end(), batch.notifications.begin(),
                    batch.notifications.end());
    }
  }
  std::vector<NotificationBatch> merged;
  merged.reserve(by_step.size());
  for (auto& [step, notifications] : by_step) {
    std::stable_sort(notifications.begin(), notifications.end(),
                     NotificationOrder);
    NotificationBatch batch;
    batch.step = step;
    batch.notifications = std::move(notifications);
    merged.push_back(std::move(batch));
  }
  return merged;
}

}  // namespace dkf
