#ifndef DKF_SERVE_SUBSCRIPTION_H_
#define DKF_SERVE_SUBSCRIPTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dkf {

/// The standing-query shapes the serving front-end understands. All of
/// them are *push* queries: instead of polling Answer() every tick, a
/// subscriber registers once and the engine delivers notifications only
/// when the subscription is affected — the downlink counterpart of the
/// uplink's event-triggered suppression.
enum class SubscriptionKind : uint8_t {
  /// The current answer for one source, delivered every tick. A point
  /// subscription is affected by every tick by definition; use bands or
  /// range predicates when the subscriber only cares about changes.
  kPoint = 0,
  /// Alert when the server-side estimate x̂ leaves [lo, hi], cleared
  /// when it re-enters; optionally also when the answer's uncertainty
  /// (projected state variance) exceeds `uncertainty_ceiling`.
  kBandAlert,
  /// A continuous predicate "value in [lo, hi]": one notification each
  /// time the truth value flips, in either direction.
  kRangePredicate,
  /// The current answer of a registered aggregate (SUM) query,
  /// delivered whenever any member source's answer moved.
  kAggregate,
  /// The fused posterior of a registered fusion group (docs/fusion.md),
  /// delivered whenever the group estimate moved.
  kFused,
  kCount,  // sentinel
};

/// Stable lower_snake name of a subscription kind ("point", ...).
const char* SubscriptionKindName(SubscriptionKind kind);

/// One standing query, as registered by a subscriber. Ids are chosen by
/// the caller and must be unique across the engine (they are the third
/// component of the delivery order, so reusing an id would make the
/// notification stream ambiguous).
struct Subscription {
  int64_t id = 0;
  SubscriptionKind kind = SubscriptionKind::kPoint;
  /// Target source (point / band-alert / range-predicate kinds). The
  /// predicate reads component 0 of the server-side answer (scalar
  /// streams; the same convention aggregate queries use).
  int source_id = 0;
  /// Target aggregate (kAggregate only).
  int aggregate_id = 0;
  /// Target fusion group (kFused only).
  int group_id = 0;
  /// Band / range bounds (inclusive on both ends).
  double lo = 0.0;
  double hi = 0.0;
  /// Band-alert only: also fire when the projected state variance of
  /// the answer exceeds this ceiling (strictly); 0 disables the check.
  double uncertainty_ceiling = 0.0;
  std::string description;

  friend bool operator==(const Subscription&, const Subscription&) = default;
};

/// Why a notification fired. The enumerator order is part of the golden
/// notification-stream format — append only.
enum class NotificationKind : uint8_t {
  /// The initial answer a subscriber receives on attach: the state of
  /// its subscription evaluated against a single engine state (the tick
  /// boundary the attach happened at).
  kInitial = 0,
  kValue,            // point subscription: this tick's answer
  kBandExit,         // band-alert: estimate left [lo, hi]
  kBandEnter,        // band-alert: estimate re-entered [lo, hi] (cleared)
  kUncertaintyHigh,  // band-alert: variance rose above the ceiling
  kUncertaintyOk,    // band-alert: variance fell back under the ceiling
  kPredicateTrue,    // range predicate flipped to true
  kPredicateFalse,   // range predicate flipped to false
  kAggregateUpdate,  // aggregate answer moved
  kFusedUpdate,      // fused group posterior moved
  kCount,            // sentinel
};

/// Stable lower_snake name of a notification kind ("initial", ...).
const char* NotificationKindName(NotificationKind kind);

/// One delivered event. `source_id` is the subscription's source, or
/// `-1 - aggregate_id` for aggregate subscriptions (negative, so
/// engine-level aggregate notifications sort deterministically ahead of
/// per-source ones at the same step regardless of the shard layout).
struct Notification {
  int64_t step = 0;
  int32_t source_id = 0;
  int64_t subscription_id = 0;
  NotificationKind kind = NotificationKind::kInitial;
  /// The answer (point/aggregate/initial) or the estimate that crossed
  /// (band/range kinds).
  double value = 0.0;
  /// Kind-specific companion: the violated bound (band/range), the
  /// variance (uncertainty kinds), or the predicate truth (initial: 1/0).
  double aux = 0.0;

  friend bool operator==(const Notification&, const Notification&) = default;
};

/// The ordering key fused-group notifications (and group-level trace
/// events) use in place of a source id. Parked far below the aggregate
/// keys (-1 - id) so the two negative ranges cannot collide for any
/// group id the fusion engine accepts (RegisterFusionGroup bounds group
/// ids to [0, 2^28]).
inline constexpr int32_t kFusedSourceKeyBase = INT32_MIN / 2;
inline int32_t FusedSourceKey(int group_id) {
  return kFusedSourceKeyBase + group_id;
}
/// Inverse of FusedSourceKey, valid for keys in the fused range.
inline int GroupIdFromFusedKey(int32_t source_key) {
  return static_cast<int>(source_key - kFusedSourceKeyBase);
}
/// Whether a notification source key addresses a fused group (vs an
/// aggregate or a plain source).
inline bool IsFusedSourceKey(int32_t source_key) {
  return source_key >= kFusedSourceKeyBase &&
         source_key < kFusedSourceKeyBase / 2;
}

/// The canonical ordering key: (step, source_id, subscription_id).
/// Notifications with equal keys (one subscription firing more than one
/// kind in a tick) keep their emission order — sorts must be stable.
inline bool NotificationOrder(const Notification& a, const Notification& b) {
  if (a.step != b.step) return a.step < b.step;
  if (a.source_id != b.source_id) return a.source_id < b.source_id;
  return a.subscription_id < b.subscription_id;
}

/// All notifications one engine tick produced, already in canonical
/// order. Batches with no notifications are never emitted.
struct NotificationBatch {
  int64_t step = 0;
  std::vector<Notification> notifications;

  friend bool operator==(const NotificationBatch&,
                         const NotificationBatch&) = default;
};

/// One-line canonical rendering — the format serve golden tests pin:
///   "<step> <source_id> <subscription_id> <kind> <value> <aux>"
/// with doubles in shortest round-trip form.
std::string FormatNotification(const Notification& notification);

/// Merges per-engine batch streams (each step-ascending and internally
/// in canonical order) into one canonical stream: same-step batches are
/// coalesced and stably re-sorted by (source_id, subscription_id), so
/// the result is bit-identical for any shard layout — the serving
/// layer's MergeTraces.
std::vector<NotificationBatch> MergeNotificationBatches(
    const std::vector<std::vector<NotificationBatch>>& streams);

}  // namespace dkf

#endif  // DKF_SERVE_SUBSCRIPTION_H_
