#ifndef DKF_SERVE_SUBSCRIPTION_ENGINE_H_
#define DKF_SERVE_SUBSCRIPTION_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "obs/trace_sink.h"
#include "serve/interval_index.h"
#include "serve/subscription.h"

namespace dkf {

/// Serving-layer knobs.
struct ServeOptions {
  /// Backpressure bound: the maximum number of undrained notifications
  /// the engine retains. When a tick pushes the buffer past the bound,
  /// whole batches are evicted oldest-first (a slow subscriber loses
  /// the oldest ticks, never the newest), counted in ServeStats::dropped
  /// and traced as notify_drop events. Clamped to >= 1.
  uint64_t max_buffered_notifications = uint64_t{1} << 20;

  friend bool operator==(const ServeOptions&, const ServeOptions&) = default;
};

/// Serving-layer counters. `touched` is the number of subscriptions the
/// fan-out machinery examined (index candidates, point deliveries,
/// uncertainty-cursor crossings, aggregate members of a moved
/// aggregate); `affected` is how many of those produced a notification.
/// touched / affected is the fan-out efficiency the bench gate watches:
/// it must track the *affected* count, not the registration count.
struct ServeStats {
  int64_t subscriptions = 0;  // currently registered
  int64_t notifications = 0;  // emitted into batches (incl. initials)
  int64_t dropped = 0;        // evicted undrained by backpressure
  int64_t touched = 0;
  int64_t affected = 0;

  void MergeFrom(const ServeStats& other) {
    subscriptions += other.subscriptions;
    notifications += other.notifications;
    dropped += other.dropped;
    touched += other.touched;
    affected += other.affected;
  }
};

/// How the engine reads answers out of its host — the only coupling
/// between src/serve/ and the systems it serves. StreamManager, one
/// StreamShard, and the sharded engine's aggregate level each implement
/// this over their own server-side state. All reads are component 0 of
/// the answer (scalar streams), matching aggregate-query semantics.
class ServeAnswerSource {
 public:
  virtual ~ServeAnswerSource() = default;
  virtual Result<double> SourceValue(int source_id) const = 0;
  /// Projected state variance of the answer (0 when the predictor does
  /// not expose a covariance).
  virtual Result<double> SourceUncertainty(int source_id) const = 0;
  virtual Result<double> AggregateValue(int aggregate_id) const = 0;
  /// Current fused posterior answer for a fusion group (component 0).
  /// Hosts without a fusion engine keep the default, which rejects any
  /// kFused subscription at attach time.
  virtual Result<double> FusedValue(int group_id) const {
    (void)group_id;
    return Status::InvalidArgument("host does not serve fused groups");
  }
  /// Projected variance of the fused answer.
  virtual Result<double> FusedUncertainty(int group_id) const {
    (void)group_id;
    return Status::InvalidArgument("host does not serve fused groups");
  }
};

/// One subscription plus the serving-layer state that makes delivery a
/// pure function of the tick stream (and hence checkpointable): the
/// band/range membership and the uncertainty-alert latch.
struct SubscriptionState {
  Subscription spec;
  bool inside = false;  // band/range: estimate currently in [lo, hi]
  bool fired = false;   // band: variance currently above the ceiling
};

/// The serving front-end: standing queries in, deterministically
/// ordered notification batches out.
///
/// The engine is driven by its host. `Subscribe` attaches a standing
/// query between ticks and evaluates its initial answer against that
/// single engine state (the snapshot-consistency contract: the host is
/// quiescent between ticks, exactly the state a checkpoint would
/// capture there). `EndTick(step, answers)` runs after the host's
/// protocol tick for `step` and appends at most one batch: per-tick
/// work is O(watched sources) + O(affected subscriptions) — per-source
/// fan-out lists for point queries, an IntervalIndex per source for
/// band/range predicates, a sorted uncertainty cursor per source for
/// variance ceilings, and member fan-out lists for aggregates. `Drain`
/// hands the buffered batches to the subscriber side and advances the
/// delivery cursor.
///
/// Thread contract: same as its host component. Inside a StreamShard
/// the engine is driven from the shard's worker during ProcessTick and
/// from the driver thread between ticks, never concurrently.
class SubscriptionEngine {
 public:
  explicit SubscriptionEngine(const ServeOptions& options = ServeOptions());

  /// Attaches a standing query and enqueues its initial notification
  /// (kind `initial`, stamped `attach_step` = the host's current tick
  /// count, so it sorts ahead of the notifications tick `attach_step`
  /// itself will produce). `aggregate_members` carries the member
  /// source ids for kAggregate subscriptions (the host resolves the
  /// binding) and must be empty otherwise.
  Status Subscribe(const Subscription& subscription, int64_t attach_step,
                   const ServeAnswerSource& answers,
                   const std::vector<int>& aggregate_members = {});

  /// Detaches a subscription. Already-buffered notifications for it are
  /// not retracted.
  Status Unsubscribe(int64_t subscription_id);

  bool has_subscription(int64_t subscription_id) const {
    return subs_.contains(subscription_id);
  }

  /// Whether any standing subscription targets this aggregate. Hosts
  /// refuse to remove an aggregate query that still has subscribers
  /// (the members list would dangle).
  bool has_aggregate_subscriptions(int aggregate_id) const {
    return aggregates_.contains(aggregate_id);
  }

  /// Whether any standing subscription targets this fusion group.
  bool has_fused_subscriptions(int group_id) const {
    return fused_.contains(group_id);
  }
  size_t num_subscriptions() const { return subs_.size(); }

  /// Evaluates every affected subscription against the host's state
  /// after tick `step` and appends the tick's batch (none when nothing
  /// fired). Call exactly once per host tick, after the protocol work.
  Status EndTick(int64_t step, const ServeAnswerSource& answers);

  /// Removes and returns every buffered batch (oldest first) and
  /// advances the delivery cursor past them.
  std::vector<NotificationBatch> Drain();

  /// Buffered batches not yet drained (oldest first).
  const std::deque<NotificationBatch>& pending() const { return pending_; }

  /// The last step handed out by Drain (-1 before the first drain).
  int64_t drained_through_step() const { return drained_through_step_; }

  /// Counters plus the live registration count.
  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

  /// Wires serve events (subscribe / notify / notify_drop) into an
  /// observability sink; nullptr unwires. The host hands the engine the
  /// same sink as the component that owns it, so merged traces stay
  /// layout-invariant.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  // ---- checkpoint hooks (src/checkpoint/engine_checkpoint.cc) -------

  /// Every registration plus its delivery state, ascending id.
  std::vector<SubscriptionState> ExportSubscriptions() const;

  /// Re-attaches a saved subscription with its delivery state intact —
  /// no initial notification, no state re-derivation.
  Status ImportSubscription(const SubscriptionState& state,
                            const std::vector<int>& aggregate_members = {});

  /// Replaces the undrained buffer and cursor (restore fan-back).
  void RestorePending(std::vector<NotificationBatch> batches,
                      int64_t drained_through_step);

  /// Replaces the lifetime counters (the subscription count field is
  /// ignored — it is derived).
  void RestoreStats(const ServeStats& stats);

  /// Re-primes the per-source and per-aggregate value caches from the
  /// host's (restored) state. Call once after the last
  /// ImportSubscription; the caches are pure functions of engine state,
  /// so delivery continues bit-identically.
  Status RefreshCaches(const ServeAnswerSource& answers);

 private:
  /// Per-source fan-out state: who to touch when this source's answer
  /// moves.
  struct PerSource {
    std::vector<int64_t> point_subs;  // ascending id
    IntervalIndex intervals;          // band + range predicates
    /// (ceiling, id) ascending — the uncertainty cursor. The fired
    /// prefix (ceilings strictly below the current variance) is exactly
    /// the set of latched subscriptions.
    std::vector<std::pair<double, int64_t>> ceilings;
    bool ceilings_dirty = false;
    size_t ceilings_fired = 0;
    /// Aggregates watching this source.
    std::vector<int> aggregates;
    double last_value = 0.0;
    bool has_value = false;

    bool Empty() const {
      return point_subs.empty() && intervals.empty() && ceilings.empty() &&
             aggregates.empty();
    }
  };

  struct PerAggregate {
    std::vector<int64_t> subs;  // ascending id
    std::vector<int> members;
    double last_value = 0.0;
    bool has_value = false;
  };

  /// Fan-out state for one watched fusion group: notify `subs` whenever
  /// the fused posterior answer moves.
  struct PerFused {
    std::vector<int64_t> subs;  // ascending id
    double last_value = 0.0;
    bool has_value = false;
  };

  Status Attach(const SubscriptionState& state,
                const std::vector<int>& aggregate_members);
  void PushNotification(std::vector<Notification>* out, int64_t step,
                        int32_t source_key, int64_t subscription_id,
                        NotificationKind kind, double value, double aux);
  void AppendBatch(NotificationBatch batch);
  void RebuildCeilings(PerSource& per_source);
  Result<double> CurrentValue(const Subscription& spec,
                              const ServeAnswerSource& answers) const;

  ServeOptions options_;
  std::map<int64_t, SubscriptionState> subs_;
  std::map<int, PerSource> sources_;
  std::map<int, PerAggregate> aggregates_;
  std::map<int, PerFused> fused_;
  std::deque<NotificationBatch> pending_;
  uint64_t pending_notifications_ = 0;
  int64_t drained_through_step_ = -1;
  ServeStats counters_;  // subscriptions field unused (derived)
  TraceSink* sink_ = nullptr;
};

/// The ordering key aggregate notifications use in place of a source id.
inline int32_t AggregateSourceKey(int aggregate_id) {
  return -1 - aggregate_id;
}

}  // namespace dkf

#endif  // DKF_SERVE_SUBSCRIPTION_ENGINE_H_
