#ifndef DKF_SERVE_INTERVAL_INDEX_H_
#define DKF_SERVE_INTERVAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dkf {

/// An index over the band/range intervals registered against one
/// source, answering the only question the serving hot path asks: when
/// the estimate moved from v0 to v1, which subscriptions' membership
/// changed?
///
/// An interval [lo, hi] changes membership across the move exactly when
/// one endpoint falls inside the swept range — with a = min(v0, v1),
/// b = max(v0, v1):
///   lost  the value: hi in [a, b) and lo <= a
///   gained the value: lo in (a, b] and hi >= b
/// Both are endpoint range scans, so two endpoint-sorted arrays answer
/// the query in O(log n + endpoints inside the sweep): a correction
/// touches only subscriptions near the moved value, never the full
/// registration set. (Intervals strictly inside the sweep are scanned
/// and filtered out — the value passed clean through them; membership
/// is sampled at tick boundaries, not along the path.)
///
/// Mutations mark the index dirty; the sorted arrays are rebuilt lazily
/// on the next query, so a bulk registration phase costs one sort.
class IntervalIndex {
 public:
  /// Registers interval [lo, hi] under `id`. Ids are unique (enforced
  /// by the engine).
  void Insert(int64_t id, double lo, double hi);

  /// Removes an id; no-op if absent.
  void Erase(int64_t id);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Appends to `out` the ids whose membership of v1 differs from their
  /// membership of v0 (exactly — the endpoint filters above are tight).
  /// Returns the number of entries *scanned*, i.e. the fan-out work
  /// actually done, which callers report as "touched".
  size_t Changed(double v0, double v1, std::vector<int64_t>* out);

 private:
  struct Entry {
    double lo = 0.0;
    double hi = 0.0;
    int64_t id = 0;
  };

  void Rebuild();

  std::vector<Entry> entries_;  // registration order (compacted on erase)
  std::vector<Entry> by_lo_;    // sorted by (lo, id)
  std::vector<Entry> by_hi_;    // sorted by (hi, id)
  bool dirty_ = false;
};

}  // namespace dkf

#endif  // DKF_SERVE_INTERVAL_INDEX_H_
