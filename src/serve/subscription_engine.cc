#include "serve/subscription_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace dkf {

namespace {

/// Inclusive band membership — the one predicate definition shared by
/// attach-time evaluation, the fan-out index, and the golden tests.
bool Contains(const Subscription& spec, double value) {
  return spec.lo <= value && value <= spec.hi;
}

void InsertSorted(std::vector<int64_t>* ids, int64_t id) {
  ids->insert(std::lower_bound(ids->begin(), ids->end(), id), id);
}

void EraseSorted(std::vector<int64_t>* ids, int64_t id) {
  auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it != ids->end() && *it == id) ids->erase(it);
}

Status ValidateSubscription(const Subscription& spec,
                            const std::vector<int>& aggregate_members) {
  if (spec.id < 0) {
    return Status::InvalidArgument("subscription ids must be non-negative");
  }
  // Negative keys in the notification order are reserved for aggregate
  // and fused subscriptions (AggregateSourceKey / FusedSourceKey), so
  // per-source kinds must target non-negative source ids.
  if (spec.kind != SubscriptionKind::kAggregate &&
      spec.kind != SubscriptionKind::kFused && spec.source_id < 0) {
    return Status::InvalidArgument(
        "subscriptions require a non-negative source id");
  }
  if (spec.kind == SubscriptionKind::kFused && spec.group_id < 0) {
    return Status::InvalidArgument(
        "fused subscriptions require a non-negative group id");
  }
  const bool interval = spec.kind == SubscriptionKind::kBandAlert ||
                        spec.kind == SubscriptionKind::kRangePredicate;
  if (interval) {
    if (!std::isfinite(spec.lo) || !std::isfinite(spec.hi) ||
        spec.lo > spec.hi) {
      return Status::InvalidArgument(
          StrFormat("subscription %lld has an invalid band",
                    static_cast<long long>(spec.id)));
    }
  }
  if (spec.uncertainty_ceiling != 0.0 &&
      (spec.kind != SubscriptionKind::kBandAlert ||
       !std::isfinite(spec.uncertainty_ceiling) ||
       spec.uncertainty_ceiling < 0.0)) {
    return Status::InvalidArgument(
        "uncertainty ceilings apply to band-alert subscriptions only");
  }
  if (spec.kind == SubscriptionKind::kAggregate) {
    if (aggregate_members.empty()) {
      return Status::InvalidArgument(
          "aggregate subscriptions need the aggregate's member sources");
    }
  } else if (!aggregate_members.empty()) {
    return Status::InvalidArgument(
        "only aggregate subscriptions carry member sources");
  }
  if (spec.kind >= SubscriptionKind::kCount) {
    return Status::InvalidArgument("unknown subscription kind");
  }
  return Status::OK();
}

}  // namespace

SubscriptionEngine::SubscriptionEngine(const ServeOptions& options)
    : options_(options) {
  if (options_.max_buffered_notifications == 0) {
    options_.max_buffered_notifications = 1;
  }
}

Result<double> SubscriptionEngine::CurrentValue(
    const Subscription& spec, const ServeAnswerSource& answers) const {
  if (spec.kind == SubscriptionKind::kAggregate) {
    return answers.AggregateValue(spec.aggregate_id);
  }
  if (spec.kind == SubscriptionKind::kFused) {
    return answers.FusedValue(spec.group_id);
  }
  return answers.SourceValue(spec.source_id);
}

Status SubscriptionEngine::Attach(const SubscriptionState& state,
                                  const std::vector<int>& aggregate_members) {
  const Subscription& spec = state.spec;
  DKF_RETURN_IF_ERROR(ValidateSubscription(spec, aggregate_members));
  if (subs_.contains(spec.id)) {
    return Status::AlreadyExists(
        StrFormat("subscription %lld already registered",
                  static_cast<long long>(spec.id)));
  }
  switch (spec.kind) {
    case SubscriptionKind::kPoint: {
      InsertSorted(&sources_[spec.source_id].point_subs, spec.id);
      break;
    }
    case SubscriptionKind::kBandAlert: {
      PerSource& per_source = sources_[spec.source_id];
      per_source.intervals.Insert(spec.id, spec.lo, spec.hi);
      if (spec.uncertainty_ceiling > 0.0) {
        per_source.ceilings.emplace_back(spec.uncertainty_ceiling, spec.id);
        per_source.ceilings_dirty = true;
      }
      break;
    }
    case SubscriptionKind::kRangePredicate: {
      sources_[spec.source_id].intervals.Insert(spec.id, spec.lo, spec.hi);
      break;
    }
    case SubscriptionKind::kAggregate: {
      PerAggregate& per_aggregate = aggregates_[spec.aggregate_id];
      if (per_aggregate.subs.empty()) {
        per_aggregate.members = aggregate_members;
      } else if (per_aggregate.members != aggregate_members) {
        return Status::InvalidArgument(
            StrFormat("aggregate %d membership changed between subscriptions",
                      spec.aggregate_id));
      }
      InsertSorted(&per_aggregate.subs, spec.id);
      for (int member : aggregate_members) {
        std::vector<int>& watching = sources_[member].aggregates;
        auto it = std::lower_bound(watching.begin(), watching.end(),
                                   spec.aggregate_id);
        if (it == watching.end() || *it != spec.aggregate_id) {
          watching.insert(it, spec.aggregate_id);
        }
      }
      break;
    }
    case SubscriptionKind::kFused: {
      InsertSorted(&fused_[spec.group_id].subs, spec.id);
      break;
    }
    case SubscriptionKind::kCount:
      return Status::InvalidArgument("unknown subscription kind");
  }
  subs_[spec.id] = state;
  return Status::OK();
}

Status SubscriptionEngine::Subscribe(const Subscription& subscription,
                                     int64_t attach_step,
                                     const ServeAnswerSource& answers,
                                     const std::vector<int>& aggregate_members) {
  DKF_RETURN_IF_ERROR(ValidateSubscription(subscription, aggregate_members));
  if (subs_.contains(subscription.id)) {
    return Status::AlreadyExists(
        StrFormat("subscription %lld already registered",
                  static_cast<long long>(subscription.id)));
  }
  // Evaluate the attach-time state against the host's quiescent
  // between-ticks state — the same single engine state a checkpoint at
  // this boundary would capture, which is the snapshot-consistency
  // contract for mid-run attaches.
  auto value_or = CurrentValue(subscription, answers);
  if (!value_or.ok()) return value_or.status();
  const double value = value_or.value();

  SubscriptionState state;
  state.spec = subscription;
  const bool interval = subscription.kind == SubscriptionKind::kBandAlert ||
                        subscription.kind == SubscriptionKind::kRangePredicate;
  if (interval) state.inside = Contains(subscription, value);
  if (subscription.kind == SubscriptionKind::kBandAlert &&
      subscription.uncertainty_ceiling > 0.0) {
    auto uncertainty_or = answers.SourceUncertainty(subscription.source_id);
    if (!uncertainty_or.ok()) return uncertainty_or.status();
    state.fired = uncertainty_or.value() > subscription.uncertainty_ceiling;
  }
  DKF_RETURN_IF_ERROR(Attach(state, aggregate_members));

  // Prime the value caches for newly watched streams, so the next
  // EndTick diffs against this attach-time state.
  if (subscription.kind == SubscriptionKind::kAggregate) {
    PerAggregate& per_aggregate = aggregates_.at(subscription.aggregate_id);
    if (!per_aggregate.has_value) {
      per_aggregate.last_value = value;
      per_aggregate.has_value = true;
    }
    for (int member : aggregate_members) {
      PerSource& per_source = sources_.at(member);
      if (per_source.has_value) continue;
      auto member_or = answers.SourceValue(member);
      if (!member_or.ok()) return member_or.status();
      per_source.last_value = member_or.value();
      per_source.has_value = true;
    }
  } else if (subscription.kind == SubscriptionKind::kFused) {
    PerFused& per_fused = fused_.at(subscription.group_id);
    if (!per_fused.has_value) {
      per_fused.last_value = value;
      per_fused.has_value = true;
    }
  } else {
    PerSource& per_source = sources_.at(subscription.source_id);
    if (!per_source.has_value) {
      per_source.last_value = value;
      per_source.has_value = true;
    }
  }

  const int32_t key =
      subscription.kind == SubscriptionKind::kAggregate
          ? AggregateSourceKey(subscription.aggregate_id)
          : (subscription.kind == SubscriptionKind::kFused
                 ? FusedSourceKey(subscription.group_id)
                 : subscription.source_id);
  DKF_TRACE(sink_, attach_step, key, TraceEventKind::kSubscribe,
            TraceActor::kServe, subscription.lo, subscription.hi,
            subscription.id);
  NotificationBatch batch;
  batch.step = attach_step;
  PushNotification(&batch.notifications, attach_step, key, subscription.id,
                   NotificationKind::kInitial, value,
                   interval ? (state.inside ? 1.0 : 0.0) : 0.0);
  AppendBatch(std::move(batch));
  return Status::OK();
}

Status SubscriptionEngine::ImportSubscription(
    const SubscriptionState& state,
    const std::vector<int>& aggregate_members) {
  return Attach(state, aggregate_members);
}

Status SubscriptionEngine::Unsubscribe(int64_t subscription_id) {
  auto it = subs_.find(subscription_id);
  if (it == subs_.end()) {
    return Status::NotFound(
        StrFormat("subscription %lld not registered",
                  static_cast<long long>(subscription_id)));
  }
  const Subscription spec = it->second.spec;
  if (spec.kind == SubscriptionKind::kAggregate) {
    PerAggregate& per_aggregate = aggregates_.at(spec.aggregate_id);
    EraseSorted(&per_aggregate.subs, subscription_id);
    if (per_aggregate.subs.empty()) {
      for (int member : per_aggregate.members) {
        auto source_it = sources_.find(member);
        if (source_it == sources_.end()) continue;
        std::vector<int>& watching = source_it->second.aggregates;
        auto watch_it = std::lower_bound(watching.begin(), watching.end(),
                                         spec.aggregate_id);
        if (watch_it != watching.end() && *watch_it == spec.aggregate_id) {
          watching.erase(watch_it);
        }
        if (source_it->second.Empty()) sources_.erase(source_it);
      }
      aggregates_.erase(spec.aggregate_id);
    }
  } else if (spec.kind == SubscriptionKind::kFused) {
    auto fused_it = fused_.find(spec.group_id);
    if (fused_it != fused_.end()) {
      EraseSorted(&fused_it->second.subs, subscription_id);
      if (fused_it->second.subs.empty()) fused_.erase(fused_it);
    }
  } else {
    auto source_it = sources_.find(spec.source_id);
    if (source_it != sources_.end()) {
      PerSource& per_source = source_it->second;
      switch (spec.kind) {
        case SubscriptionKind::kPoint:
          EraseSorted(&per_source.point_subs, subscription_id);
          break;
        case SubscriptionKind::kBandAlert:
          per_source.intervals.Erase(subscription_id);
          if (spec.uncertainty_ceiling > 0.0) {
            std::erase_if(per_source.ceilings, [&](const auto& entry) {
              return entry.second == subscription_id;
            });
            per_source.ceilings_dirty = true;
          }
          break;
        case SubscriptionKind::kRangePredicate:
          per_source.intervals.Erase(subscription_id);
          break;
        default:
          break;
      }
      if (per_source.Empty()) sources_.erase(source_it);
    }
  }
  subs_.erase(it);
  return Status::OK();
}

void SubscriptionEngine::RebuildCeilings(PerSource& per_source) {
  std::sort(per_source.ceilings.begin(), per_source.ceilings.end());
  per_source.ceilings_fired = 0;
  for (const auto& [ceiling, id] : per_source.ceilings) {
    if (subs_.at(id).fired) ++per_source.ceilings_fired;
  }
  per_source.ceilings_dirty = false;
}

void SubscriptionEngine::PushNotification(std::vector<Notification>* out,
                                          int64_t step, int32_t source_key,
                                          int64_t subscription_id,
                                          NotificationKind kind, double value,
                                          double aux) {
  Notification notification;
  notification.step = step;
  notification.source_id = source_key;
  notification.subscription_id = subscription_id;
  notification.kind = kind;
  notification.value = value;
  notification.aux = aux;
  out->push_back(notification);
  ++counters_.notifications;
  DKF_TRACE(sink_, step, source_key, TraceEventKind::kNotify,
            TraceActor::kServe, value, static_cast<double>(kind),
            subscription_id);
}

void SubscriptionEngine::AppendBatch(NotificationBatch batch) {
  if (batch.notifications.empty()) return;
  const int64_t now = batch.step;
  pending_notifications_ += batch.notifications.size();
  pending_.push_back(std::move(batch));
  while (pending_notifications_ > options_.max_buffered_notifications &&
         !pending_.empty()) {
    const NotificationBatch& oldest = pending_.front();
    const uint64_t evicted = oldest.notifications.size();
    counters_.dropped += static_cast<int64_t>(evicted);
    pending_notifications_ -= evicted;
    DKF_TRACE(sink_, now, std::numeric_limits<int32_t>::min(),
              TraceEventKind::kNotifyDrop, TraceActor::kServe,
              static_cast<double>(evicted), 0.0, oldest.step);
    pending_.pop_front();
  }
}

Status SubscriptionEngine::EndTick(int64_t step,
                                   const ServeAnswerSource& answers) {
  if (subs_.empty()) return Status::OK();
  std::vector<Notification> out;
  std::set<int> dirty_aggregates;
  std::vector<int64_t> changed;
  for (auto& [source_id, per_source] : sources_) {
    auto value_or = answers.SourceValue(source_id);
    if (!value_or.ok()) return value_or.status();
    const double value = value_or.value();
    const double previous =
        per_source.has_value ? per_source.last_value : value;
    const bool moved = value != previous;

    // Point subscriptions: the answer every tick, by definition.
    for (int64_t id : per_source.point_subs) {
      ++counters_.touched;
      ++counters_.affected;
      PushNotification(&out, step, source_id, id, NotificationKind::kValue,
                       value, 0.0);
    }

    // Band / range predicates: only subscriptions whose membership the
    // move could have flipped are examined.
    if (moved && !per_source.intervals.empty()) {
      changed.clear();
      counters_.touched += static_cast<int64_t>(
          per_source.intervals.Changed(previous, value, &changed));
      for (int64_t id : changed) {
        SubscriptionState& state = subs_.at(id);
        const bool now_inside = Contains(state.spec, value);
        if (now_inside == state.inside) continue;
        state.inside = now_inside;
        ++counters_.affected;
        if (state.spec.kind == SubscriptionKind::kBandAlert) {
          const double bound =
              value < state.spec.lo ? state.spec.lo : state.spec.hi;
          PushNotification(&out, step, source_id, id,
                           now_inside ? NotificationKind::kBandEnter
                                      : NotificationKind::kBandExit,
                           value, now_inside ? 0.0 : bound);
        } else {
          PushNotification(&out, step, source_id, id,
                           now_inside ? NotificationKind::kPredicateTrue
                                      : NotificationKind::kPredicateFalse,
                           value, now_inside ? 1.0 : 0.0);
        }
      }
    }

    // Uncertainty ceilings: variance grows while a link coasts and
    // collapses on corrections, so the sorted cursor moves a few slots
    // per tick — O(crossings), not O(watchers).
    if (!per_source.ceilings.empty()) {
      auto uncertainty_or = answers.SourceUncertainty(source_id);
      if (!uncertainty_or.ok()) return uncertainty_or.status();
      const double uncertainty = uncertainty_or.value();
      if (per_source.ceilings_dirty) RebuildCeilings(per_source);
      while (per_source.ceilings_fired < per_source.ceilings.size() &&
             per_source.ceilings[per_source.ceilings_fired].first <
                 uncertainty) {
        const int64_t id =
            per_source.ceilings[per_source.ceilings_fired].second;
        subs_.at(id).fired = true;
        ++per_source.ceilings_fired;
        ++counters_.touched;
        ++counters_.affected;
        PushNotification(&out, step, source_id, id,
                         NotificationKind::kUncertaintyHigh, value,
                         uncertainty);
      }
      while (per_source.ceilings_fired > 0 &&
             per_source.ceilings[per_source.ceilings_fired - 1].first >=
                 uncertainty) {
        --per_source.ceilings_fired;
        const int64_t id =
            per_source.ceilings[per_source.ceilings_fired].second;
        subs_.at(id).fired = false;
        ++counters_.touched;
        ++counters_.affected;
        PushNotification(&out, step, source_id, id,
                         NotificationKind::kUncertaintyOk, value, uncertainty);
      }
    }

    if (moved) {
      for (int aggregate_id : per_source.aggregates) {
        dirty_aggregates.insert(aggregate_id);
      }
    }
    per_source.last_value = value;
    per_source.has_value = true;
  }

  // Aggregates: recomputed only when a member moved, and fanned out
  // only when the sum itself moved.
  for (int aggregate_id : dirty_aggregates) {
    PerAggregate& per_aggregate = aggregates_.at(aggregate_id);
    auto value_or = answers.AggregateValue(aggregate_id);
    if (!value_or.ok()) return value_or.status();
    const double value = value_or.value();
    if (per_aggregate.has_value && value == per_aggregate.last_value) {
      per_aggregate.last_value = value;
      continue;
    }
    per_aggregate.last_value = value;
    per_aggregate.has_value = true;
    for (int64_t id : per_aggregate.subs) {
      ++counters_.touched;
      ++counters_.affected;
      PushNotification(&out, step, AggregateSourceKey(aggregate_id), id,
                       NotificationKind::kAggregateUpdate, value, 0.0);
    }
  }

  // Fused groups: the posterior is one server-side filter, so reading it
  // is O(1) per watched group — fan out only when the answer moved.
  for (auto& [group_id, per_fused] : fused_) {
    auto value_or = answers.FusedValue(group_id);
    if (!value_or.ok()) return value_or.status();
    const double value = value_or.value();
    if (per_fused.has_value && value == per_fused.last_value) continue;
    per_fused.last_value = value;
    per_fused.has_value = true;
    for (int64_t id : per_fused.subs) {
      ++counters_.touched;
      ++counters_.affected;
      PushNotification(&out, step, FusedSourceKey(group_id), id,
                       NotificationKind::kFusedUpdate, value, 0.0);
    }
  }

  if (out.empty()) return Status::OK();
  std::stable_sort(out.begin(), out.end(), NotificationOrder);
  NotificationBatch batch;
  batch.step = step;
  batch.notifications = std::move(out);
  AppendBatch(std::move(batch));
  return Status::OK();
}

std::vector<NotificationBatch> SubscriptionEngine::Drain() {
  std::vector<NotificationBatch> drained(pending_.begin(), pending_.end());
  if (!drained.empty()) drained_through_step_ = drained.back().step;
  pending_.clear();
  pending_notifications_ = 0;
  return drained;
}

ServeStats SubscriptionEngine::stats() const {
  ServeStats stats = counters_;
  stats.subscriptions = static_cast<int64_t>(subs_.size());
  return stats;
}

std::vector<SubscriptionState> SubscriptionEngine::ExportSubscriptions()
    const {
  std::vector<SubscriptionState> exported;
  exported.reserve(subs_.size());
  for (const auto& [id, state] : subs_) exported.push_back(state);
  return exported;
}

void SubscriptionEngine::RestorePending(std::vector<NotificationBatch> batches,
                                        int64_t drained_through_step) {
  pending_.assign(std::make_move_iterator(batches.begin()),
                  std::make_move_iterator(batches.end()));
  pending_notifications_ = 0;
  for (const NotificationBatch& batch : pending_) {
    pending_notifications_ += batch.notifications.size();
  }
  drained_through_step_ = drained_through_step;
}

void SubscriptionEngine::RestoreStats(const ServeStats& stats) {
  counters_ = stats;
  counters_.subscriptions = 0;
}

Status SubscriptionEngine::RefreshCaches(const ServeAnswerSource& answers) {
  for (auto& [source_id, per_source] : sources_) {
    auto value_or = answers.SourceValue(source_id);
    if (!value_or.ok()) return value_or.status();
    per_source.last_value = value_or.value();
    per_source.has_value = true;
  }
  for (auto& [aggregate_id, per_aggregate] : aggregates_) {
    auto value_or = answers.AggregateValue(aggregate_id);
    if (!value_or.ok()) return value_or.status();
    per_aggregate.last_value = value_or.value();
    per_aggregate.has_value = true;
  }
  for (auto& [group_id, per_fused] : fused_) {
    auto value_or = answers.FusedValue(group_id);
    if (!value_or.ok()) return value_or.status();
    per_fused.last_value = value_or.value();
    per_fused.has_value = true;
  }
  return Status::OK();
}

}  // namespace dkf
