#include "runtime/shard.h"

#include <chrono>

#include "common/string_util.h"
#include "dsms/tick_step.h"

namespace dkf {

namespace {

/// The serving layer's view of one shard: component 0 of the shard's
/// server-side answers plus the projected variance. Aggregates span
/// shards and are served at the engine, never here.
class ShardAnswers final : public ServeAnswerSource {
 public:
  explicit ShardAnswers(const StreamShard& shard) : shard_(shard) {}

  Result<double> SourceValue(int source_id) const override {
    auto answer_or = shard_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto answer_or = shard_.AnswerWithConfidence(source_id);
    if (!answer_or.ok()) return answer_or.status();
    if (!answer_or.value().covariance.has_value()) return 0.0;
    return (*answer_or.value().covariance)(0, 0);
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    return Status::InvalidArgument(
        StrFormat("aggregate %d is not served at shard level",
                  aggregate_id));
  }

  Result<double> FusedValue(int group_id) const override {
    auto answer_or = shard_.AnswerFused(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> FusedUncertainty(int group_id) const override {
    auto answer_or = shard_.AnswerFusedWithConfidence(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value().covariance(0, 0);
  }

 private:
  const StreamShard& shard_;
};

}  // namespace

StreamShard::StreamShard(const ChannelOptions& channel,
                         EnergyModelOptions energy, double default_delta,
                         const ProtocolOptions& protocol,
                         const ServeOptions& serve)
    : server_(protocol),
      channel_([this](const Message& message) {
        // Fused traffic is addressed by group; everything else is a
        // per-source dual link.
        return message.group_id >= 0 ? fusion_.OnMessage(message)
                                     : server_.OnMessage(message);
      }, channel),
      energy_(energy),
      default_delta_(default_delta),
      protocol_(protocol),
      per_source_rng_(channel.per_source_rng),
      serve_(serve),
      fusion_(protocol, channel.fault) {}

Status StreamShard::EnableFleet() {
  if (fleet_ != nullptr) return Status::OK();
  if (!sources_.empty()) {
    return Status::FailedPrecondition(
        "EnableFleet must be called before any AddSource");
  }
  if (!per_source_rng_) {
    return Status::InvalidArgument(
        "the batched fleet engine requires per_source_rng channels");
  }
  fleet_ = std::make_unique<FleetEngine>(&server_, &channel_, protocol_,
                                         energy_);
  if (obs_sink_ != nullptr) fleet_->set_trace_sink(obs_sink_);
  return Status::OK();
}

Status StreamShard::AddSource(int source_id, const StateModel& model) {
  if (sources_.contains(source_id)) {
    return Status::AlreadyExists(
        StrFormat("source %d already registered", source_id));
  }
  if (fusion_.owns_member(source_id)) {
    return Status::AlreadyExists(
        StrFormat("id %d already belongs to fusion group %d", source_id,
                  fusion_.member_group(source_id)));
  }
  DKF_RETURN_IF_ERROR(server_.RegisterSource(source_id, model));

  SourceNodeOptions node_options;
  node_options.source_id = source_id;
  node_options.model = model;
  node_options.delta = default_delta_;
  node_options.energy = energy_;
  node_options.protocol = protocol_;
  auto node_or = SourceNode::Create(node_options);
  if (!node_or.ok()) {
    // Keep server and source sets consistent on failure.
    (void)server_.UnregisterSource(source_id);
    return node_or.status();
  }
  sources_[source_id] =
      std::make_unique<SourceNode>(std::move(node_or).value());
  if (obs_sink_ != nullptr) sources_[source_id]->set_trace_sink(obs_sink_);
  if (fleet_ != nullptr) {
    Status tracked =
        fleet_->Track(source_id, model, sources_[source_id].get());
    if (!tracked.ok()) {
      sources_.erase(source_id);
      (void)server_.UnregisterSource(source_id);
      return tracked;
    }
  }
  return Status::OK();
}

void StreamShard::set_trace_sink(TraceSink* sink) {
  obs_sink_ = sink;
  channel_.set_trace_sink(sink);
  server_.set_trace_sink(sink);
  fusion_.set_trace_sink(sink);
  serve_.set_trace_sink(sink);
  if (fleet_ != nullptr) fleet_->set_trace_sink(sink);
  for (auto& [id, node] : sources_) node->set_trace_sink(sink);
}

Status StreamShard::Subscribe(const Subscription& subscription,
                              int64_t attach_step) {
  return serve_.Subscribe(subscription, attach_step, ShardAnswers(*this));
}

Status StreamShard::Unsubscribe(int64_t subscription_id) {
  return serve_.Unsubscribe(subscription_id);
}

Status StreamShard::Reconfigure(int source_id,
                                const QueryRegistry& registry) {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not on shard", source_id));
  }
  // A batch-resident source must be spilled back to its real SourceNode
  // before the reconfiguration lands — set_delta/set_smoothing run
  // through the verbatim per-source code, and the source re-enters the
  // batch at the end of the next tick if still eligible.
  if (fleet_ != nullptr) {
    DKF_RETURN_IF_ERROR(fleet_->SpillForReconfigure(source_id));
  }
  auto changed_or =
      InstallEffectiveConfig(registry, default_delta_, source_id,
                             *it->second, installed_smoothing_[source_id]);
  if (!changed_or.ok()) return changed_or.status();
  if (changed_or.value()) ++control_messages_;
  return Status::OK();
}

Status StreamShard::RegisterFusionGroup(const FusionGroupConfig& config) {
  for (int member_id : config.member_ids) {
    if (sources_.contains(member_id)) {
      return Status::AlreadyExists(
          StrFormat("fusion member id %d is a registered source", member_id));
    }
  }
  DKF_RETURN_IF_ERROR(fusion_.RegisterGroup(config));
  if (obs_sink_ != nullptr) fusion_.set_trace_sink(obs_sink_);
  return Status::OK();
}

Status StreamShard::AddFusionMember(int group_id, int member_id) {
  if (sources_.contains(member_id)) {
    return Status::AlreadyExists(
        StrFormat("fusion member id %d is a registered source", member_id));
  }
  DKF_RETURN_IF_ERROR(fusion_.AddMember(group_id, member_id));
  if (obs_sink_ != nullptr) fusion_.set_trace_sink(obs_sink_);
  // The admission handoff: the newcomer's mirror is handed the current
  // posterior over the out-of-band downlink.
  ++control_messages_;
  return Status::OK();
}

Status StreamShard::RemoveFusionMember(int group_id, int member_id) {
  DKF_RETURN_IF_ERROR(fusion_.RemoveMember(group_id, member_id));
  ++control_messages_;  // the dismissal
  return Status::OK();
}

Status StreamShard::ReconfigureFusionGroup(int group_id,
                                           const QueryRegistry& registry) {
  double effective;
  if (registry.FusedQueriesForGroup(group_id).empty()) {
    auto base_or = fusion_.group_base_delta(group_id);
    if (!base_or.ok()) return base_or.status();
    effective = base_or.value();
  } else {
    auto delta_or = registry.EffectiveFusedDelta(group_id);
    if (!delta_or.ok()) return delta_or.status();
    effective = delta_or.value();
  }
  auto changed_or = fusion_.set_group_delta(group_id, effective);
  if (!changed_or.ok()) return changed_or.status();
  if (changed_or.value()) {
    // Every member must learn the new trigger: one control message each.
    auto members_or = fusion_.group_members(group_id);
    if (!members_or.ok()) return members_or.status();
    control_messages_ += static_cast<int64_t>(members_or.value().size());
  }
  return Status::OK();
}

Result<Vector> StreamShard::AnswerFused(int group_id) const {
  return fusion_.Answer(group_id);
}

Result<FusionEngine::ConfidentAnswer> StreamShard::AnswerFusedWithConfidence(
    int group_id) const {
  return fusion_.AnswerWithConfidence(group_id);
}

Result<bool> StreamShard::fused_degraded(int group_id) const {
  return fusion_.answer_degraded(group_id);
}

Status StreamShard::ReconfigureSources(
    const std::vector<std::pair<int, double>>& deltas) {
  for (const auto& [source_id, delta] : deltas) {
    auto it = sources_.find(source_id);
    if (it == sources_.end()) {
      return Status::NotFound(StrFormat("source %d not on shard", source_id));
    }
    if (it->second->delta() == delta) continue;
    // A batch-resident source must spill back to its real SourceNode
    // before the new width lands (same rule as Reconfigure); with the
    // whole epoch applied in this one sweep it spills at most once.
    if (fleet_ != nullptr) {
      DKF_RETURN_IF_ERROR(fleet_->SpillForReconfigure(source_id));
    }
    DKF_RETURN_IF_ERROR(it->second->set_delta(delta));
    ++control_messages_;
  }
  return Status::OK();
}

Status StreamShard::ProcessTick(int64_t tick,
                                const std::map<int, Vector>& readings) {
  const bool timed = obs_sink_ != nullptr && obs_sink_->options().record_timing;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  // Fused posteriors and mirrors predict before the channel drains its
  // in-flight queue (inside the source tick), so delayed fused
  // deliveries land on post-predict state — the same ordering
  // ServerNode::TickAll gives the per-source links. Unconditional: the
  // fusion clock must advance even while the shard has no groups.
  DKF_RETURN_IF_ERROR(fusion_.BeginTick(tick));
  if (fleet_ != nullptr) {
    DKF_RETURN_IF_ERROR(fleet_->ProcessTick(tick, readings));
  } else {
    DKF_RETURN_IF_ERROR(
        RunSourceTick(tick, server_, sources_, readings, channel_));
  }
  // Fusion members run after the plain sources, in ascending (group,
  // member) order — one deterministic source order per shard tick.
  DKF_RETURN_IF_ERROR(fusion_.ProcessReadings(tick, readings, &channel_));
  return FinishTick(tick, timed, start);
}

Status StreamShard::ProcessTick(int64_t tick, const ReadingBatch& batch) {
  const bool timed = obs_sink_ != nullptr && obs_sink_->options().record_timing;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  DKF_RETURN_IF_ERROR(fusion_.BeginTick(tick));
  if (fleet_ != nullptr) {
    DKF_RETURN_IF_ERROR(fleet_->ProcessTick(tick, batch));
  } else {
    if (batch.ids.size() != batch.values.size()) {
      return Status::InvalidArgument(
          StrFormat("reading batch has %zu ids but %zu values",
                    batch.ids.size(), batch.values.size()));
    }
    // Per-source fallback: project this shard's slice of the batch into
    // the map form RunSourceTick expects.
    std::map<int, Vector> readings;
    for (size_t i = 0; i < batch.ids.size(); ++i) {
      if (sources_.contains(batch.ids[i])) {
        readings.emplace(batch.ids[i], batch.values[i]);
      }
    }
    DKF_RETURN_IF_ERROR(
        RunSourceTick(tick, server_, sources_, readings, channel_));
  }
  if (fusion_.active()) {
    // Project the members' slice of the batch into the map form the
    // fusion engine expects (members never batch into fleet lanes).
    std::map<int, Vector> fused_readings;
    for (size_t i = 0; i < batch.ids.size(); ++i) {
      if (fusion_.owns_member(batch.ids[i])) {
        fused_readings.emplace(batch.ids[i], batch.values[i]);
      }
    }
    DKF_RETURN_IF_ERROR(
        fusion_.ProcessReadings(tick, fused_readings, &channel_));
  }
  return FinishTick(tick, timed, start);
}

Status StreamShard::FinishTick(int64_t tick, bool timed,
                               std::chrono::steady_clock::time_point start) {
  // Serve this shard's subscriptions while still on the worker thread:
  // the per-shard index makes notification fan-out scale with shards
  // exactly like the protocol work does.
  DKF_RETURN_IF_ERROR(serve_.EndTick(tick, ShardAnswers(*this)));
  if (obs_sink_ != nullptr) {
    if (timed) {
      obs_sink_->RecordTickLatencyNs(std::chrono::duration<double, std::nano>(
                                         std::chrono::steady_clock::now() -
                                         start)
                                         .count());
    }
    obs_sink_->SetGauge("channel.in_flight",
                        static_cast<double>(channel_.in_flight()));
  }
  return Status::OK();
}

Result<Vector> StreamShard::Answer(int source_id) const {
  if (fleet_ != nullptr && fleet_->resident(source_id)) {
    return fleet_->Answer(source_id);
  }
  return server_.Answer(source_id);
}

Result<ServerNode::ConfidentAnswer> StreamShard::AnswerWithConfidence(
    int source_id) const {
  if (fleet_ != nullptr && fleet_->resident(source_id)) {
    return fleet_->AnswerWithConfidence(source_id);
  }
  return server_.AnswerWithConfidence(source_id);
}

Result<double> StreamShard::PartialSum(
    const std::vector<int>& source_ids) const {
  double sum = 0.0;
  for (int source_id : source_ids) {
    auto answer_or = Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    sum += answer_or.value()[0];
  }
  return sum;
}

Result<std::pair<double, int>> StreamShard::PartialSumWithStatus(
    const std::vector<int>& source_ids) const {
  double sum = 0.0;
  int degraded_members = 0;
  for (int source_id : source_ids) {
    auto answer_or = Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    sum += answer_or.value()[0];
    auto degraded_or = answer_degraded(source_id);
    if (!degraded_or.ok()) return degraded_or.status();
    if (degraded_or.value()) ++degraded_members;
  }
  return std::make_pair(sum, degraded_members);
}

Status StreamShard::VerifyLinkConsistency() const {
  for (const auto& [id, node] : sources_) {
    // Batch-resident sources hold mirror == predictor bitwise by
    // construction (one lane stores both); there is no separate server
    // predictor to compare against.
    if (fleet_ != nullptr && fleet_->resident(id)) continue;
    if (node->resync_pending()) continue;
    auto predictor_or = server_.predictor(id);
    if (!predictor_or.ok()) return predictor_or.status();
    if (!node->mirror().StateEquals(*predictor_or.value())) {
      return Status::Internal(
          StrFormat("link-consistency violated for healthy source %d", id));
    }
  }
  return Status::OK();
}

Result<bool> StreamShard::answer_degraded(int source_id) const {
  if (fleet_ != nullptr && fleet_->resident(source_id)) {
    return fleet_->answer_degraded(source_id);
  }
  return server_.degraded(source_id);
}

Result<bool> StreamShard::resync_pending(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->resync_pending();
}

ProtocolFaultStats StreamShard::fault_stats() const {
  ProtocolFaultStats merged = server_.fault_stats();
  // Degraded ticks on batch-resident lanes are accounted by the fleet
  // engine (the server only sees the spilled sources).
  if (fleet_ != nullptr) merged.degraded_ticks += fleet_->degraded_ticks();
  for (const auto& [id, node] : sources_) {
    merged.MergeFrom(node->fault_stats());
  }
  return merged;
}

Status StreamShard::VerifyMirrorConsistency() const {
  for (const auto& [id, node] : sources_) {
    if (fleet_ != nullptr && fleet_->resident(id)) continue;
    auto predictor_or = server_.predictor(id);
    if (!predictor_or.ok()) return predictor_or.status();
    if (!node->mirror().StateEquals(*predictor_or.value())) {
      return Status::Internal(
          StrFormat("mirror-consistency violated for source %d", id));
    }
  }
  return Status::OK();
}

Result<double> StreamShard::source_delta(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->delta();
}

Result<int64_t> StreamShard::updates_sent(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->updates_sent();
}

Result<size_t> StreamShard::source_dim(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->mirror().dim();
}

Result<SourceNode::CheckpointState> StreamShard::ExportSourceState(
    int source_id) const {
  if (fleet_ != nullptr && fleet_->resident(source_id)) {
    return fleet_->SynthesizeSourceState(source_id);
  }
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->ExportCheckpoint();
}

Result<ServerNode::LinkSnapshot> StreamShard::ExportLinkState(
    int source_id) const {
  if (fleet_ != nullptr && fleet_->resident(source_id)) {
    return fleet_->SynthesizeLinkState(source_id);
  }
  return server_.ExportLink(source_id);
}

}  // namespace dkf
