#ifndef DKF_RUNTIME_SHARD_H_
#define DKF_RUNTIME_SHARD_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "fleet/fleet_engine.h"
#include "fusion/fusion_engine.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace_sink.h"
#include "query/registry.h"
#include "serve/subscription.h"
#include "serve/subscription_engine.h"

namespace dkf {

class CheckpointAccess;  // src/checkpoint/: snapshot save/restore plumbing

/// One partition of a ShardedStreamEngine's fleet. A shard owns the
/// complete dual-link state for its sources — the source-side
/// SourceNodes (mirror KF_m, optional KF_c), the server-side predictors
/// (its own ServerNode), and its own uplink Channel — so the per-tick
/// hot path touches nothing shared with other shards. All cross-shard
/// coordination (query registry, aggregate bindings, stats merging)
/// lives at the engine.
///
/// Thread contract: ProcessTick is called from a worker thread, one
/// call per shard per engine tick, never concurrently with any other
/// method of the same shard. Every other method runs on the engine's
/// driver thread between ticks.
class StreamShard {
 public:
  /// `channel` should have per_source_rng set (the engine forces it) so
  /// drop sequences do not depend on which shard a source landed in.
  StreamShard(const ChannelOptions& channel, EnergyModelOptions energy,
              double default_delta,
              const ProtocolOptions& protocol = ProtocolOptions(),
              const ServeOptions& serve = ServeOptions());

  /// Switches this shard to the batched fleet engine (src/fleet/,
  /// docs/fleet.md): steady-state sources are folded into SoA lanes and
  /// ticked by flat kernels, bit-identical to the per-source path. Must
  /// be called before any AddSource. Requires per_source_rng (the
  /// batched path's send order differs from the per-source ascending
  /// sweep, which only the per-source fault streams make unobservable).
  Status EnableFleet();

  bool fleet_enabled() const { return fleet_ != nullptr; }

  /// Sources currently folded into batch lanes (0 without EnableFleet).
  size_t fleet_resident_count() const {
    return fleet_ ? fleet_->resident_count() : 0;
  }

  /// Installs a source and its dual filters on this shard.
  Status AddSource(int source_id, const StateModel& model);

  /// Registers a fusion group on this shard (the engine pins a group to
  /// the shard ShardIndexFor(group_id) names, so the whole group ticks
  /// on one worker). Engine-wide id-disjointness is validated by the
  /// engine; this shard rejects member ids colliding with its own
  /// sources.
  Status RegisterFusionGroup(const FusionGroupConfig& config);

  /// Adds / removes a member of a live group between ticks. Both charge
  /// one control message (admission handoff / dismissal).
  Status AddFusionMember(int group_id, int member_id);
  Status RemoveFusionMember(int group_id, int member_id);

  /// Re-derives a group's event trigger from `registry` (tightest fused
  /// precision, or the registration delta when no query binds) and
  /// installs it, charging one control message per member on change.
  Status ReconfigureFusionGroup(int group_id, const QueryRegistry& registry);

  Result<Vector> AnswerFused(int group_id) const;
  Result<FusionEngine::ConfidentAnswer> AnswerFusedWithConfidence(
      int group_id) const;
  Result<bool> fused_degraded(int group_id) const;

  /// The extended mirror-consistency contract over this shard's groups.
  Status VerifyFusedConsistency() const {
    return fusion_.VerifyGroupConsistency();
  }

  /// Fusion-subsystem counters merged over this shard's groups.
  FusionStats fusion_stats() const { return fusion_.stats(); }

  /// Read access to this shard's fusion subsystem.
  const FusionEngine& fusion() const { return fusion_; }

  size_t num_fusion_members() const { return fusion_.num_members(); }

  /// Re-derives the source's effective delta/smoothing from `registry`
  /// and pushes it to the node, counting a control message on change.
  Status Reconfigure(int source_id, const QueryRegistry& registry);

  /// Installs new precision widths on many of this shard's sources in
  /// one sweep — the governor's per-epoch fan-out. Entries whose delta
  /// already matches are skipped entirely (no control message, no
  /// fleet-lane spill), so a cohort-stable allocation costs nothing.
  Status ReconfigureSources(const std::vector<std::pair<int, double>>& deltas);

  /// Runs one protocol tick over this shard's sources. `readings` is
  /// the engine's full batch; entries for other shards' sources are
  /// ignored.
  Status ProcessTick(int64_t tick, const std::map<int, Vector>& readings);

  /// Allocation-light variant for huge fleets: readings come as parallel
  /// id/value arrays (see ReadingBatch). Entries for other shards'
  /// sources are ignored.
  Status ProcessTick(int64_t tick, const ReadingBatch& batch);

  Result<Vector> Answer(int source_id) const;
  Result<ServerNode::ConfidentAnswer> AnswerWithConfidence(
      int source_id) const;

  /// Sum of the current answers for `source_ids` (all owned by this
  /// shard), in the given order — the shard's contribution to an
  /// aggregate query.
  Result<double> PartialSum(const std::vector<int>& source_ids) const;

  /// Sum of the current answers for `source_ids` plus the number of
  /// members currently served degraded.
  Result<std::pair<double, int>> PartialSumWithStatus(
      const std::vector<int>& source_ids) const;

  /// Mirror-consistency invariant over this shard's links.
  Status VerifyMirrorConsistency() const;

  /// The fault-tolerant variant: every source NOT pending resync must
  /// have a mirror bit-identical to its server predictor.
  Status VerifyLinkConsistency() const;

  /// Whether a source's answers are currently served degraded.
  Result<bool> answer_degraded(int source_id) const;

  /// Whether a source is in the pending-resync state.
  Result<bool> resync_pending(int source_id) const;

  /// This shard's merged protocol fault counters (server ingress +
  /// per-source divergence).
  ProtocolFaultStats fault_stats() const;

  Result<double> source_delta(int source_id) const;
  Result<int64_t> updates_sent(int source_id) const;

  /// Measurement width of a source's stream (for aggregate-eligibility
  /// checks at the engine).
  Result<size_t> source_dim(int source_id) const;

  const ChannelStats& uplink_traffic() const { return channel_.total(); }

  /// Per-source uplink counters from this shard's channel (zeros for an
  /// id that never sent).
  const ChannelStats& source_uplink(int source_id) const {
    return channel_.for_source(source_id);
  }

  /// The mirror-side noise servo for a source, or nullptr for an unknown
  /// id. Valid for fleet-resident sources too: the dormant node carries
  /// the adapter state, which only corrections (spilled path) can move.
  const NoiseAdapter* source_noise_adapter(int source_id) const {
    auto it = sources_.find(source_id);
    return it == sources_.end() ? nullptr : &it->second->noise_adapter();
  }

  /// Lifetime count of batch-lane spills (0 without EnableFleet).
  int64_t fleet_spill_count() const {
    return fleet_ ? fleet_->spill_count() : 0;
  }

  int64_t control_messages() const { return control_messages_; }
  size_t num_sources() const { return sources_.size(); }

  /// Attaches a standing query against one of this shard's sources
  /// (aggregate subscriptions live at the engine). `attach_step` is the
  /// engine's current tick count.
  Status Subscribe(const Subscription& subscription, int64_t attach_step);

  /// Detaches a standing query owned by this shard.
  Status Unsubscribe(int64_t subscription_id);

  bool has_subscription(int64_t subscription_id) const {
    return serve_.has_subscription(subscription_id);
  }
  size_t num_subscriptions() const { return serve_.num_subscriptions(); }

  /// This shard's undrained notification batches (already in canonical
  /// per-shard order; the engine merges across shards).
  std::vector<NotificationBatch> DrainNotifications() {
    return serve_.Drain();
  }

  ServeStats serve_stats() const { return serve_.stats(); }

  /// Per-source snapshot state, routed so checkpointing works with the
  /// fleet engine on: a batch-resident source's state is synthesized
  /// from its lane (bit-identical to what the per-source objects would
  /// export); everyone else exports from the real objects.
  Result<SourceNode::CheckpointState> ExportSourceState(int source_id) const;
  Result<ServerNode::LinkSnapshot> ExportLinkState(int source_id) const;

  /// Wires this shard's channel, server, and source nodes (present and
  /// future) into an observability sink. The engine hands each shard its
  /// own sink so emission stays lock-free under the thread contract;
  /// traces are merged deterministically afterwards. Pass nullptr to
  /// unwire.
  void set_trace_sink(TraceSink* sink);

 private:
  friend class CheckpointAccess;

  /// Shared tail of both ProcessTick overloads: serve the shard's
  /// subscriptions and record per-tick observability.
  Status FinishTick(int64_t tick, bool timed,
                    std::chrono::steady_clock::time_point start);

  ServerNode server_;
  Channel channel_;
  EnergyModelOptions energy_;
  double default_delta_;
  ProtocolOptions protocol_;
  /// Remembered from the channel options: EnableFleet requires it.
  bool per_source_rng_ = false;
  std::map<int, std::unique_ptr<SourceNode>> sources_;
  /// Smoothing factor currently installed at each node (tracked so an
  /// unrelated reconfiguration does not restart KF_c).
  std::map<int, std::optional<double>> installed_smoothing_;
  /// This shard's slice of the serving front-end: subscriptions against
  /// owned sources, evaluated at the tail of ProcessTick (still on the
  /// worker thread — the per-shard index is what scales the fan-out).
  SubscriptionEngine serve_;
  /// This shard's fusion groups (src/fusion/). Fused uplink traffic
  /// (message.group_id >= 0) is routed here by the channel sink instead
  /// of the per-source server node. Fusion members never enter the
  /// batched fleet: they are not SourceNodes.
  FusionEngine fusion_;
  /// Batched steady-state engine; null unless EnableFleet was called.
  std::unique_ptr<FleetEngine> fleet_;
  int64_t control_messages_ = 0;
  /// Per-shard observability sink (owned by the engine; null while
  /// tracing is off).
  TraceSink* obs_sink_ = nullptr;
};

}  // namespace dkf

#endif  // DKF_RUNTIME_SHARD_H_
