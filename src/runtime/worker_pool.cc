#include "runtime/worker_pool.h"

namespace dkf {

WorkerPool::WorkerPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::DrainBatch(const std::vector<Task>& tasks) {
  for (;;) {
    const size_t index = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (index >= tasks.size()) return;
    Status status = tasks[index]();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      statuses_[index] = std::move(status);
      ++completed_;
    }
    batch_done_.notify_one();
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::vector<Task>* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ ||
               (batch_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = generation_;
      batch = batch_;
      ++draining_;
    }
    DrainBatch(*batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --draining_;
    }
    // The coordinator may be waiting for the last straggler to leave
    // the batch before it can free the task vector.
    batch_done_.notify_one();
  }
}

Status WorkerPool::RunAll(const std::vector<Task>& tasks) {
  if (tasks.empty()) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &tasks;
    statuses_.assign(tasks.size(), Status::OK());
    next_task_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    ++generation_;
  }
  work_ready_.notify_all();
  // The calling thread works the batch too (see class comment).
  DrainBatch(tasks);
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&] {
    return completed_ == tasks.size() && draining_ == 0;
  });
  batch_ = nullptr;
  for (const Status& status : statuses_) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace dkf
