#include "runtime/sharded_engine.h"

#include <algorithm>

#include "common/string_util.h"

namespace dkf {

namespace {

int ClampShards(int num_shards) { return std::max(1, num_shards); }

/// The serving layer's view of the whole engine, used by the
/// engine-level aggregate subscriptions: member values are read from
/// their owning shards, aggregate sums via the usual partial-sum merge.
/// Driver-thread only, between ticks / after the tick joins.
class EngineAnswers final : public ServeAnswerSource {
 public:
  explicit EngineAnswers(const ShardedStreamEngine& engine)
      : engine_(engine) {}

  Result<double> SourceValue(int source_id) const override {
    auto answer_or = engine_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto answer_or = engine_.AnswerWithConfidence(source_id);
    if (!answer_or.ok()) return answer_or.status();
    if (!answer_or.value().covariance.has_value()) return 0.0;
    return (*answer_or.value().covariance)(0, 0);
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    // Member order, not shard order: the delivered value must be
    // bit-identical at any shard count.
    return engine_.AnswerAggregateCanonical(aggregate_id);
  }

  Result<double> FusedValue(int group_id) const override {
    auto answer_or = engine_.AnswerFused(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> FusedUncertainty(int group_id) const override {
    auto answer_or = engine_.AnswerFusedWithConfidence(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value().covariance(0, 0);
  }

 private:
  const ShardedStreamEngine& engine_;
};

}  // namespace

ShardedStreamEngine::ShardedStreamEngine(
    const ShardedStreamEngineOptions& options)
    : options_(options),
      aggregate_serve_(options.serve),
      pool_(static_cast<size_t>(ClampShards(options.num_shards) - 1)) {
  options_.num_shards = ClampShards(options.num_shards);
  // Per-source drop streams are the determinism contract: a source's
  // channel behavior must not depend on which shard it landed in.
  ChannelOptions channel = options_.channel;
  channel.per_source_rng = true;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<StreamShard>(
        channel, options_.energy, options_.default_delta,
        options_.protocol, options_.serve));
    if (options_.batched_fleet) {
      // Cannot fail: the shard is empty and per_source_rng was just
      // forced on above.
      (void)shards_.back()->EnableFleet();
    }
  }
  if (options_.governor.enabled) {
    governor_ = std::make_unique<DeltaGovernor>(options_.governor);
  }
}

size_t ShardedStreamEngine::fleet_resident_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->fleet_resident_count();
  return total;
}

int ShardedStreamEngine::ShardIndexFor(int source_id) const {
  const int n = static_cast<int>(shards_.size());
  return ((source_id % n) + n) % n;
}

Status ShardedStreamEngine::RegisterSource(int source_id,
                                           const StateModel& model) {
  if (HasSource(source_id)) {
    return Status::AlreadyExists(
        StrFormat("source %d already registered", source_id));
  }
  if (fusion_members_.contains(source_id)) {
    return Status::AlreadyExists(
        StrFormat("id %d already belongs to fusion group %d", source_id,
                  fusion_members_.at(source_id)));
  }
  const int shard = ShardIndexFor(source_id);
  DKF_RETURN_IF_ERROR(shards_[static_cast<size_t>(shard)]->AddSource(
      source_id, model));
  registered_[source_id] = shard;
  models_[source_id] = model;
  return Status::OK();
}

Status ShardedStreamEngine::SubmitQuery(const ContinuousQuery& query) {
  if (query.id >= kReservedQueryIdBase) {
    return Status::InvalidArgument(
        StrFormat("query ids >= %d are reserved for aggregate members",
                  kReservedQueryIdBase));
  }
  if (!HasSource(query.source_id)) {
    return Status::NotFound(
        StrFormat("query %d targets unregistered source %d", query.id,
                  query.source_id));
  }
  DKF_RETURN_IF_ERROR(registry_.AddQuery(query));
  return OwningShard(query.source_id).Reconfigure(query.source_id, registry_);
}

Status ShardedStreamEngine::RemoveQuery(int query_id) {
  if (query_id >= kReservedQueryIdBase) {
    return Status::InvalidArgument(
        "aggregate members are removed via RemoveAggregateQuery");
  }
  // Find the query's source before removal so we can relax it after.
  int source_id = -1;
  for (int candidate : registry_.ActiveSources()) {
    for (const ContinuousQuery& query :
         registry_.QueriesForSource(candidate)) {
      if (query.id == query_id) source_id = candidate;
    }
  }
  DKF_RETURN_IF_ERROR(registry_.RemoveQuery(query_id));
  if (source_id >= 0) {
    return OwningShard(source_id).Reconfigure(source_id, registry_);
  }
  return Status::OK();
}

Status ShardedStreamEngine::RegisterFusionGroup(
    const FusionGroupConfig& config) {
  if (fusion_groups_.contains(config.group_id)) {
    return Status::AlreadyExists(
        StrFormat("fusion group %d already registered", config.group_id));
  }
  // Engine-wide disjointness: member ids share the per-source namespace
  // with plain sources and every other group's members, regardless of
  // which shards the colliding ids landed on.
  for (int member_id : config.member_ids) {
    if (HasSource(member_id)) {
      return Status::AlreadyExists(
          StrFormat("fusion member id %d is a registered source", member_id));
    }
    if (fusion_members_.contains(member_id)) {
      return Status::AlreadyExists(
          StrFormat("fusion member id %d already belongs to group %d",
                    member_id, fusion_members_.at(member_id)));
    }
  }
  // The whole group rides one shard: the posterior and every member
  // mirror must tick on the same worker for the intra-tick broadcast
  // diffusion to stay share-nothing.
  const int shard = ShardIndexFor(config.group_id);
  DKF_RETURN_IF_ERROR(
      shards_[static_cast<size_t>(shard)]->RegisterFusionGroup(config));
  fusion_groups_[config.group_id] = shard;
  for (int member_id : config.member_ids) {
    fusion_members_[member_id] = config.group_id;
  }
  return Status::OK();
}

Status ShardedStreamEngine::AddFusionMember(int group_id, int member_id) {
  auto it = fusion_groups_.find(group_id);
  if (it == fusion_groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  if (HasSource(member_id)) {
    return Status::AlreadyExists(
        StrFormat("fusion member id %d is a registered source", member_id));
  }
  if (fusion_members_.contains(member_id)) {
    return Status::AlreadyExists(
        StrFormat("fusion member id %d already belongs to group %d",
                  member_id, fusion_members_.at(member_id)));
  }
  DKF_RETURN_IF_ERROR(shards_[static_cast<size_t>(it->second)]
                          ->AddFusionMember(group_id, member_id));
  fusion_members_[member_id] = group_id;
  return Status::OK();
}

Status ShardedStreamEngine::RemoveFusionMember(int group_id, int member_id) {
  auto it = fusion_groups_.find(group_id);
  if (it == fusion_groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  DKF_RETURN_IF_ERROR(shards_[static_cast<size_t>(it->second)]
                          ->RemoveFusionMember(group_id, member_id));
  fusion_members_.erase(member_id);
  return Status::OK();
}

Status ShardedStreamEngine::SubmitFusedQuery(const FusedQuery& query) {
  if (query.id >= kReservedQueryIdBase) {
    return Status::InvalidArgument(
        StrFormat("query ids >= %d are reserved for aggregate members",
                  kReservedQueryIdBase));
  }
  auto it = fusion_groups_.find(query.group_id);
  if (it == fusion_groups_.end()) {
    return Status::NotFound(
        StrFormat("fused query %d targets unregistered fusion group %d",
                  query.id, query.group_id));
  }
  DKF_RETURN_IF_ERROR(registry_.AddFusedQuery(query));
  return shards_[static_cast<size_t>(it->second)]->ReconfigureFusionGroup(
      query.group_id, registry_);
}

Status ShardedStreamEngine::RemoveFusedQuery(int query_id) {
  // Find the query's group before removal so we can relax it after.
  int group_id = -1;
  for (int candidate : registry_.ActiveGroups()) {
    for (const FusedQuery& query :
         registry_.FusedQueriesForGroup(candidate)) {
      if (query.id == query_id) group_id = candidate;
    }
  }
  DKF_RETURN_IF_ERROR(registry_.RemoveFusedQuery(query_id));
  if (group_id >= 0) {
    return shards_[static_cast<size_t>(fusion_groups_.at(group_id))]
        ->ReconfigureFusionGroup(group_id, registry_);
  }
  return Status::OK();
}

Result<Vector> ShardedStreamEngine::AnswerFused(int group_id) const {
  auto it = fusion_groups_.find(group_id);
  if (it == fusion_groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return shards_[static_cast<size_t>(it->second)]->AnswerFused(group_id);
}

Result<FusionEngine::ConfidentAnswer>
ShardedStreamEngine::AnswerFusedWithConfidence(int group_id) const {
  auto it = fusion_groups_.find(group_id);
  if (it == fusion_groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return shards_[static_cast<size_t>(it->second)]->AnswerFusedWithConfidence(
      group_id);
}

Result<bool> ShardedStreamEngine::fused_degraded(int group_id) const {
  auto it = fusion_groups_.find(group_id);
  if (it == fusion_groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return shards_[static_cast<size_t>(it->second)]->fused_degraded(group_id);
}

FusionStats ShardedStreamEngine::fusion_stats() const {
  FusionStats merged;
  for (const auto& shard : shards_) {
    merged.MergeFrom(shard->fusion_stats());
  }
  return merged;
}

Status ShardedStreamEngine::VerifyFusedConsistency() const {
  for (const auto& shard : shards_) {
    DKF_RETURN_IF_ERROR(shard->VerifyFusedConsistency());
  }
  return Status::OK();
}

Status ShardedStreamEngine::SubmitAggregateQuery(
    const AggregateQuery& query, const std::vector<double>& weights) {
  if (aggregates_.contains(query.id)) {
    return Status::AlreadyExists(
        StrFormat("aggregate %d already registered", query.id));
  }
  for (int source_id : query.source_ids) {
    if (!HasSource(source_id)) {
      return Status::NotFound(
          StrFormat("aggregate %d targets unregistered source %d", query.id,
                    source_id));
    }
    auto dim_or = OwningShard(source_id).source_dim(source_id);
    if (!dim_or.ok()) return dim_or.status();
    if (dim_or.value() != 1) {
      return Status::InvalidArgument(
          "aggregate queries support scalar sources only");
    }
  }
  auto deltas_or = SplitAggregatePrecision(query, weights);
  if (!deltas_or.ok()) return deltas_or.status();
  const std::vector<double>& deltas = deltas_or.value();

  AggregateBinding binding;
  binding.source_ids = query.source_ids;
  for (size_t i = 0; i < query.source_ids.size(); ++i) {
    // Same synthetic-member id scheme as StreamManager, so workloads
    // replayed on either system bind identically.
    ContinuousQuery member;
    member.id = kReservedQueryIdBase + query.id * 1024 +
                static_cast<int>(i);
    member.source_id = query.source_ids[i];
    member.precision = deltas[i];
    member.description = StrFormat("aggregate %d member", query.id);
    Status status = registry_.AddQuery(member);
    if (!status.ok()) {
      // Roll back the members installed so far.
      for (int installed : binding.synthetic_query_ids) {
        (void)registry_.RemoveQuery(installed);
      }
      return status;
    }
    binding.synthetic_query_ids.push_back(member.id);
  }
  for (int source_id : query.source_ids) {
    DKF_RETURN_IF_ERROR(
        OwningShard(source_id).Reconfigure(source_id, registry_));
  }
  // Group members by owning shard (shard order, member order preserved
  // within a shard) for partial-sum answering.
  std::map<int, std::vector<int>> grouped;
  for (int source_id : query.source_ids) {
    grouped[ShardIndexFor(source_id)].push_back(source_id);
  }
  binding.members_by_shard.assign(grouped.begin(), grouped.end());
  aggregates_[query.id] = std::move(binding);
  return Status::OK();
}

Status ShardedStreamEngine::RemoveAggregateQuery(int aggregate_id) {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  if (aggregate_serve_.has_aggregate_subscriptions(aggregate_id)) {
    return Status::FailedPrecondition(
        StrFormat("aggregate %d still has standing subscriptions",
                  aggregate_id));
  }
  for (int query_id : it->second.synthetic_query_ids) {
    DKF_RETURN_IF_ERROR(registry_.RemoveQuery(query_id));
  }
  for (int source_id : it->second.source_ids) {
    DKF_RETURN_IF_ERROR(
        OwningShard(source_id).Reconfigure(source_id, registry_));
  }
  aggregates_.erase(it);
  return Status::OK();
}

Result<double> ShardedStreamEngine::AnswerAggregate(int aggregate_id) const {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  double sum = 0.0;
  for (const auto& [shard, members] : it->second.members_by_shard) {
    auto partial_or = shards_[static_cast<size_t>(shard)]->PartialSum(members);
    if (!partial_or.ok()) return partial_or.status();
    sum += partial_or.value();
  }
  return sum;
}

Result<double> ShardedStreamEngine::AnswerAggregateCanonical(
    int aggregate_id) const {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  double sum = 0.0;
  for (int source_id : it->second.source_ids) {
    auto answer_or = Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    sum += answer_or.value()[0];
  }
  return sum;
}

Result<ShardedStreamEngine::AggregateAnswer>
ShardedStreamEngine::AnswerAggregateWithStatus(int aggregate_id) const {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  AggregateAnswer aggregate;
  for (const auto& [shard, members] : it->second.members_by_shard) {
    auto partial_or =
        shards_[static_cast<size_t>(shard)]->PartialSumWithStatus(members);
    if (!partial_or.ok()) return partial_or.status();
    aggregate.value += partial_or.value().first;
    aggregate.degraded_members += partial_or.value().second;
  }
  return aggregate;
}

Status ShardedStreamEngine::ProcessTick(const std::map<int, Vector>& readings) {
  if (readings.size() != registered_.size() + fusion_members_.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu readings for %zu sources + %zu fusion members",
                  readings.size(), registered_.size(),
                  fusion_members_.size()));
  }
  tick_tasks_.clear();
  tick_tasks_.reserve(shards_.size());
  const int64_t tick = ticks_;
  for (auto& shard : shards_) {
    StreamShard* raw = shard.get();
    tick_tasks_.push_back(
        [raw, tick, &readings] { return raw->ProcessTick(tick, readings); });
  }
  DKF_RETURN_IF_ERROR(pool_.RunAll(tick_tasks_));
  // Aggregate subscriptions need every shard's partial sums, so their
  // serve pass runs on the driver after the tick joins.
  DKF_RETURN_IF_ERROR(aggregate_serve_.EndTick(tick, EngineAnswers(*this)));
  DKF_RETURN_IF_ERROR(MaybeRunGovernor());
  ++ticks_;
  return Status::OK();
}

Status ShardedStreamEngine::ProcessTick(const ReadingBatch& batch) {
  if (batch.ids.size() != batch.values.size()) {
    return Status::InvalidArgument(
        StrFormat("reading batch has %zu ids but %zu values",
                  batch.ids.size(), batch.values.size()));
  }
  if (batch.ids.size() != registered_.size() + fusion_members_.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu readings for %zu sources + %zu fusion members",
                  batch.ids.size(), registered_.size(),
                  fusion_members_.size()));
  }
  tick_tasks_.clear();
  tick_tasks_.reserve(shards_.size());
  const int64_t tick = ticks_;
  for (auto& shard : shards_) {
    StreamShard* raw = shard.get();
    tick_tasks_.push_back(
        [raw, tick, &batch] { return raw->ProcessTick(tick, batch); });
  }
  DKF_RETURN_IF_ERROR(pool_.RunAll(tick_tasks_));
  DKF_RETURN_IF_ERROR(aggregate_serve_.EndTick(tick, EngineAnswers(*this)));
  DKF_RETURN_IF_ERROR(MaybeRunGovernor());
  ++ticks_;
  return Status::OK();
}

Status ShardedStreamEngine::Subscribe(const Subscription& subscription) {
  // Ids order the merged notification stream, so they must be unique
  // across every shard slice and the aggregate slice.
  if (aggregate_serve_.has_subscription(subscription.id)) {
    return Status::AlreadyExists(
        StrFormat("subscription %lld already registered",
                  static_cast<long long>(subscription.id)));
  }
  for (const auto& shard : shards_) {
    if (shard->has_subscription(subscription.id)) {
      return Status::AlreadyExists(
          StrFormat("subscription %lld already registered",
                    static_cast<long long>(subscription.id)));
    }
  }
  if (subscription.kind == SubscriptionKind::kFused) {
    // Fused subscriptions live on the group's pinned shard — never the
    // engine-level aggregate slice — so notification evaluation runs on
    // the same worker that owns the posterior.
    auto it = fusion_groups_.find(subscription.group_id);
    if (it == fusion_groups_.end()) {
      return Status::NotFound(
          StrFormat("subscription %lld targets unregistered fusion group %d",
                    static_cast<long long>(subscription.id),
                    subscription.group_id));
    }
    return shards_[static_cast<size_t>(it->second)]->Subscribe(subscription,
                                                               ticks_);
  }
  if (subscription.kind == SubscriptionKind::kAggregate) {
    auto it = aggregates_.find(subscription.aggregate_id);
    if (it == aggregates_.end()) {
      return Status::NotFound(
          StrFormat("subscription %lld targets unregistered aggregate %d",
                    static_cast<long long>(subscription.id),
                    subscription.aggregate_id));
    }
    return aggregate_serve_.Subscribe(subscription, ticks_,
                                      EngineAnswers(*this),
                                      it->second.source_ids);
  }
  if (!HasSource(subscription.source_id)) {
    return Status::NotFound(
        StrFormat("subscription %lld targets unregistered source %d",
                  static_cast<long long>(subscription.id),
                  subscription.source_id));
  }
  return OwningShard(subscription.source_id)
      .Subscribe(subscription, ticks_);
}

Status ShardedStreamEngine::Unsubscribe(int64_t subscription_id) {
  if (aggregate_serve_.has_subscription(subscription_id)) {
    return aggregate_serve_.Unsubscribe(subscription_id);
  }
  for (const auto& shard : shards_) {
    if (shard->has_subscription(subscription_id)) {
      return shard->Unsubscribe(subscription_id);
    }
  }
  return Status::NotFound(
      StrFormat("subscription %lld not registered",
                static_cast<long long>(subscription_id)));
}

std::vector<NotificationBatch> ShardedStreamEngine::DrainNotifications() {
  std::vector<std::vector<NotificationBatch>> streams;
  streams.reserve(shards_.size() + 1);
  for (const auto& shard : shards_) {
    streams.push_back(shard->DrainNotifications());
  }
  streams.push_back(aggregate_serve_.Drain());
  return MergeNotificationBatches(streams);
}

ServeStats ShardedStreamEngine::serve_stats() const {
  ServeStats merged = aggregate_serve_.stats();
  for (const auto& shard : shards_) merged.MergeFrom(shard->serve_stats());
  return merged;
}

size_t ShardedStreamEngine::num_subscriptions() const {
  size_t total = aggregate_serve_.num_subscriptions();
  for (const auto& shard : shards_) total += shard->num_subscriptions();
  return total;
}

Result<Vector> ShardedStreamEngine::Answer(int source_id) const {
  return OwningShard(source_id).Answer(source_id);
}

Result<ServerNode::ConfidentAnswer> ShardedStreamEngine::AnswerWithConfidence(
    int source_id) const {
  return OwningShard(source_id).AnswerWithConfidence(source_id);
}

Status ShardedStreamEngine::VerifyMirrorConsistency() const {
  for (const auto& shard : shards_) {
    DKF_RETURN_IF_ERROR(shard->VerifyMirrorConsistency());
  }
  return Status::OK();
}

ChannelStats ShardedStreamEngine::uplink_traffic() const {
  std::vector<const ChannelStats*> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    per_shard.push_back(&shard->uplink_traffic());
  }
  return MergeChannelStats(per_shard);
}

Status ShardedStreamEngine::VerifyLinkConsistency() const {
  for (const auto& shard : shards_) {
    DKF_RETURN_IF_ERROR(shard->VerifyLinkConsistency());
  }
  return Status::OK();
}

Result<bool> ShardedStreamEngine::answer_degraded(int source_id) const {
  if (!HasSource(source_id)) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return OwningShard(source_id).answer_degraded(source_id);
}

Result<bool> ShardedStreamEngine::resync_pending(int source_id) const {
  if (!HasSource(source_id)) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return OwningShard(source_id).resync_pending(source_id);
}

ProtocolFaultStats ShardedStreamEngine::fault_stats() const {
  ProtocolFaultStats merged;
  for (const auto& shard : shards_) {
    merged.MergeFrom(shard->fault_stats());
  }
  return merged;
}

MergedRuntimeStats ShardedStreamEngine::stats() const {
  MergedRuntimeStats merged;
  merged.uplink = uplink_traffic();
  merged.control_messages = control_messages();
  merged.sources = static_cast<int64_t>(registered_.size());
  merged.faults = fault_stats();
  return merged;
}

int64_t ShardedStreamEngine::control_messages() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->control_messages();
  return total;
}

Result<double> ShardedStreamEngine::source_delta(int source_id) const {
  if (!HasSource(source_id)) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return OwningShard(source_id).source_delta(source_id);
}

Status ShardedStreamEngine::ReconfigureSources(
    const std::vector<std::pair<int, double>>& deltas) {
  for (const auto& [source_id, delta] : deltas) {
    if (!HasSource(source_id)) {
      return Status::NotFound(
          StrFormat("source %d not registered", source_id));
    }
    if (!(delta > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("delta for source %d must be positive", source_id));
    }
  }
  // One fan-out per owning shard, ascending shard index; within a shard
  // the caller's order is preserved.
  std::vector<std::vector<std::pair<int, double>>> per_shard(shards_.size());
  for (const auto& entry : deltas) {
    per_shard[static_cast<size_t>(ShardIndexFor(entry.first))].push_back(
        entry);
  }
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (per_shard[shard].empty()) continue;
    DKF_RETURN_IF_ERROR(shards_[shard]->ReconfigureSources(per_shard[shard]));
  }
  return Status::OK();
}

int64_t ShardedStreamEngine::fleet_spill_count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->fleet_spill_count();
  return total;
}

Status ShardedStreamEngine::MaybeRunGovernor() {
  if (governor_ == nullptr) return Status::OK();
  const int64_t tick = ticks_;  // the tick that just finished
  const int64_t epoch_ticks = governor_->options().epoch_ticks;
  if (epoch_ticks < 1) {
    return Status::InvalidArgument("governor epoch_ticks must be >= 1");
  }
  // Stateless schedule: epoch boundaries depend only on the tick count,
  // so a snapshot restored mid-epoch resumes the exact same cadence.
  if ((tick + 1) % epoch_ticks != 0) return Status::OK();

  std::vector<GovernorSourceSample> samples;
  samples.reserve(registered_.size());
  for (const auto& [source_id, shard_index] : registered_) {
    const StreamShard& shard = *shards_[static_cast<size_t>(shard_index)];
    GovernorSourceSample sample;
    sample.source_id = source_id;
    const ChannelStats& uplink = shard.source_uplink(source_id);
    sample.bytes = uplink.bytes;
    auto updates_or = shard.updates_sent(source_id);
    if (!updates_or.ok()) return updates_or.status();
    sample.updates = updates_or.value();
    auto delta_or = shard.source_delta(source_id);
    if (!delta_or.ok()) return delta_or.status();
    sample.delta = delta_or.value();
    auto pending_or = shard.resync_pending(source_id);
    if (!pending_or.ok()) return pending_or.status();
    auto degraded_or = shard.answer_degraded(source_id);
    if (!degraded_or.ok()) return degraded_or.status();
    sample.unhealthy = pending_or.value() || degraded_or.value();
    samples.push_back(sample);
  }

  auto result_or = governor_->PlanEpoch(samples);
  if (!result_or.ok()) return result_or.status();
  const GovernorEpochResult& result = result_or.value();

  if (!result.changes.empty()) {
    std::vector<std::pair<int, double>> installs;
    installs.reserve(result.changes.size());
    for (const DeltaChange& change : result.changes) {
      installs.emplace_back(change.source_id, change.delta);
    }
    DKF_RETURN_IF_ERROR(ReconfigureSources(installs));
  }

  if (!sinks_.empty()) {
    // Per-source events go to the OWNING shard's sink so the merged
    // trace is layout-invariant: all events for one (step, source) must
    // live in one stream, in emission order, at any shard count.
    for (const DeltaChange& change : result.changes) {
      sinks_[static_cast<size_t>(ShardIndexFor(change.source_id))]->Emit(
          tick, change.source_id,
          change.delta > change.previous ? TraceEventKind::kDeltaRaise
                                         : TraceEventKind::kDeltaLower,
          TraceActor::kGovernor, change.delta, change.previous,
          result.epoch);
    }
    for (int source_id : result.newly_frozen) {
      sinks_[static_cast<size_t>(ShardIndexFor(source_id))]->Emit(
          tick, source_id, TraceEventKind::kGovernorFreeze,
          TraceActor::kGovernor, governor_->states().at(source_id).held_delta,
          0.0, result.epoch);
    }
    // The epoch summary carries a negative source key, parked in shard
    // 0's sink like the aggregate-serve events.
    sinks_.front()->Emit(tick, -1, TraceEventKind::kGovernorEpoch,
                         TraceActor::kGovernor, result.spend, result.budget,
                         result.epoch);
    sinks_.front()->SetGauge("governor.budget_bytes_per_tick", result.budget);
    sinks_.front()->SetGauge("governor.spend_bytes_per_tick", result.spend);
    sinks_.front()->SetGauge("governor.overshoot", result.overshoot);
    sinks_.front()->SetGauge("governor.frozen",
                             static_cast<double>(result.frozen));
  }
  return Status::OK();
}

Status ShardedStreamEngine::EnableTracing(const ObsOptions& obs) {
  sinks_.clear();
  sinks_.reserve(shards_.size());
  for (auto& shard : shards_) {
    sinks_.push_back(std::make_unique<TraceSink>(obs));
    shard->set_trace_sink(sinks_.back().get());
  }
  // Aggregate-serve events carry negative source keys, so parking them
  // in shard 0's sink keeps the merged trace layout-invariant.
  aggregate_serve_.set_trace_sink(sinks_.front().get());
  return Status::OK();
}

void ShardedStreamEngine::DisableTracing() {
  for (auto& shard : shards_) shard->set_trace_sink(nullptr);
  aggregate_serve_.set_trace_sink(nullptr);
  sinks_.clear();
}

std::vector<TraceEvent> ShardedStreamEngine::MergedTrace() const {
  std::vector<std::vector<TraceEvent>> per_shard;
  per_shard.reserve(sinks_.size());
  for (const auto& sink : sinks_) per_shard.push_back(sink->Events());
  return MergeTraces(per_shard);
}

MetricsRegistry ShardedStreamEngine::MetricsSnapshot() const {
  MetricsRegistry registry;
  for (const auto& sink : sinks_) sink->SnapshotInto(&registry);
  // Re-derive the ratio gauges over the *merged* counters (each fold's
  // own derivation only saw a prefix of the shards).
  DeriveRates(&registry);
  // Per-source uplink accounting, keyed by source id — shard-invariant
  // because the per-source channel counters are (per-source RNG) and
  // the governor's EWMA state is layout-free.
  if (!sinks_.empty()) {
    for (const auto& [source_id, shard_index] : registered_) {
      const StreamShard& shard = *shards_[static_cast<size_t>(shard_index)];
      const ChannelStats& uplink = shard.source_uplink(source_id);
      registry.SetGauge(StrFormat("uplink.bytes.%d", source_id),
                        static_cast<double>(uplink.bytes));
      const NoiseAdapter* adapter = shard.source_noise_adapter(source_id);
      if (adapter != nullptr && adapter->enabled()) {
        registry.SetGauge(StrFormat("adapt.r_scale.%d", source_id),
                          adapter->r_scale());
        registry.SetGauge(StrFormat("adapt.q_scale.%d", source_id),
                          adapter->q_scale());
      }
    }
    if (governor_ != nullptr) {
      for (const auto& [source_id, state] : governor_->states()) {
        registry.SetGauge(
            StrFormat("uplink.updates_rate_ewma.%d", source_id),
            state.ewma_updates);
      }
    }
  }
  return registry;
}

Result<int64_t> ShardedStreamEngine::updates_sent(int source_id) const {
  if (!HasSource(source_id)) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return OwningShard(source_id).updates_sent(source_id);
}

}  // namespace dkf
