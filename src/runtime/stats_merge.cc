#include "runtime/stats_merge.h"

namespace dkf {

ChannelStats MergeChannelStats(
    const std::vector<const ChannelStats*>& stats) {
  ChannelStats merged;
  for (const ChannelStats* shard_stats : stats) {
    merged.messages += shard_stats->messages;
    merged.bytes += shard_stats->bytes;
    merged.dropped += shard_stats->dropped;
    merged.corrupted += shard_stats->corrupted;
    merged.delayed += shard_stats->delayed;
    merged.ack_lost += shard_stats->ack_lost;
    merged.outage_dropped += shard_stats->outage_dropped;
  }
  return merged;
}

}  // namespace dkf
