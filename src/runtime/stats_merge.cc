#include "runtime/stats_merge.h"

namespace dkf {

ChannelStats MergeChannelStats(
    const std::vector<const ChannelStats*>& stats) {
  ChannelStats merged;
  for (const ChannelStats* shard_stats : stats) {
    merged.messages += shard_stats->messages;
    merged.bytes += shard_stats->bytes;
    merged.dropped += shard_stats->dropped;
  }
  return merged;
}

}  // namespace dkf
