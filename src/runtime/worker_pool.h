#ifndef DKF_RUNTIME_WORKER_POOL_H_
#define DKF_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dkf {

/// A persistent fork-join pool for the sharded runtime's tick loop.
///
/// The pool keeps `num_threads` workers parked between batches (no
/// per-tick thread spawns). RunAll publishes a task vector, and the
/// *calling thread participates* in draining it alongside the workers —
/// so a pool constructed with 0 threads degenerates to running every
/// task inline, and a ShardedStreamEngine with N shards only needs
/// N - 1 background threads.
///
/// Tasks within one batch must be independent (they are claimed from a
/// shared index, any thread may run any task). RunAll returns after
/// every task has finished; the join gives the caller a happens-before
/// edge on all task side effects, which is what lets the engine read
/// per-shard state without further locking.
class WorkerPool {
 public:
  using Task = std::function<Status()>;

  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs every task to completion (no early abort on error: a shard
  /// that fails must not leave its siblings mid-tick). Returns the
  /// first non-OK status in task order, or OK.
  Status RunAll(const std::vector<Task>& tasks);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();
  /// Claims and runs tasks from the current batch until it is drained.
  void DrainBatch(const std::vector<Task>& tasks);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  /// Bumped (under the mutex) once per RunAll to wake the workers.
  uint64_t generation_ = 0;
  bool stopping_ = false;
  const std::vector<Task>* batch_ = nullptr;
  /// Next unclaimed task index in `batch_`.
  std::atomic<size_t> next_task_{0};
  /// Tasks finished so far in `batch_` (guarded by mutex_ for the
  /// batch_done_ wait).
  size_t completed_ = 0;
  /// Workers currently inside DrainBatch; RunAll must not return (and
  /// let the caller destroy the task vector) while any remain.
  size_t draining_ = 0;
  std::vector<Status> statuses_;

  std::vector<std::thread> threads_;
};

}  // namespace dkf

#endif  // DKF_RUNTIME_WORKER_POOL_H_
