#ifndef DKF_RUNTIME_SHARDED_ENGINE_H_
#define DKF_RUNTIME_SHARDED_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "dsms/server_node.h"
#include "governor/delta_governor.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace_merge.h"
#include "obs/trace_sink.h"
#include "query/aggregate.h"
#include "query/query.h"
#include "query/registry.h"
#include "runtime/shard.h"
#include "runtime/stats_merge.h"
#include "runtime/worker_pool.h"

namespace dkf {

class CheckpointAccess;  // src/checkpoint/: snapshot save/restore plumbing

/// Configuration of the sharded runtime.
struct ShardedStreamEngineOptions {
  /// Worker shards the fleet is partitioned across (clamped to >= 1).
  /// The engine keeps num_shards - 1 background threads; the driver
  /// thread works one shard itself during each tick.
  int num_shards = 4;
  EnergyModelOptions energy;
  /// Per-shard uplink configuration. per_source_rng is forced on so a
  /// source's drop sequence is independent of the shard layout (the
  /// determinism contract — see docs/runtime.md).
  ChannelOptions channel;
  /// Delta a source runs at before any query binds to it.
  double default_delta = 1e6;
  /// Hardened-protocol knobs shared by every shard's server and sources.
  ProtocolOptions protocol;
  /// Serving front-end knobs. The backpressure bound applies per shard
  /// (each shard buffers its own subscriptions' notifications).
  ServeOptions serve;
  /// Run every shard on the batched fleet engine (src/fleet/,
  /// docs/fleet.md): steady-state sources are packed into
  /// structure-of-arrays lanes and ticked by flat kernels, bit-identical
  /// to the per-source path at any shard count.
  bool batched_fleet = false;
  /// Fleet-wide delta governor (src/governor/, docs/governor.md). When
  /// governor.enabled, the engine runs one allocation epoch every
  /// governor.epoch_ticks ticks on the driver thread, re-installing
  /// per-source deltas so total uplink spend tracks the configured
  /// bytes/tick budget.
  GovernorOptions governor;
};

/// The sharded, multi-threaded counterpart of StreamManager for large
/// fleets: sources are partitioned across N share-nothing shards (each
/// owning its sources' mirrors, server predictors, and uplink channel),
/// ticks run in parallel on a persistent worker pool, and this
/// coordinator merges per-shard stats and answers while preserving the
/// StreamManager API surface.
///
/// Aggregate (SUM) queries spanning shards use the same per-source
/// delta split as StreamManager and are answered by combining per-shard
/// partial sums, so the precision guarantee
/// |answer - true sum| <= precision is unchanged by sharding. (The
/// floating-point summation *order* does follow the shard layout; see
/// docs/runtime.md.)
///
/// Thread contract: like StreamManager, the engine is driven from one
/// thread; all parallelism is internal to ProcessTick, which returns
/// only after every worker has finished its shard (so reads between
/// ticks need no locks).
class ShardedStreamEngine {
 public:
  explicit ShardedStreamEngine(const ShardedStreamEngineOptions& options);

  ShardedStreamEngine(ShardedStreamEngine&&) = delete;
  ShardedStreamEngine& operator=(ShardedStreamEngine&&) = delete;

  /// Installs a source and its dual filters on the shard that owns it.
  Status RegisterSource(int source_id, const StateModel& model);

  /// Registers a continuous query and reconfigures its source's shard.
  Status SubmitQuery(const ContinuousQuery& query);

  /// Removes a query and relaxes its source's configuration.
  Status RemoveQuery(int query_id);

  /// Registers a continuous SUM query over scalar sources; the
  /// precision budget is split per source exactly as StreamManager
  /// splits it, regardless of how the members land on shards.
  Status SubmitAggregateQuery(const AggregateQuery& query,
                              const std::vector<double>& weights = {});

  /// Removes an aggregate query and its synthetic per-source queries.
  Status RemoveAggregateQuery(int aggregate_id);

  /// Registers a multi-sensor fusion group (src/fusion/, docs/fusion.md).
  /// The whole group is pinned to the shard ShardIndexFor(group_id)
  /// names — its posterior and every member mirror tick on one worker,
  /// so the intra-tick broadcast diffusion never crosses shards. Member
  /// ids share the per-source namespace and must be disjoint from every
  /// registered source and member engine-wide.
  Status RegisterFusionGroup(const FusionGroupConfig& config);

  /// Adds / removes a member of a live group between ticks. Both charge
  /// one control message on the owning shard.
  Status AddFusionMember(int group_id, int member_id);
  Status RemoveFusionMember(int group_id, int member_id);

  /// Registers a continuous query against a group's fused posterior and
  /// tightens the group's event trigger to the tightest active fused
  /// precision (one control message per member when it changed).
  Status SubmitFusedQuery(const FusedQuery& query);

  /// Removes a fused query; the group's trigger relaxes to the remaining
  /// queries' minimum (or back to its registration delta).
  Status RemoveFusedQuery(int query_id);

  /// The fused answer for a group, read from its owning shard.
  Result<Vector> AnswerFused(int group_id) const;

  /// Fused answer plus projected covariance, inflated while degraded.
  Result<FusionEngine::ConfidentAnswer> AnswerFusedWithConfidence(
      int group_id) const;

  /// Whether a group's fused answers are currently served degraded.
  Result<bool> fused_degraded(int group_id) const;

  /// Fusion-subsystem counters merged across shards.
  FusionStats fusion_stats() const;

  /// The extended mirror-consistency contract over every shard's groups.
  Status VerifyFusedConsistency() const;

  /// The shard index a fusion group is pinned to, or -1 when unknown.
  int fusion_group_shard(int group_id) const {
    auto it = fusion_groups_.find(group_id);
    return it == fusion_groups_.end() ? -1 : it->second;
  }

  size_t num_fusion_groups() const { return fusion_groups_.size(); }
  size_t num_fusion_members() const { return fusion_members_.size(); }

  /// The current aggregate answer: the sum of per-shard partial sums.
  Result<double> AnswerAggregate(int aggregate_id) const;

  /// The aggregate answer summed in the aggregate's declared member
  /// order instead of shard order — a layout-invariant float summation,
  /// bit-identical to StreamManager's answer at any shard count. This
  /// is the value the serving layer delivers (the notification stream
  /// is pinned bit-exactly across layouts; AnswerAggregate's partial
  /// sums are only equal up to reordering).
  Result<double> AnswerAggregateCanonical(int aggregate_id) const;

  /// Aggregate answer plus degradation status (count of member sources
  /// currently served degraded) — mirrors
  /// StreamManager::AnswerAggregateWithStatus.
  struct AggregateAnswer {
    double value = 0.0;
    int degraded_members = 0;
    bool degraded() const { return degraded_members > 0; }
  };
  Result<AggregateAnswer> AnswerAggregateWithStatus(int aggregate_id) const;

  /// Advances one tick across all shards in parallel. `readings` must
  /// contain exactly one entry per registered source.
  Status ProcessTick(const std::map<int, Vector>& readings);

  /// Allocation-light variant for huge fleets: one tick with readings
  /// given as parallel id/value arrays (any order, one entry per
  /// registered source). Bit-identical to the map overload.
  Status ProcessTick(const ReadingBatch& batch);

  /// The server-side answer for a source's stream.
  Result<Vector> Answer(int source_id) const;

  /// Answer plus confidence (projected state covariance).
  Result<ServerNode::ConfidentAnswer> AnswerWithConfidence(
      int source_id) const;

  /// Attaches a standing query (src/serve/). Point / band / range
  /// subscriptions are indexed on the shard owning their source and
  /// evaluated there, in parallel, at the tail of each shard tick;
  /// aggregate subscriptions span shards and are evaluated at the
  /// engine after the tick joins. Ids must be unique engine-wide.
  Status Subscribe(const Subscription& subscription);

  /// Detaches a standing query, wherever it lives.
  Status Unsubscribe(int64_t subscription_id);

  /// Per-shard batch streams plus the engine-level aggregate stream,
  /// merged into canonical (step, source_id, subscription_id) order —
  /// bit-identical to a StreamManager's drained stream for the same
  /// workload, at any shard count.
  std::vector<NotificationBatch> DrainNotifications();

  /// Serving-layer counters merged across shards.
  ServeStats serve_stats() const;

  size_t num_subscriptions() const;

  /// Verifies the mirror-consistency invariant on every shard.
  Status VerifyMirrorConsistency() const;

  /// The fault-tolerant variant: every non-pending source's mirror must
  /// be bit-identical to its server predictor.
  Status VerifyLinkConsistency() const;

  /// Whether a source's answers are currently served degraded.
  Result<bool> answer_degraded(int source_id) const;

  /// Whether a source is in the pending-resync state.
  Result<bool> resync_pending(int source_id) const;

  /// Protocol fault counters merged across shards.
  ProtocolFaultStats fault_stats() const;

  /// Uplink totals merged across shards.
  ChannelStats uplink_traffic() const;

  /// All merged engine counters in one call.
  MergedRuntimeStats stats() const;

  /// Control messages merged across shards.
  int64_t control_messages() const;

  int64_t ticks() const { return ticks_; }
  const QueryRegistry& registry() const { return registry_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Sources currently folded into batch lanes, summed across shards
  /// (always 0 unless options.batched_fleet).
  size_t fleet_resident_count() const;

  /// Per-source effective delta currently installed.
  Result<double> source_delta(int source_id) const;

  /// Installs new precision widths directly on many sources at once —
  /// one fan-out per owning shard. Validates every id before touching
  /// anything. This is the governor's installation path, but it is
  /// public API: an operator can pre-seed deltas the same way.
  Status ReconfigureSources(const std::vector<std::pair<int, double>>& deltas);

  /// The delta governor (nullptr unless options.governor.enabled).
  const DeltaGovernor* governor() const { return governor_.get(); }

  /// Lifetime batch-lane spills summed across shards (always 0 unless
  /// options.batched_fleet).
  int64_t fleet_spill_count() const;

  /// Per-source update totals.
  Result<int64_t> updates_sent(int source_id) const;

  /// The shard index a source id maps to (stable hash partition).
  int ShardIndexFor(int source_id) const;

  /// Turns on observability with one sink per shard (lock-free emission
  /// under the thread contract). Calling again replaces every sink.
  Status EnableTracing(const ObsOptions& obs = ObsOptions());

  /// Unwires and destroys every shard sink; the shards revert to the
  /// zero-cost untraced path. Safe between ticks.
  void DisableTracing();

  /// The per-shard trace streams merged into one deterministic order
  /// (see MergeTraces): with sufficient ring capacity the result is
  /// bit-identical for any shard count.
  std::vector<TraceEvent> MergedTrace() const;

  /// Event counters, gauges, and latency histograms folded across every
  /// shard sink into one registry. Counter/histogram values are sums;
  /// gauges (queue depths) add across shards too, so e.g.
  /// "channel.in_flight" is the fleet-wide depth.
  MetricsRegistry MetricsSnapshot() const;

  /// The sink attached to a shard (nullptr while tracing is off; for
  /// tests).
  const TraceSink* shard_sink(int shard) const {
    if (sinks_.empty()) return nullptr;
    return sinks_[static_cast<size_t>(shard)].get();
  }

  /// Writes a deterministic snapshot of the entire engine to `path`
  /// (docs/checkpoint.md). The snapshot is shard-layout-free: per-source
  /// state is stored by source id, in-flight messages canonically
  /// ordered. Call between ticks (ProcessTick has returned).
  /// Defined in src/checkpoint/engine_checkpoint.cc.
  Status Save(const std::string& path) const;

  /// Reconstructs an engine from a snapshot written by either
  /// ShardedStreamEngine::Save or StreamManager::Save, at any shard
  /// count: `num_shards` overrides the saved count when > 0 (elastic
  /// re-sharding). The restored engine's merged trace, answers, and
  /// fault sequence continue bit-identically to the uninterrupted run.
  /// `batched_fleet` restores onto the batched fleet engine (snapshots
  /// are engine-agnostic: sources restore spilled and re-enter their
  /// lanes at the end of the next tick).
  static Result<std::unique_ptr<ShardedStreamEngine>> Restore(
      const std::string& path, int num_shards = 0,
      bool batched_fleet = false);

 private:
  friend class CheckpointAccess;

  /// Runs one governor epoch when the tick that just finished completes
  /// an epoch window: samples every source's uplink counters, plans the
  /// allocation, installs changes shard-by-shard, and emits governor
  /// traces/gauges. Driver thread, between the tick join and ++ticks_.
  Status MaybeRunGovernor();

  StreamShard& OwningShard(int source_id) {
    return *shards_[static_cast<size_t>(ShardIndexFor(source_id))];
  }
  const StreamShard& OwningShard(int source_id) const {
    return *shards_[static_cast<size_t>(ShardIndexFor(source_id))];
  }
  bool HasSource(int source_id) const {
    return registered_.contains(source_id);
  }

  ShardedStreamEngineOptions options_;
  std::vector<std::unique_ptr<StreamShard>> shards_;
  /// Registered source ids (membership; the shard index is derived).
  std::map<int, int> registered_;  // source id -> shard index
  /// Fusion-group topology: group id -> pinned shard index, member id ->
  /// owning group id. Kept engine-wide so id-collision validation and
  /// readings-count checks never have to poll shards.
  std::map<int, int> fusion_groups_;
  std::map<int, int> fusion_members_;

  /// Aggregate id -> member sources, their synthetic queries, and the
  /// members grouped by shard (in shard order) for partial-sum answers.
  struct AggregateBinding {
    std::vector<int> source_ids;
    std::vector<int> synthetic_query_ids;
    std::vector<std::pair<int, std::vector<int>>> members_by_shard;
  };
  std::map<int, AggregateBinding> aggregates_;

  /// The model recipe each source was registered with, retained so a
  /// checkpoint can re-create the source on restore.
  std::map<int, StateModel> models_;

  QueryRegistry registry_;
  /// Engine-level slice of the serving front-end: aggregate
  /// subscriptions only (they need cross-shard sums), evaluated on the
  /// driver thread after every tick joins. Per-source subscriptions
  /// live on the owning shard's own engine.
  SubscriptionEngine aggregate_serve_;
  WorkerPool pool_;
  /// Reused every tick (one task per shard) to avoid reallocation.
  std::vector<WorkerPool::Task> tick_tasks_;
  /// Fleet-wide delta governor (null unless options.governor.enabled).
  std::unique_ptr<DeltaGovernor> governor_;
  int64_t ticks_ = 0;
  /// One observability sink per shard (empty while tracing is off).
  /// Owned here; shards hold raw pointers.
  std::vector<std::unique_ptr<TraceSink>> sinks_;
};

}  // namespace dkf

#endif  // DKF_RUNTIME_SHARDED_ENGINE_H_
