#ifndef DKF_RUNTIME_STATS_MERGE_H_
#define DKF_RUNTIME_STATS_MERGE_H_

#include <cstdint>
#include <vector>

#include "dsms/channel.h"
#include "metrics/fault_stats.h"

namespace dkf {

/// Engine-wide counters folded from the per-shard copies after the
/// shards' tick barrier (so no shard counter is ever read while a
/// worker might be writing it).
struct MergedRuntimeStats {
  ChannelStats uplink;
  int64_t control_messages = 0;
  int64_t sources = 0;
  /// Protocol fault/recovery counters merged across shards (each shard
  /// contributes its ServerNode's ingress counters plus its sources'
  /// divergence counters).
  ProtocolFaultStats faults;
};

/// Sums `stats` field-wise.
ChannelStats MergeChannelStats(const std::vector<const ChannelStats*>& stats);

}  // namespace dkf

#endif  // DKF_RUNTIME_STATS_MERGE_H_
