#include "fusion/fusion_engine.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "serve/subscription.h"

namespace dkf {

namespace {

/// Wire cost of re-locking one member's fused mirror: the resync-shaped
/// header (21 bytes + 12 for the group fields) plus the full posterior
/// dump (state, covariance, step counter), matching Message::SizeBytes
/// for a fused kResync.
size_t BroadcastBytesPerMember(size_t n) {
  return (1 + 4 + 8 + 4 + 4) + (4 + 8) + n * sizeof(double) +
         n * n * sizeof(double) + 8;
}

}  // namespace

Status FusionEngine::RegisterGroup(const FusionGroupConfig& config) {
  if (config.group_id < 0 || config.group_id > kMaxFusionGroupId) {
    return Status::InvalidArgument(
        StrFormat("group id %d outside [0, %d]", config.group_id,
                  kMaxFusionGroupId));
  }
  if (groups_.contains(config.group_id)) {
    return Status::AlreadyExists(
        StrFormat("fusion group %d already registered", config.group_id));
  }
  if (config.member_ids.empty()) {
    return Status::InvalidArgument("a fusion group needs >= 1 members");
  }
  if (config.delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  if (protocol_.resync_burst_retries < 1) {
    return Status::InvalidArgument("resync_burst_retries must be >= 1");
  }
  if (protocol_.resync_retry_backoff < 1) {
    return Status::InvalidArgument("resync_retry_backoff must be >= 1");
  }
  std::vector<int> members = config.member_ids;
  std::sort(members.begin(), members.end());
  if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
    return Status::InvalidArgument("duplicate member id in fusion group");
  }
  for (int member_id : members) {
    if (member_to_group_.contains(member_id)) {
      return Status::AlreadyExists(
          StrFormat("member %d already belongs to fusion group %d", member_id,
                    member_to_group_.at(member_id)));
    }
  }

  auto posterior_or = config.model.MakeFilter();
  if (!posterior_or.ok()) return posterior_or.status();

  FusionGroupConfig stored = config;
  stored.member_ids = members;
  auto [it, inserted] = groups_.try_emplace(
      config.group_id, std::move(stored), std::move(posterior_or).value());
  Group& group = it->second;
  group.base_delta = config.delta;
  // The staleness clock starts at registration, exactly like a plain
  // source's link (ServerNode::RegisterSource).
  group.last_valid_tick = now_;
  group.posterior.set_trace(obs_sink_, FusedSourceKey(group.config.group_id),
                            TraceActor::kServerFilter);
  for (int member_id : members) {
    // Every mirror is born a bit-exact copy of the posterior: same
    // recipe, zero operations applied to either yet.
    auto member_it =
        group.members.emplace(member_id, Member(group.posterior)).first;
    member_it->second.mirror.set_trace(obs_sink_, member_id,
                                       TraceActor::kSourceFilter);
    member_to_group_[member_id] = config.group_id;
  }
  return Status::OK();
}

Status FusionEngine::AddMember(int group_id, int member_id) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  if (member_to_group_.contains(member_id)) {
    return Status::AlreadyExists(
        StrFormat("member %d already belongs to fusion group %d", member_id,
                  member_to_group_.at(member_id)));
  }
  Group& group = it->second;
  // The newcomer's mirror is handed the group state at admission: a
  // bit-exact copy of the current posterior, already synced to the
  // current version.
  auto member_it =
      group.members.emplace(member_id, Member(group.posterior)).first;
  Member& member = member_it->second;
  member.mirror.set_trace(obs_sink_, member_id, TraceActor::kSourceFilter);
  member.mirror_version = group.version;
  member.synced_version = group.version;
  member_to_group_[member_id] = group_id;
  group.config.member_ids.insert(
      std::lower_bound(group.config.member_ids.begin(),
                       group.config.member_ids.end(), member_id),
      member_id);
  return Status::OK();
}

Status FusionEngine::RemoveMember(int group_id, int member_id) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  Group& group = it->second;
  if (!group.members.contains(member_id)) {
    return Status::NotFound(StrFormat("member %d not in fusion group %d",
                                      member_id, group_id));
  }
  if (group.members.size() == 1) {
    return Status::FailedPrecondition(
        "the last member of a fusion group cannot be removed");
  }
  group.members.erase(member_id);
  member_to_group_.erase(member_id);
  auto pos = std::lower_bound(group.config.member_ids.begin(),
                              group.config.member_ids.end(), member_id);
  group.config.member_ids.erase(pos);
  return Status::OK();
}

std::vector<int> FusionEngine::group_ids() const {
  std::vector<int> ids;
  ids.reserve(groups_.size());
  for (const auto& [id, group] : groups_) ids.push_back(id);
  return ids;
}

Result<std::vector<int>> FusionEngine::group_members(int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return it->second.config.member_ids;
}

Status FusionEngine::BeginTick(int64_t tick) {
  // Account degraded service for the tick that just completed (its final
  // message state is now known) — the same accounting point
  // ServerNode::TickAll uses.
  if (now_ >= 0 && protocol_.staleness_budget > 0) {
    for (auto& [group_id, group] : groups_) {
      if (IsDegraded(group)) {
        ++group.faults.degraded_ticks;
        DKF_TRACE(obs_sink_, now_, FusedSourceKey(group_id),
                  TraceEventKind::kDegradedTick, TraceActor::kServer,
                  static_cast<double>(OverdueTicks(group)));
      }
    }
  }
  now_ = tick;
  // Posterior and mirrors advance in lockstep: identical Predicts on
  // identical states keep a synced mirror bit-identical until the next
  // posterior correction (which a broadcast then re-locks).
  for (auto& [group_id, group] : groups_) {
    DKF_RETURN_IF_ERROR(group.posterior.Predict());
    for (auto& [member_id, member] : group.members) {
      DKF_RETURN_IF_ERROR(member.mirror.Predict());
    }
  }
  return Status::OK();
}

Status FusionEngine::ProcessReadings(int64_t tick,
                                     const std::map<int, Vector>& readings,
                                     Channel* channel) {
  if (tick != now_) {
    return Status::FailedPrecondition(
        StrFormat("ProcessReadings for tick %lld but BeginTick ran for %lld",
                  static_cast<long long>(tick),
                  static_cast<long long>(now_)));
  }
  for (auto& [group_id, group] : groups_) {
    for (auto& [member_id, member] : group.members) {
      auto reading_it = readings.find(member_id);
      if (reading_it == readings.end()) {
        return Status::InvalidArgument(
            StrFormat("no reading for fusion member %d", member_id));
      }
      DKF_RETURN_IF_ERROR(StepMember(group, member_id, member,
                                     reading_it->second, tick, channel));
    }
  }
  return Status::OK();
}

Status FusionEngine::StepMember(Group& group, int member_id, Member& member,
                                const Vector& reading, int64_t tick,
                                Channel* channel) {
  if (reading.size() != member.mirror.measurement_dim()) {
    return Status::InvalidArgument(
        StrFormat("reading width %zu, fusion model expects %zu",
                  reading.size(), member.mirror.measurement_dim()));
  }
  // Deferred ACKs from delayed deliveries are drained and discarded: a
  // fused member heals only by receiving a re-lock broadcast (the
  // posterior is authoritative; an uplink ACK alone proves nothing about
  // the mirror matching it).
  if (channel != nullptr && channel->has_deferred_acks()) {
    channel->TakeAcks(member_id);
  }

  // Pending re-lock: suppression is frozen (testing readings against a
  // mirror of unknown freshness would make the divergence permanent);
  // the member announces itself until a broadcast re-locks it.
  if (member.pending) {
    DKF_RETURN_IF_ERROR(MaybeSendResync(group, member_id, member, tick,
                                        channel));
  }

  if (!member.pending) {
    const Vector predicted = member.mirror.PredictedMeasurement();
    const double deviation =
        Deviation(predicted, reading, group.config.norm);
    const bool send = deviation > group.config.delta;
    if (send) {
      Message message;
      message.type = MessageType::kMeasurement;
      message.source_id = member_id;
      message.tick = tick;
      message.payload = reading;
      message.sequence = member.next_sequence++;
      message.group_id = group.config.group_id;
      message.group_version = member.mirror_version;
      ++group.transmissions;
      member.last_send_tick = tick;

      SendAck ack = SendAck::kAcked;
      if (channel != nullptr) {
        auto ack_or = channel->Send(message);
        if (!ack_or.ok()) return ack_or.status();
        ack = ack_or.value();
      } else {
        // No channel: local loopback. The correction (and the broadcast
        // that re-locks this very mirror) happens synchronously.
        DKF_RETURN_IF_ERROR(OnMessage(message));
      }
      switch (ack) {
        case SendAck::kAcked:
          // Delivered synchronously: OnMessage already corrected the
          // posterior and the broadcast re-locked this mirror (outages
          // permitting). Nothing else to do — the mirror must never be
          // corrected locally, the posterior is the only truth.
          break;
        case SendAck::kDropped:
          // Definitely lost: the posterior never saw it, the mirror was
          // never touched, next tick's deviation test retries.
          DKF_TRACE(obs_sink_, tick, member_id,
                    TraceEventKind::kSendDropped, TraceActor::kSource, 0.0,
                    0.0, message.sequence);
          break;
        case SendAck::kNoAck:
          // Ambiguous: the posterior may or may not absorb this reading
          // (and the re-lock broadcast may have fired without reaching
          // us). Freeze suppression until a broadcast re-locks the
          // mirror.
          ++group.faults.ambiguous_acks;
          ++group.faults.divergence_events;
          DKF_TRACE(obs_sink_, tick, member_id, TraceEventKind::kDivergence,
                    TraceActor::kSource, 0.0, 0.0, message.sequence);
          member.pending = true;
          member.pending_since = tick;
          member.resync_attempts = 0;
          DKF_RETURN_IF_ERROR(MaybeSendResync(group, member_id, member,
                                              tick, channel));
          break;
      }
    } else {
      // Suppressed: the *fused* prediction — which may already carry
      // another member's evidence from this very tick — still satisfies
      // the group's precision constraint. This is the cross-source
      // suppression the subsystem exists for.
      ++group.suppressed;
      DKF_TRACE(obs_sink_, tick, member_id, TraceEventKind::kFusedSuppress,
                TraceActor::kSource, deviation, group.config.delta);
      if (protocol_.heartbeat_interval > 0 &&
          tick - member.last_send_tick >= protocol_.heartbeat_interval) {
        Message beacon;
        beacon.type = MessageType::kHeartbeat;
        beacon.source_id = member_id;
        beacon.tick = tick;
        beacon.sequence = member.next_sequence++;
        beacon.group_id = group.config.group_id;
        beacon.group_version = member.mirror_version;
        ++group.faults.heartbeats_sent;
        member.last_send_tick = tick;
        DKF_TRACE(obs_sink_, tick, member_id,
                  TraceEventKind::kHeartbeatSent, TraceActor::kSource, 0.0,
                  0.0, beacon.sequence);
        // Heartbeats correct nothing; their ACK carries no divergence
        // risk and is ignored.
        if (channel != nullptr) {
          auto ack_or = channel->Send(beacon);
          if (!ack_or.ok()) return ack_or.status();
        } else {
          DKF_RETURN_IF_ERROR(OnMessage(beacon));
        }
      }
    }
  }

  if (member.pending) ++group.faults.ticks_diverged;
  return Status::OK();
}

Status FusionEngine::MaybeSendResync(Group& group, int member_id,
                                     Member& member, int64_t tick,
                                     Channel* channel) {
  const bool due =
      member.resync_attempts < protocol_.resync_burst_retries ||
      tick - member.last_resync_tick >= protocol_.resync_retry_backoff;
  if (!due) return Status::OK();

  // A fused "resync" is an announcement, not an import: it tells the
  // server "my mirror may be stale — re-lock me". The server never
  // imports member state (the posterior carries every member's evidence;
  // overwriting it with one member's mirror would discard the others').
  Message message;
  message.type = MessageType::kResync;
  message.source_id = member_id;
  message.tick = tick;
  message.sequence = member.next_sequence++;
  message.resync_state = member.mirror.state();
  message.resync_covariance = member.mirror.covariance();
  message.resync_step = member.mirror.step();
  message.group_id = group.config.group_id;
  message.group_version = member.mirror_version;

  ++group.faults.resyncs_sent;
  ++member.resync_attempts;
  member.last_resync_tick = tick;
  member.last_send_tick = tick;
  DKF_TRACE(obs_sink_, tick, member_id, TraceEventKind::kResyncSent,
            TraceActor::kSource, static_cast<double>(member.resync_attempts),
            0.0, message.sequence);

  if (channel == nullptr) {
    // Local loopback: the broadcast the server answers with heals the
    // member synchronously.
    return OnMessage(message);
  }
  auto ack_or = channel->Send(message);
  if (!ack_or.ok()) return ack_or.status();
  // kAcked: the server's re-lock broadcast already ran inside Send (and
  // healed us unless an outage silenced the downlink). kDropped/kNoAck:
  // stay pending, retry per policy.
  return Status::OK();
}

Status FusionEngine::OnMessage(const Message& message) {
  if (message.group_id < 0) {
    return Status::InvalidArgument(
        "plain (non-fused) message routed to the fusion engine");
  }
  auto it = groups_.find(message.group_id);
  if (it == groups_.end()) {
    // A message for an unregistered (removed) group: nowhere to account
    // it, drop silently — the same terminal fate as any stale frame.
    return Status::OK();
  }
  Group& group = it->second;
  const int64_t now = now_;

  // Ingress validation. Rejections are protocol events, not errors.
  if (message.checksum != 0 &&
      message.ComputeChecksum() != message.checksum) {
    ++group.faults.rejected_corrupt;
    DKF_TRACE(obs_sink_, now, message.source_id,
              TraceEventKind::kCorruptReject, TraceActor::kServer, 0.0, 0.0,
              message.sequence);
    return Status::OK();
  }
  auto member_it = group.members.find(message.source_id);
  if (member_it == group.members.end()) {
    // In-flight traffic from a removed member.
    ++group.faults.rejected_stale;
    DKF_TRACE(obs_sink_, now, message.source_id,
              TraceEventKind::kStaleReject, TraceActor::kServer, 0.0, 0.0,
              message.sequence);
    return Status::OK();
  }
  Member& member = member_it->second;
  const bool sequenced = message.sequence != 0;
  if (sequenced && message.sequence <= member.last_sequence) {
    ++group.faults.rejected_stale;  // duplicate or out-of-order
    DKF_TRACE(obs_sink_, now, message.source_id,
              TraceEventKind::kStaleReject, TraceActor::kServer, 0.0, 0.0,
              message.sequence);
    return Status::OK();
  }
  auto accept_sequenced = [&]() {
    if (!sequenced) return;
    group.faults.sequence_gaps +=
        static_cast<int64_t>(message.sequence) -
        static_cast<int64_t>(member.last_sequence) - 1;
    member.last_sequence = message.sequence;
    group.last_valid_tick = now;
  };

  switch (message.type) {
    case MessageType::kMeasurement: {
      // A late measurement was tested against a mirror state the
      // posterior has long left behind; applying it would inject stale
      // evidence. Same rule as the per-source link.
      if (sequenced && message.tick != now) {
        ++group.faults.rejected_stale;
        DKF_TRACE(obs_sink_, now, message.source_id,
                  TraceEventKind::kStaleReject, TraceActor::kServer, 0.0,
                  0.0, message.sequence);
        return Status::OK();
      }
      accept_sequenced();
      DKF_RETURN_IF_ERROR(group.posterior.Correct(message.payload));
      ++group.updates_applied;
      ++group.version;
      DKF_TRACE(obs_sink_, now, message.source_id,
                TraceEventKind::kFusedUpdate, TraceActor::kServer,
                static_cast<double>(group.version), 0.0, message.sequence);
      // Diffuse the new evidence: every reachable member — including
      // ones still to run this tick — now tests against the corrected
      // posterior.
      Broadcast(group);
      return Status::OK();
    }

    case MessageType::kResync: {
      if (now < message.tick) {
        return Status::Internal(
            StrFormat("resync from future tick %lld at server tick %lld",
                      static_cast<long long>(message.tick),
                      static_cast<long long>(now)));
      }
      // The member's shipped mirror state is deliberately ignored (see
      // MaybeSendResync); the server answers with a re-lock broadcast,
      // which is what heals the requester.
      accept_sequenced();
      ++group.faults.resyncs_applied;
      DKF_TRACE(obs_sink_, now, message.source_id,
                TraceEventKind::kResyncApplied, TraceActor::kServer,
                static_cast<double>(now - message.tick), 0.0,
                message.sequence);
      Broadcast(group);
      return Status::OK();
    }

    case MessageType::kHeartbeat:
      // A delayed heartbeat proves nothing about the present.
      if (sequenced && message.tick != now) {
        ++group.faults.rejected_stale;
        DKF_TRACE(obs_sink_, now, message.source_id,
                  TraceEventKind::kStaleReject, TraceActor::kServer, 0.0,
                  0.0, message.sequence);
        return Status::OK();
      }
      accept_sequenced();
      ++group.faults.heartbeats_received;
      DKF_TRACE(obs_sink_, now, message.source_id,
                TraceEventKind::kHeartbeatReceived, TraceActor::kServer, 0.0,
                0.0, message.sequence);
      return Status::OK();

    case MessageType::kModelSwitch:
      return Status::Unimplemented(
          "fusion groups do not carry a model bank");
  }
  return Status::Internal("unknown message type");
}

void FusionEngine::Broadcast(Group& group) {
  // The attempt and its bytes are charged unconditionally (the bits went
  // on air); delivery is gated by scheduled outage windows — a radio
  // blackout silences the downlink too, and the members it strands coast
  // on their stale mirrors until the next broadcast reaches them.
  ++group.broadcasts;
  group.broadcast_bytes += static_cast<int64_t>(
      BroadcastBytesPerMember(group.posterior.state_dim()) *
      group.members.size());
  const bool blacked_out = fault_.ActiveAt(now_) && fault_.InOutage(now_);
  int64_t delivered = 0;
  if (!blacked_out) {
    const KalmanFilter::FullState posterior_state =
        group.posterior.ExportFullState();
    for (auto& [member_id, member] : group.members) {
      // Dimensions agree by construction (same model recipe), so the
      // import cannot fail; a failure here would be memory corruption.
      Status status = member.mirror.ImportFullState(posterior_state);
      (void)status;
      member.mirror_version = group.version;
      member.synced_version = group.version;
      if (member.pending) Heal(group, member_id, member, now_);
      ++delivered;
    }
  }
  DKF_TRACE(obs_sink_, now_, FusedSourceKey(group.config.group_id),
            TraceEventKind::kFusedBroadcast, TraceActor::kServer,
            static_cast<double>(group.version),
            static_cast<double>(delivered));
}

void FusionEngine::Heal(Group& group, int member_id, Member& member,
                        int64_t tick) {
  group.faults.max_recovery_ticks =
      std::max(group.faults.max_recovery_ticks, tick - member.pending_since);
  DKF_TRACE(obs_sink_, tick, member_id, TraceEventKind::kHeal,
            TraceActor::kSource,
            static_cast<double>(tick - member.pending_since));
  member.pending = false;
  member.resync_attempts = 0;
}

bool FusionEngine::IsDegraded(const Group& group) const {
  // Group degradation is staleness-only: there is no single resync-tick
  // coast (a fused answer after a re-lock broadcast is the posterior
  // itself, not an imported guess).
  if (now_ < 0) return false;
  return protocol_.staleness_budget > 0 &&
         now_ - group.last_valid_tick >= protocol_.staleness_budget;
}

int64_t FusionEngine::OverdueTicks(const Group& group) const {
  if (now_ < 0 || protocol_.staleness_budget <= 0) return 0;
  return std::max<int64_t>(
      now_ - group.last_valid_tick - protocol_.staleness_budget + 1, 0);
}

Result<Vector> FusionEngine::Answer(int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return it->second.posterior.PredictedMeasurement();
}

Result<FusionEngine::ConfidentAnswer> FusionEngine::AnswerWithConfidence(
    int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  const Group& group = it->second;
  ConfidentAnswer answer;
  answer.value = group.posterior.PredictedMeasurement();
  // H P H^T computed as S - R, the same projection KalmanPredictor
  // serves for per-source confidence answers.
  answer.covariance = group.posterior.InnovationCovariance();
  answer.covariance -= group.posterior.measurement_noise();
  answer.covariance.Symmetrize();
  if (IsDegraded(group)) {
    answer.degraded = true;
    const double scale = 1.0 + protocol_.degraded_inflation *
                                   static_cast<double>(OverdueTicks(group));
    for (size_t r = 0; r < answer.covariance.rows(); ++r) {
      for (size_t c = 0; c < answer.covariance.cols(); ++c) {
        answer.covariance(r, c) *= scale;
      }
    }
  }
  return answer;
}

Result<bool> FusionEngine::answer_degraded(int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return IsDegraded(it->second);
}

Result<InformationState> FusionEngine::PosteriorInformation(
    int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return ToInformation(it->second.posterior.state(),
                       it->second.posterior.covariance());
}

Result<bool> FusionEngine::set_group_delta(int group_id, double delta) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  if (delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  const bool changed = it->second.config.delta != delta;
  it->second.config.delta = delta;
  return changed;
}

Result<double> FusionEngine::group_delta(int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return it->second.config.delta;
}

Result<double> FusionEngine::group_base_delta(int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return it->second.base_delta;
}

Result<bool> FusionEngine::member_pending(int member_id) const {
  auto group_it = member_to_group_.find(member_id);
  if (group_it == member_to_group_.end()) {
    return Status::NotFound(
        StrFormat("fusion member %d not registered", member_id));
  }
  return groups_.at(group_it->second).members.at(member_id).pending;
}

Result<int64_t> FusionEngine::group_updates_applied(int group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound(
        StrFormat("fusion group %d not registered", group_id));
  }
  return it->second.updates_applied;
}

Status FusionEngine::VerifyGroupConsistency() const {
  for (const auto& [group_id, group] : groups_) {
    for (const auto& [member_id, member] : group.members) {
      if (member.pending || member.synced_version != group.version) {
        continue;  // excused: mid-heal, or the last broadcast missed it
      }
      if (!member.mirror.StateEquals(group.posterior)) {
        return Status::Internal(StrFormat(
            "fused mirror of member %d diverged from group %d's posterior "
            "at version %lld",
            member_id, group_id, static_cast<long long>(group.version)));
      }
    }
  }
  return Status::OK();
}

FusionStats FusionEngine::stats() const {
  FusionStats stats;
  stats.groups = static_cast<int64_t>(groups_.size());
  stats.members = static_cast<int64_t>(member_to_group_.size());
  for (const auto& [group_id, group] : groups_) {
    stats.updates_applied += group.updates_applied;
    stats.suppressed += group.suppressed;
    stats.transmissions += group.transmissions;
    stats.broadcasts += group.broadcasts;
    stats.broadcast_bytes += group.broadcast_bytes;
    stats.faults.MergeFrom(group.faults);
  }
  return stats;
}

void FusionEngine::set_trace_sink(TraceSink* sink) {
  obs_sink_ = sink;
  for (auto& [group_id, group] : groups_) {
    group.posterior.set_trace(sink, FusedSourceKey(group_id),
                              TraceActor::kServerFilter);
    for (auto& [member_id, member] : group.members) {
      member.mirror.set_trace(sink, member_id, TraceActor::kSourceFilter);
    }
  }
}

std::vector<FusionEngine::GroupState> FusionEngine::ExportGroups() const {
  std::vector<GroupState> out;
  out.reserve(groups_.size());
  for (const auto& [group_id, group] : groups_) {
    GroupState state;
    state.group_id = group_id;
    state.model = group.config.model;
    state.delta = group.config.delta;
    state.base_delta = group.base_delta;
    state.norm = group.config.norm;
    state.posterior = group.posterior.ExportFullState();
    state.version = group.version;
    state.last_valid_tick = group.last_valid_tick;
    state.faults = group.faults;
    state.updates_applied = group.updates_applied;
    state.suppressed = group.suppressed;
    state.transmissions = group.transmissions;
    state.broadcasts = group.broadcasts;
    state.broadcast_bytes = group.broadcast_bytes;
    for (const auto& [member_id, member] : group.members) {
      MemberState member_state;
      member_state.source_id = member_id;
      member_state.mirror = member.mirror.ExportFullState();
      member_state.mirror_version = member.mirror_version;
      member_state.pending = member.pending;
      member_state.pending_since = member.pending_since;
      member_state.resync_attempts = member.resync_attempts;
      member_state.last_resync_tick = member.last_resync_tick;
      member_state.last_send_tick = member.last_send_tick;
      member_state.next_sequence = member.next_sequence;
      member_state.last_sequence = member.last_sequence;
      member_state.synced_version = member.synced_version;
      state.members.push_back(std::move(member_state));
    }
    out.push_back(std::move(state));
  }
  return out;
}

Status FusionEngine::ImportGroup(const GroupState& state) {
  FusionGroupConfig config;
  config.group_id = state.group_id;
  config.model = state.model;
  config.delta = state.delta;
  config.norm = state.norm;
  for (const MemberState& member_state : state.members) {
    config.member_ids.push_back(member_state.source_id);
  }
  DKF_RETURN_IF_ERROR(RegisterGroup(config));
  Group& group = groups_.at(state.group_id);
  group.base_delta = state.base_delta;
  DKF_RETURN_IF_ERROR(group.posterior.ImportFullState(state.posterior));
  group.version = state.version;
  group.last_valid_tick = state.last_valid_tick;
  group.faults = state.faults;
  group.updates_applied = state.updates_applied;
  group.suppressed = state.suppressed;
  group.transmissions = state.transmissions;
  group.broadcasts = state.broadcasts;
  group.broadcast_bytes = state.broadcast_bytes;
  for (const MemberState& member_state : state.members) {
    Member& member = group.members.at(member_state.source_id);
    DKF_RETURN_IF_ERROR(member.mirror.ImportFullState(member_state.mirror));
    member.mirror_version = member_state.mirror_version;
    member.pending = member_state.pending;
    member.pending_since = member_state.pending_since;
    member.resync_attempts = member_state.resync_attempts;
    member.last_resync_tick = member_state.last_resync_tick;
    member.last_send_tick = member_state.last_send_tick;
    member.next_sequence = member_state.next_sequence;
    member.last_sequence = member_state.last_sequence;
    member.synced_version = member_state.synced_version;
  }
  return Status::OK();
}

}  // namespace dkf
