#ifndef DKF_FUSION_FUSION_ENGINE_H_
#define DKF_FUSION_FUSION_ENGINE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/suppression.h"
#include "dsms/channel.h"
#include "dsms/protocol.h"
#include "filter/fusion_kernels.h"
#include "filter/kalman_filter.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace_sink.h"

namespace dkf {

/// Largest group id RegisterGroup accepts, chosen so the fused serve keys
/// (FusedSourceKey, serve/subscription.h) can never collide with the
/// aggregate key range.
inline constexpr int kMaxFusionGroupId = 1 << 28;

/// Registration recipe for one fusion group: N member sensors observing
/// one shared physical state through the same measurement model.
struct FusionGroupConfig {
  int group_id = 0;
  /// The shared state recipe. One fused posterior is built from it on the
  /// server; every member's fused mirror is a bit-exact copy.
  StateModel model;
  /// Member ids. They share the channel's per-source fault-stream
  /// namespace with plain sources, so they must be disjoint from every
  /// registered source id (hosts validate this).
  std::vector<int> member_ids;
  /// The group's event-trigger threshold delta (docs/fusion.md §2): a
  /// member transmits only when its reading deviates from the *fused*
  /// prediction by more than this.
  double delta = 1.0;
  DeviationNorm norm = DeviationNorm::kMaxAbs;
};

/// Lifetime counters for the fusion subsystem, on top of the shared
/// protocol fault taxonomy.
struct FusionStats {
  int64_t groups = 0;
  int64_t members = 0;
  /// Member corrections applied to a fused posterior.
  int64_t updates_applied = 0;
  /// Member readings suppressed against the fused mirror.
  int64_t suppressed = 0;
  /// Member measurement transmissions attempted.
  int64_t transmissions = 0;
  /// Posterior re-lock broadcasts attempted (each fans out to the whole
  /// group over the out-of-band downlink).
  int64_t broadcasts = 0;
  /// Downlink bytes those broadcasts cost — reported so the uplink
  /// savings the fused trigger buys are never quoted without the
  /// downlink price (docs/fusion.md §4).
  int64_t broadcast_bytes = 0;
  ProtocolFaultStats faults;

  /// Folds another engine's counters in (the sharded runtime merges one
  /// FusionEngine per shard).
  void MergeFrom(const FusionStats& other) {
    groups += other.groups;
    members += other.members;
    updates_applied += other.updates_applied;
    suppressed += other.suppressed;
    transmissions += other.transmissions;
    broadcasts += other.broadcasts;
    broadcast_bytes += other.broadcast_bytes;
    faults.MergeFrom(other.faults);
  }
};

/// The multi-sensor fusion subsystem (docs/fusion.md): event-triggered
/// diffusion of N correlated sensors into one fused posterior.
///
/// Server side, per group: one KalmanFilter posterior built from the
/// group's shared StateModel, corrected by whichever member's reading
/// breaks the event trigger, in arrival order — the sequential
/// covariance-form execution of the additive information-form fusion
/// (filter/fusion_kernels.h). Source side, per member: a fused mirror
/// that tracks the posterior bit-exactly. After every applied correction
/// the server re-locks all reachable members' mirrors over the instant
/// out-of-band downlink (the same control path reconfiguration uses), so
/// members later in the tick test their readings against a posterior
/// that already absorbed the first mover's evidence — that intra-tick
/// diffusion is where the cross-source suppression win comes from.
///
/// Uplink traffic (measurements, resyncs, heartbeats) flows through the
/// host's chaotic Channel under the member's own per-source fault
/// stream; scheduled outage windows silence the downlink too, so a
/// member can miss re-lock broadcasts and coast on a stale mirror until
/// the next broadcast reaches it. Mirror consistency is therefore
/// guaranteed for members that are not pending resync AND saw the latest
/// broadcast (VerifyGroupConsistency checks exactly that set).
///
/// Thread contract: same as the owning shard — BeginTick/ProcessReadings
/// from the shard's worker inside ProcessTick, everything else from the
/// driver thread between ticks.
class FusionEngine {
 public:
  FusionEngine(const ProtocolOptions& protocol, const FaultModel& fault)
      : protocol_(protocol), fault_(fault) {}

  /// Registers a group with >= 1 members and builds the posterior and
  /// every member mirror from the shared model. Member ids must be
  /// unique within the group; hosts additionally guarantee they are
  /// disjoint from plain source ids engine-wide.
  Status RegisterGroup(const FusionGroupConfig& config);

  /// Adds a member to a live group between ticks. Its fused mirror is
  /// born as a bit-exact copy of the current posterior (the server hands
  /// the newcomer the group state at admission).
  Status AddMember(int group_id, int member_id);

  /// Removes a member between ticks. Messages it still has in flight are
  /// stale-rejected on arrival. The last member cannot be removed — a
  /// group always has an observer.
  Status RemoveMember(int group_id, int member_id);

  bool has_group(int group_id) const { return groups_.contains(group_id); }
  bool owns_member(int member_id) const {
    return member_to_group_.contains(member_id);
  }
  /// The owning group of a member id, or -1.
  int member_group(int member_id) const {
    auto it = member_to_group_.find(member_id);
    return it == member_to_group_.end() ? -1 : it->second;
  }
  bool active() const { return !groups_.empty(); }
  size_t num_groups() const { return groups_.size(); }
  size_t num_members() const { return member_to_group_.size(); }
  std::vector<int> group_ids() const;
  Result<std::vector<int>> group_members(int group_id) const;

  /// Starts tick `tick`: advances the posterior and every member mirror
  /// one Predict in lockstep. Must run before the host's
  /// Channel::BeginTick so delayed fused deliveries land on the
  /// post-predict posterior, mirroring ServerNode's TickAll ordering.
  Status BeginTick(int64_t tick);

  /// Runs every member's event-trigger protocol step for this tick, in
  /// ascending (group id, member id) order, after the host's plain
  /// sources. `readings` must contain an entry per member.
  Status ProcessReadings(int64_t tick, const std::map<int, Vector>& readings,
                         Channel* channel);

  /// Ingress for fused traffic (message.group_id >= 0) — the host's
  /// channel sink routes here instead of ServerNode::OnMessage.
  Status OnMessage(const Message& message);

  /// The fused answer: the posterior's predicted measurement H x.
  Result<Vector> Answer(int group_id) const;

  /// The fused answer with its projected covariance H P H^T, inflated by
  /// (1 + degraded_inflation * overdue) while the group is degraded.
  struct ConfidentAnswer {
    Vector value;
    Matrix covariance;
    bool degraded = false;
  };
  Result<ConfidentAnswer> AnswerWithConfidence(int group_id) const;

  /// Whether the whole group has gone silent past the staleness budget
  /// (no member correction, resync, or heartbeat validated recently).
  Result<bool> answer_degraded(int group_id) const;

  /// The posterior in information form (filter/fusion_kernels.h) — the
  /// additive fusion coordinates, for introspection and cross-checks.
  Result<InformationState> PosteriorInformation(int group_id) const;

  /// Installs a new event-trigger threshold. Returns whether it changed
  /// (the host charges one control message per member on change — every
  /// member must learn the new trigger).
  Result<bool> set_group_delta(int group_id, double delta);
  Result<double> group_delta(int group_id) const;

  /// The delta the group was registered with — what a host reverts to
  /// when the last fused query over the group is removed.
  Result<double> group_base_delta(int group_id) const;

  /// Whether a member is in the pending-resync state.
  Result<bool> member_pending(int member_id) const;

  /// Lifetime count of corrections one group applied.
  Result<int64_t> group_updates_applied(int group_id) const;

  /// The extended mirror-consistency contract (docs/fusion.md §3): every
  /// member that is not pending resync and saw the latest re-lock
  /// broadcast must hold a mirror bit-identical to the fused posterior.
  Status VerifyGroupConsistency() const;

  /// Merged lifetime counters over every group.
  FusionStats stats() const;

  void set_trace_sink(TraceSink* sink);

  // ---- checkpoint hooks (src/checkpoint/engine_checkpoint.cc) -------

  /// Everything one member carries across a snapshot. The member's
  /// channel lane travels separately (the host owns the channel).
  struct MemberState {
    int source_id = 0;
    KalmanFilter::FullState mirror;
    int64_t mirror_version = 0;
    bool pending = false;
    int64_t pending_since = 0;
    int32_t resync_attempts = 0;
    int64_t last_resync_tick = 0;
    /// -1 = never sent, matching SourceNode's clock so a single-member
    /// group heartbeats on the exact schedule a plain source would.
    int64_t last_send_tick = -1;
    uint32_t next_sequence = 1;
    uint32_t last_sequence = 0;  // server-side duplicate/stale cursor
    int64_t synced_version = 0;  // server-side broadcast reach cursor
  };

  /// Everything one group carries across a snapshot.
  struct GroupState {
    int group_id = 0;
    StateModel model;
    double delta = 1.0;       // current effective event trigger
    double base_delta = 1.0;  // registration-time trigger (revert target)
    DeviationNorm norm = DeviationNorm::kMaxAbs;
    KalmanFilter::FullState posterior;
    int64_t version = 0;
    int64_t last_valid_tick = -1;
    ProtocolFaultStats faults;
    int64_t updates_applied = 0;
    int64_t suppressed = 0;
    int64_t transmissions = 0;
    int64_t broadcasts = 0;
    int64_t broadcast_bytes = 0;
    std::vector<MemberState> members;  // ascending member id
  };

  std::vector<GroupState> ExportGroups() const;

  /// Registers a group from a snapshot with its full running state.
  Status ImportGroup(const GroupState& state);

  /// Restores the tick clock after imports: the last completed tick
  /// (the host's tick count minus one; -1 when no tick has run).
  void RestoreClock(int64_t now) { now_ = now; }

 private:
  struct Member {
    explicit Member(KalmanFilter mirror_filter)
        : mirror(std::move(mirror_filter)) {}

    KalmanFilter mirror;
    int64_t mirror_version = 0;
    bool pending = false;
    int64_t pending_since = 0;
    int32_t resync_attempts = 0;
    int64_t last_resync_tick = 0;
    int64_t last_send_tick = -1;  // -1 = never sent (SourceNode's clock)
    uint32_t next_sequence = 1;
    uint32_t last_sequence = 0;
    int64_t synced_version = 0;
  };

  struct Group {
    Group(FusionGroupConfig group_config, KalmanFilter posterior_filter)
        : config(std::move(group_config)),
          posterior(std::move(posterior_filter)) {}

    FusionGroupConfig config;  // member_ids kept ascending; delta = effective
    double base_delta = 1.0;   // registration-time delta
    KalmanFilter posterior;
    int64_t version = 0;
    int64_t last_valid_tick = -1;
    ProtocolFaultStats faults;
    int64_t updates_applied = 0;
    int64_t suppressed = 0;
    int64_t transmissions = 0;
    int64_t broadcasts = 0;
    int64_t broadcast_bytes = 0;
    std::map<int, Member> members;
  };

  /// Re-locks every reachable member's mirror to the posterior after a
  /// version bump. Gated as a whole by scheduled outage windows (radio
  /// blackout silences the downlink too); the attempt and its bytes are
  /// charged either way — the bits went on air.
  void Broadcast(Group& group);

  Status StepMember(Group& group, int member_id, Member& member,
                    const Vector& reading, int64_t tick, Channel* channel);
  Status MaybeSendResync(Group& group, int member_id, Member& member,
                         int64_t tick, Channel* channel);
  void Heal(Group& group, int member_id, Member& member, int64_t tick);
  bool IsDegraded(const Group& group) const;
  int64_t OverdueTicks(const Group& group) const;

  ProtocolOptions protocol_;
  FaultModel fault_;
  std::map<int, Group> groups_;
  std::map<int, int> member_to_group_;
  /// The last begun tick; -1 before the first BeginTick, so a group
  /// registered before the run starts gets the same staleness-clock
  /// origin ServerNode gives a source registered at construction.
  int64_t now_ = -1;
  TraceSink* obs_sink_ = nullptr;
};

}  // namespace dkf

#endif  // DKF_FUSION_FUSION_ENGINE_H_
