#include "filter/rts_smoother.h"

#include "linalg/decompose.h"

namespace dkf {

Result<RtsResult> RtsSmooth(
    const KalmanFilterOptions& options,
    const std::vector<std::optional<Vector>>& measurements) {
  if (measurements.empty()) {
    return Status::InvalidArgument("no measurements to smooth");
  }
  auto filter_or = KalmanFilter::Create(options);
  if (!filter_or.ok()) return filter_or.status();
  KalmanFilter filter = std::move(filter_or).value();

  const size_t n = measurements.size();
  // Forward pass, recording priors and posteriors.
  std::vector<Vector> prior_states(n);
  std::vector<Matrix> prior_covs(n);
  std::vector<Vector> post_states(n);
  std::vector<Matrix> post_covs(n);
  std::vector<Matrix> transitions(n);

  for (size_t k = 0; k < n; ++k) {
    // The transition that maps step k-1 to k is TransitionAt(k-1); record
    // the one mapping k to k+1 for the backward recursion.
    transitions[k] = options.transition_fn
                         ? options.transition_fn(static_cast<int64_t>(k) + 1)
                         : options.transition;
    DKF_RETURN_IF_ERROR(filter.Predict());
    prior_states[k] = filter.state();
    prior_covs[k] = filter.covariance();
    if (measurements[k].has_value()) {
      DKF_RETURN_IF_ERROR(filter.Correct(*measurements[k]));
    }
    post_states[k] = filter.state();
    post_covs[k] = filter.covariance();
  }

  // Backward pass.
  RtsResult result;
  result.states.resize(n);
  result.covariances.resize(n);
  result.states[n - 1] = post_states[n - 1];
  result.covariances[n - 1] = post_covs[n - 1];
  for (size_t kk = n - 1; kk > 0; --kk) {
    const size_t k = kk - 1;
    // Gain C_k = P_k phi_k^T (P^-_{k+1})^{-1}, with phi_k relating step k
    // to step k+1.
    auto prior_inv_or = Inverse(prior_covs[k + 1]);
    if (!prior_inv_or.ok()) {
      return Status::FailedPrecondition(
          "prior covariance not invertible in RTS backward pass: " +
          prior_inv_or.status().message());
    }
    const Matrix gain =
        post_covs[k] * transitions[k].Transpose() * prior_inv_or.value();
    result.states[k] =
        post_states[k] + gain * (result.states[k + 1] - prior_states[k + 1]);
    Matrix cov = post_covs[k] +
                 gain * (result.covariances[k + 1] - prior_covs[k + 1]) *
                     gain.Transpose();
    cov.Symmetrize();
    result.covariances[k] = cov;
  }

  result.measurements.reserve(n);
  const Matrix& h = options.measurement;
  for (size_t k = 0; k < n; ++k) {
    result.measurements.push_back(h * result.states[k]);
  }
  return result;
}

}  // namespace dkf
