#include "filter/extended_kalman_filter.h"

#include "common/string_util.h"
#include "linalg/decompose.h"

namespace dkf {

namespace {

Status ValidateOptions(const ExtendedKalmanFilterOptions& options) {
  if (!options.transition || !options.transition_jacobian ||
      !options.measurement || !options.measurement_jacobian) {
    return Status::InvalidArgument(
        "EKF requires transition, measurement, and both Jacobians");
  }
  const size_t n = options.initial_state.size();
  if (n == 0) return Status::InvalidArgument("empty initial state");
  if (options.process_noise.rows() != n || options.process_noise.cols() != n) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  const size_t m = options.measurement_noise.rows();
  if (m == 0 || options.measurement_noise.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  if (options.initial_covariance.rows() != n ||
      options.initial_covariance.cols() != n) {
    return Status::InvalidArgument("initial covariance must be n x n");
  }
  return Status::OK();
}

}  // namespace

ExtendedKalmanFilter::ExtendedKalmanFilter(
    ExtendedKalmanFilterOptions options)
    : options_(std::move(options)),
      x_(options_.initial_state),
      p_(options_.initial_covariance) {}

Result<ExtendedKalmanFilter> ExtendedKalmanFilter::Create(
    const ExtendedKalmanFilterOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateOptions(options));
  return ExtendedKalmanFilter(options);
}

Status ExtendedKalmanFilter::Predict() {
  const Matrix jacobian = options_.transition_jacobian(x_, step_);
  if (jacobian.rows() != x_.size() || jacobian.cols() != x_.size()) {
    return Status::Internal("transition Jacobian has wrong shape");
  }
  x_ = options_.transition(x_, step_);
  if (x_.size() != jacobian.rows()) {
    return Status::Internal("transition changed the state dimension");
  }
  p_ = jacobian * p_ * jacobian.Transpose() + options_.process_noise;
  p_.Symmetrize();
  ++step_;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("EKF state diverged to non-finite values");
  }
  return Status::OK();
}

Vector ExtendedKalmanFilter::PredictedMeasurement() const {
  return options_.measurement(x_);
}

Status ExtendedKalmanFilter::Correct(const Vector& z) {
  const Matrix h = options_.measurement_jacobian(x_);
  if (h.cols() != x_.size()) {
    return Status::Internal("measurement Jacobian has wrong shape");
  }
  if (z.size() != h.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), h.rows()));
  }
  const Matrix s = h * p_ * h.Transpose() + options_.measurement_noise;
  auto s_inv_or = Inverse(s);
  if (!s_inv_or.ok()) {
    return Status::FailedPrecondition(
        "innovation covariance not invertible: " +
        s_inv_or.status().message());
  }
  const Matrix k = p_ * h.Transpose() * s_inv_or.value();
  const Vector innovation = z - options_.measurement(x_);
  x_ += k * innovation;
  const Matrix i_kh = Matrix::Identity(x_.size()) - k * h;
  p_ = i_kh * p_ * i_kh.Transpose() +
       k * options_.measurement_noise * k.Transpose();
  p_.Symmetrize();
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("EKF state diverged to non-finite values");
  }
  return Status::OK();
}

bool ExtendedKalmanFilter::StateEquals(
    const ExtendedKalmanFilter& other) const {
  if (step_ != other.step_ || x_.size() != other.x_.size()) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != other.x_[i]) return false;
  }
  if (p_.rows() != other.p_.rows() || p_.cols() != other.p_.cols()) {
    return false;
  }
  for (size_t r = 0; r < p_.rows(); ++r) {
    for (size_t c = 0; c < p_.cols(); ++c) {
      if (p_(r, c) != other.p_(r, c)) return false;
    }
  }
  return true;
}

void ExtendedKalmanFilter::Reset() {
  x_ = options_.initial_state;
  p_ = options_.initial_covariance;
  step_ = 0;
}

}  // namespace dkf
