#include "filter/extended_kalman_filter.h"

#include "common/string_util.h"
#include "linalg/decompose.h"
#include "linalg/kernels.h"

namespace dkf {

namespace {

Status ValidateOptions(const ExtendedKalmanFilterOptions& options) {
  if (!options.transition || !options.transition_jacobian ||
      !options.measurement || !options.measurement_jacobian) {
    return Status::InvalidArgument(
        "EKF requires transition, measurement, and both Jacobians");
  }
  const size_t n = options.initial_state.size();
  if (n == 0) return Status::InvalidArgument("empty initial state");
  if (options.process_noise.rows() != n || options.process_noise.cols() != n) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  const size_t m = options.measurement_noise.rows();
  if (m == 0 || options.measurement_noise.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  if (options.initial_covariance.rows() != n ||
      options.initial_covariance.cols() != n) {
    return Status::InvalidArgument("initial covariance must be n x n");
  }
  return Status::OK();
}

}  // namespace

ExtendedKalmanFilter::ExtendedKalmanFilter(
    ExtendedKalmanFilterOptions options)
    : options_(std::move(options)),
      x_(options_.initial_state),
      p_(options_.initial_covariance),
      identity_(Matrix::Identity(options_.initial_state.size())) {
  const size_t n = x_.size();
  const size_t m = options_.measurement_noise.rows();
  scratch_.nn1.AssignZero(n, n);
  scratch_.nn2.AssignZero(n, n);
  scratch_.nn3.AssignZero(n, n);
  scratch_.nm1.AssignZero(n, m);
  scratch_.nm2.AssignZero(n, m);
  scratch_.k.AssignZero(n, m);
  scratch_.mm.AssignZero(m, m);
  scratch_.mv1.AssignZero(m);
  scratch_.mv2.AssignZero(m);
  scratch_.nv1.AssignZero(n);
  scratch_.pivots.reserve(m);
}

Result<ExtendedKalmanFilter> ExtendedKalmanFilter::Create(
    const ExtendedKalmanFilterOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateOptions(options));
  return ExtendedKalmanFilter(options);
}

Status ExtendedKalmanFilter::Predict() {
  scratch_.jac = options_.transition_jacobian(x_, step_);
  const Matrix& jacobian = scratch_.jac;
  if (jacobian.rows() != x_.size() || jacobian.cols() != x_.size()) {
    return Status::Internal("transition Jacobian has wrong shape");
  }
  x_ = options_.transition(x_, step_);
  if (x_.size() != jacobian.rows()) {
    return Status::Internal("transition changed the state dimension");
  }
  // P <- F P F^T + Q, all in scratch.
  MultiplyInto(jacobian, p_, &scratch_.nn1);
  MultiplyTransposedInto(scratch_.nn1, jacobian, &scratch_.nn2);
  AddScaledInto(scratch_.nn2, options_.process_noise, 1.0, &p_);
  p_.Symmetrize();
  ++step_;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("EKF state diverged to non-finite values");
  }
  return Status::OK();
}

Vector ExtendedKalmanFilter::PredictedMeasurement() const {
  return options_.measurement(x_);
}

Status ExtendedKalmanFilter::Correct(const Vector& z) {
  scratch_.jac = options_.measurement_jacobian(x_);
  const Matrix& h = scratch_.jac;
  if (h.cols() != x_.size()) {
    return Status::Internal("measurement Jacobian has wrong shape");
  }
  if (z.size() != h.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), h.rows()));
  }
  const size_t n = x_.size();
  const size_t m = h.rows();

  // S = H (P H^T) + R in scratch (P is exactly symmetric).
  MultiplyTransposedInto(p_, h, &scratch_.nm1);
  MultiplyInto(h, scratch_.nm1, &scratch_.mm);
  AddScaledInto(scratch_.mm, options_.measurement_noise, 1.0, &scratch_.mm);

  // K = P H^T S^{-1} by factor-and-solve (S K^T = H P), as in
  // KalmanFilter::Correct.
  Status factored = LuFactorInPlace(&scratch_.mm, &scratch_.pivots);
  if (!factored.ok()) {
    return Status::FailedPrecondition(
        "innovation covariance not invertible: " + factored.message());
  }
  scratch_.k.AssignZero(n, m);
  for (size_t j = 0; j < n; ++j) {
    scratch_.mv2.AssignZero(m);
    const double* pht_row = scratch_.nm1.RowData(j);
    for (size_t i = 0; i < m; ++i) scratch_.mv2[i] = pht_row[i];
    DKF_RETURN_IF_ERROR(
        LuSolveInto(scratch_.mm, scratch_.pivots, scratch_.mv2,
                    &scratch_.mv1));
    for (size_t i = 0; i < m; ++i) scratch_.k(j, i) = scratch_.mv1[i];
  }

  // x <- x + K (z - h(x)).
  scratch_.mv1 = options_.measurement(x_);
  AddScaledInto(z, scratch_.mv1, -1.0, &scratch_.mv2);
  MultiplyInto(scratch_.k, scratch_.mv2, &scratch_.nv1);
  x_ += scratch_.nv1;

  // Joseph-form covariance update: (I-KH) P (I-KH)^T + K R K^T.
  MultiplyInto(scratch_.k, h, &scratch_.nn1);
  AddScaledInto(identity_, scratch_.nn1, -1.0, &scratch_.nn2);
  MultiplyInto(scratch_.nn2, p_, &scratch_.nn1);
  MultiplyTransposedInto(scratch_.nn1, scratch_.nn2, &scratch_.nn3);
  MultiplyInto(scratch_.k, options_.measurement_noise, &scratch_.nm2);
  MultiplyTransposedInto(scratch_.nm2, scratch_.k, &scratch_.nn1);
  AddScaledInto(scratch_.nn3, scratch_.nn1, 1.0, &p_);
  p_.Symmetrize();
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("EKF state diverged to non-finite values");
  }
  return Status::OK();
}

bool ExtendedKalmanFilter::StateEquals(
    const ExtendedKalmanFilter& other) const {
  if (step_ != other.step_ || x_.size() != other.x_.size()) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != other.x_[i]) return false;
  }
  if (p_.rows() != other.p_.rows() || p_.cols() != other.p_.cols()) {
    return false;
  }
  for (size_t r = 0; r < p_.rows(); ++r) {
    for (size_t c = 0; c < p_.cols(); ++c) {
      if (p_(r, c) != other.p_(r, c)) return false;
    }
  }
  return true;
}

void ExtendedKalmanFilter::Reset() {
  x_ = options_.initial_state;
  p_ = options_.initial_covariance;
  step_ = 0;
}

}  // namespace dkf
