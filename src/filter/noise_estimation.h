#ifndef DKF_FILTER_NOISE_ESTIMATION_H_
#define DKF_FILTER_NOISE_ESTIMATION_H_

#include <cstddef>

#include "common/result.h"
#include "common/status.h"
#include "filter/kalman_filter.h"
#include "linalg/matrix.h"

namespace dkf {

/// Innovation-based adaptive estimation of the measurement-noise
/// covariance R, addressing the paper's future-work item "robustness of
/// the KF when the statistics of the noise are not known" (§6).
///
/// DEPRECATED: this class is the original standalone sketch, kept as a
/// thin compatibility shim for existing callers (ablation bench, tests).
/// New code — and everything wired into the DKF protocol — should use
/// NoiseAdapter (filter/adaptive_noise.h), which adds ratio-gated R/Q
/// servo control, clamps, quantization floors, holdover detection, and
/// the mirror-consistent state serialization the protocol needs.
///
/// The exponentially weighted innovation statistics C ~ E[y y^T] and the
/// matching weighted mean of the projected a-priori covariances
/// H P^- H^T give
///   R_hat = C - mean(H P^- H^T)
/// (symmetrized, diagonals floored), since C approaches S = H P^- H^T + R
/// for a consistent filter. `window` sets the EWMA retention
/// (alpha = 1 - 1/window), matching the old sliding window's timescale
/// with O(1) state and zero per-Observe heap allocation.
struct AdaptiveNoiseOptions {
  size_t window = 64;        ///< EWMA timescale (old: innovations kept)
  size_t min_samples = 16;   ///< don't adapt before this many innovations
  double floor = 1e-9;       ///< lower clamp for estimated variances
};

class AdaptiveNoiseEstimator {
 public:
  static Result<AdaptiveNoiseEstimator> Create(
      const AdaptiveNoiseOptions& options);

  /// Records the innovation and a-priori projected covariance
  /// H P^- H^T from one correction step. O(m^2), allocation-free for
  /// measurement widths <= 2 (inline matrix storage).
  void Observe(const Vector& innovation, const Matrix& projected_covariance);

  /// Current estimate of R, or FailedPrecondition before min_samples
  /// innovations have been observed.
  Result<Matrix> EstimateMeasurementNoise() const;

  /// Convenience: estimate R and install it into `filter`.
  Status Apply(KalmanFilter* filter) const;

  /// Effective sample count, saturating at `window` to preserve the old
  /// sliding-window API contract.
  size_t samples() const {
    return observed_ < options_.window ? observed_ : options_.window;
  }

 private:
  explicit AdaptiveNoiseEstimator(const AdaptiveNoiseOptions& options)
      : options_(options) {}

  AdaptiveNoiseOptions options_;
  size_t observed_ = 0;
  double weight_ = 0.0;  ///< EWMA normalizer (bias correction)
  Matrix moment_;        ///< weighted E[y y^T], un-normalized
  Matrix projected_;     ///< weighted E[H P^- H^T], un-normalized
};

}  // namespace dkf

#endif  // DKF_FILTER_NOISE_ESTIMATION_H_
