#ifndef DKF_FILTER_NOISE_ESTIMATION_H_
#define DKF_FILTER_NOISE_ESTIMATION_H_

#include <deque>

#include "common/result.h"
#include "common/status.h"
#include "filter/kalman_filter.h"
#include "linalg/matrix.h"

namespace dkf {

/// Innovation-based adaptive estimation of the measurement-noise
/// covariance R, addressing the paper's future-work item "robustness of
/// the KF when the statistics of the noise are not known" (§6).
///
/// Over a sliding window of innovations y_k = z_k - H x^-_k the sample
/// covariance C approaches S = H P^- H^T + R for a consistent filter, so
///   R_hat = C - H P^- H^T
/// (projected back to positive diagonals) tracks the true R. Feeding R_hat
/// back into the filter closes the adaptation loop.
struct AdaptiveNoiseOptions {
  size_t window = 64;        ///< innovations kept for the sample covariance
  size_t min_samples = 16;   ///< don't adapt before this many innovations
  double floor = 1e-9;       ///< lower clamp for estimated variances
};

class AdaptiveNoiseEstimator {
 public:
  static Result<AdaptiveNoiseEstimator> Create(
      const AdaptiveNoiseOptions& options);

  /// Records the innovation and a-priori projected covariance
  /// H P^- H^T from one correction step.
  void Observe(const Vector& innovation, const Matrix& projected_covariance);

  /// Current estimate of R, or FailedPrecondition before min_samples
  /// innovations have been observed.
  Result<Matrix> EstimateMeasurementNoise() const;

  /// Convenience: estimate R and install it into `filter`.
  Status Apply(KalmanFilter* filter) const;

  size_t samples() const { return innovations_.size(); }

 private:
  explicit AdaptiveNoiseEstimator(const AdaptiveNoiseOptions& options)
      : options_(options) {}

  AdaptiveNoiseOptions options_;
  std::deque<Vector> innovations_;
  std::deque<Matrix> projected_;
};

}  // namespace dkf

#endif  // DKF_FILTER_NOISE_ESTIMATION_H_
