#ifndef DKF_FILTER_STEADY_STATE_H_
#define DKF_FILTER_STEADY_STATE_H_

#include "common/result.h"
#include "filter/kalman_filter.h"
#include "linalg/matrix.h"

namespace dkf {

/// Solution of the discrete algebraic Riccati equation for a
/// time-invariant system: the fixed point of the a-priori covariance
/// recursion, and the corresponding steady-state Kalman gain.
struct SteadyStateSolution {
  Matrix covariance;  ///< steady-state a-priori covariance P^-
  Matrix gain;        ///< steady-state gain K = P^- H^T (H P^- H^T + R)^{-1}
  int iterations = 0; ///< Riccati iterations until convergence
};

/// Iterates the Riccati recursion
///   P <- phi (P - P H^T (H P H^T + R)^{-1} H P) phi^T + Q
/// to a fixed point. When the noise processes are stationary (§3.2 case 5)
/// this can be computed offline and the per-tick covariance update skipped
/// entirely. Requires a constant transition matrix.
Result<SteadyStateSolution> SolveRiccati(const Matrix& transition,
                                         const Matrix& measurement,
                                         const Matrix& process_noise,
                                         const Matrix& measurement_noise,
                                         double tolerance = 1e-12,
                                         int max_iterations = 100000);

/// A Kalman filter that uses a precomputed constant gain: the state update
/// costs one matrix-vector product per tick with no covariance arithmetic.
/// This is the "offline Riccati" runtime optimization of §3.2.
class SteadyStateKalmanFilter {
 public:
  /// Builds the filter by solving the Riccati equation for the options'
  /// (constant) matrices. Errors when options use a time-varying
  /// transition.
  static Result<SteadyStateKalmanFilter> Create(
      const KalmanFilterOptions& options);

  /// x <- phi x.
  void Predict();

  /// H x.
  Vector PredictedMeasurement() const;

  /// x <- x + K (z - H x) with the fixed steady-state gain.
  Status Correct(const Vector& z);

  const Vector& state() const { return x_; }
  const Matrix& gain() const { return gain_; }
  int64_t step() const { return step_; }

  /// Width of the measurement vector.
  size_t measurement_dim() const { return measurement_.rows(); }

  /// True when both filters share bit-identical state and step counter
  /// (the gain is constant, so state + step fully determine behaviour).
  bool StateEquals(const SteadyStateKalmanFilter& other) const;

 private:
  SteadyStateKalmanFilter(Matrix transition, Matrix measurement, Matrix gain,
                          Vector initial_state);

  Matrix transition_;
  Matrix measurement_;
  Matrix gain_;
  Vector x_;
  int64_t step_ = 0;
  // Scratch for the in-place kernels: the whole per-tick cycle is three
  // matrix-vector products against these, with zero allocations.
  Vector scratch_n_;
  Vector scratch_m_;
};

}  // namespace dkf

#endif  // DKF_FILTER_STEADY_STATE_H_
