#include "filter/recursive_least_squares.h"

#include "common/string_util.h"

namespace dkf {

RecursiveLeastSquares::RecursiveLeastSquares(
    const RecursiveLeastSquaresOptions& options)
    : options_(options),
      w_(options.dim),
      p_(Matrix::ScaledIdentity(options.dim, options.initial_gain)) {}

Result<RecursiveLeastSquares> RecursiveLeastSquares::Create(
    const RecursiveLeastSquaresOptions& options) {
  if (options.dim == 0) {
    return Status::InvalidArgument("parameter dimension must be positive");
  }
  if (options.forgetting <= 0.0 || options.forgetting > 1.0) {
    return Status::InvalidArgument("forgetting factor must be in (0, 1]");
  }
  if (options.initial_gain <= 0.0) {
    return Status::InvalidArgument("initial gain must be positive");
  }
  return RecursiveLeastSquares(options);
}

Status RecursiveLeastSquares::Update(const Vector& phi, double z) {
  if (phi.size() != options_.dim) {
    return Status::InvalidArgument(
        StrFormat("regressor size %zu, expected %zu", phi.size(),
                  options_.dim));
  }
  const double lambda = options_.forgetting;
  const Vector p_phi = p_ * phi;
  const double denom = lambda + phi.Dot(p_phi);
  if (denom <= 0.0) {
    return Status::FailedPrecondition("RLS update denominator not positive");
  }
  const Vector gain = p_phi * (1.0 / denom);
  const double error = z - phi.Dot(w_);
  w_ += gain * error;
  // P <- (P - k phi^T P) / lambda.
  p_ = (p_ - gain.Outer(p_phi)) * (1.0 / lambda);
  p_.Symmetrize();
  ++observations_;
  if (!w_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("RLS diverged to non-finite values");
  }
  return Status::OK();
}

Result<double> RecursiveLeastSquares::Predict(const Vector& phi) const {
  if (phi.size() != options_.dim) {
    return Status::InvalidArgument(
        StrFormat("regressor size %zu, expected %zu", phi.size(),
                  options_.dim));
  }
  return phi.Dot(w_);
}

}  // namespace dkf
