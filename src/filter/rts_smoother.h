#ifndef DKF_FILTER_RTS_SMOOTHER_H_
#define DKF_FILTER_RTS_SMOOTHER_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "filter/kalman_filter.h"
#include "linalg/matrix.h"

namespace dkf {

/// Output of a fixed-interval Rauch-Tung-Striebel smoothing pass.
struct RtsResult {
  /// Smoothed state estimate per tick.
  std::vector<Vector> states;
  /// Smoothed state covariance per tick.
  std::vector<Matrix> covariances;
  /// Smoothed measurement H x per tick (convenience).
  std::vector<Vector> measurements;
};

/// Fixed-interval RTS smoothing over a recorded measurement sequence.
///
/// The forward pass is a standard Kalman filter built from `options`;
/// ticks whose entry is std::nullopt are coasted (prediction only) —
/// exactly the pattern a stream-synopsis replay produces, where only the
/// exceptional readings were stored. The backward pass then propagates
/// information from later updates into the coasted gaps:
///   C_k = P_k phi_k^T (P^-_{k+1})^{-1}
///   x^s_k = x_k + C_k (x^s_{k+1} - x^-_{k+1})
///
/// This is an offline (archive-quality) refinement of the online
/// reconstruction; the paper's §6 synopsis extension benefits directly.
Result<RtsResult> RtsSmooth(
    const KalmanFilterOptions& options,
    const std::vector<std::optional<Vector>>& measurements);

}  // namespace dkf

#endif  // DKF_FILTER_RTS_SMOOTHER_H_
