#ifndef DKF_FILTER_FUSION_KERNELS_H_
#define DKF_FILTER_FUSION_KERNELS_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace dkf {

/// Fusion math for multi-sensor groups (src/fusion/, docs/fusion.md).
///
/// The information (canonical) form of a Gaussian is the natural algebra
/// for fusing independent observations of one shared state: the
/// information matrix Y = P^-1 and information vector y = P^-1 x are
/// *additive* over observations, so the fused posterior after k
/// event-triggered corrections is
///
///   Y = Y0 + sum_k H_k^T R_k^-1 H_k,   y = y0 + sum_k H_k^T R_k^-1 z_k
///
/// which is algebraically identical to applying the covariance-form
/// Kalman correction once per arriving observation. The engine's fused
/// posterior runs the covariance form (bit-compatible with the
/// per-source dual link, including its steady-state fast path); these
/// kernels are the information-form mirror of that update, used for
/// cross-checking the posterior, for introspection APIs, and by tests
/// that pin the algebraic-equivalence contract.

/// A Gaussian in information (canonical) coordinates.
struct InformationState {
  Vector info_vector;  ///< y = P^-1 x
  Matrix info_matrix;  ///< Y = P^-1
};

/// A Gaussian in moment coordinates (the filter's native form).
struct MomentState {
  Vector state;       ///< x
  Matrix covariance;  ///< P
};

/// Converts moments -> information form. Fails when the covariance is
/// not invertible (or dimensions disagree).
Result<InformationState> ToInformation(const Vector& state,
                                       const Matrix& covariance);

/// Converts information form -> moments. Fails when the information
/// matrix is singular (an improper / totally uninformative prior).
Result<MomentState> FromInformation(const InformationState& info);

/// Adds one linear observation z = H x + v, v ~ N(0, R) to an
/// information state in place: Y += H^T R^-1 H, y += H^T R^-1 z.
Status AddObservation(InformationState* info, const Matrix& measurement,
                      const Matrix& measurement_noise, const Vector& reading);

/// Covariance intersection of two consistent estimates with *unknown*
/// cross-correlation (Julier/Uhlmann): the fused information form is the
/// omega-weighted convex combination
///   Y = w A^-1 + (1-w) B^-1,  y = w A^-1 a + (1-w) B^-1 b
/// which is guaranteed consistent for any w in [0, 1]. Used when two
/// fused posteriors that may share history must be merged without
/// double-counting. `omega` must lie in (0, 1) exclusive.
Result<MomentState> CovarianceIntersect(const MomentState& a,
                                        const MomentState& b, double omega);

}  // namespace dkf

#endif  // DKF_FILTER_FUSION_KERNELS_H_
