#include "filter/fusion_kernels.h"

#include "linalg/decompose.h"

namespace dkf {

Result<InformationState> ToInformation(const Vector& state,
                                       const Matrix& covariance) {
  if (covariance.rows() != covariance.cols() ||
      covariance.rows() != state.size()) {
    return Status::InvalidArgument(
        "state and covariance dimensions disagree");
  }
  auto inverse_or = Inverse(covariance);
  if (!inverse_or.ok()) return inverse_or.status();
  InformationState info;
  info.info_matrix = inverse_or.value();
  info.info_vector = info.info_matrix * state;
  return info;
}

Result<MomentState> FromInformation(const InformationState& info) {
  if (info.info_matrix.rows() != info.info_matrix.cols() ||
      info.info_matrix.rows() != info.info_vector.size()) {
    return Status::InvalidArgument(
        "information vector and matrix dimensions disagree");
  }
  auto inverse_or = Inverse(info.info_matrix);
  if (!inverse_or.ok()) return inverse_or.status();
  MomentState moments;
  moments.covariance = inverse_or.value();
  moments.state = moments.covariance * info.info_vector;
  return moments;
}

Status AddObservation(InformationState* info, const Matrix& measurement,
                      const Matrix& measurement_noise, const Vector& reading) {
  const size_t m = measurement.rows();
  const size_t n = measurement.cols();
  if (info->info_matrix.rows() != n || info->info_vector.size() != n) {
    return Status::InvalidArgument(
        "observation dimensions disagree with the information state");
  }
  if (measurement_noise.rows() != m || measurement_noise.cols() != m ||
      reading.size() != m) {
    return Status::InvalidArgument(
        "measurement noise / reading dimensions disagree");
  }
  auto noise_inverse_or = Inverse(measurement_noise);
  if (!noise_inverse_or.ok()) return noise_inverse_or.status();
  const Matrix ht_rinv = measurement.Transpose() * noise_inverse_or.value();
  info->info_matrix = info->info_matrix + ht_rinv * measurement;
  info->info_vector = info->info_vector + ht_rinv * reading;
  return Status::OK();
}

Result<MomentState> CovarianceIntersect(const MomentState& a,
                                        const MomentState& b, double omega) {
  if (!(omega > 0.0) || !(omega < 1.0)) {
    return Status::InvalidArgument(
        "covariance intersection weight must lie in (0, 1)");
  }
  auto info_a_or = ToInformation(a.state, a.covariance);
  if (!info_a_or.ok()) return info_a_or.status();
  auto info_b_or = ToInformation(b.state, b.covariance);
  if (!info_b_or.ok()) return info_b_or.status();
  InformationState fused;
  fused.info_matrix = omega * info_a_or.value().info_matrix +
                      (1.0 - omega) * info_b_or.value().info_matrix;
  fused.info_vector = omega * info_a_or.value().info_vector +
                      (1.0 - omega) * info_b_or.value().info_vector;
  return FromInformation(fused);
}

}  // namespace dkf
