#include "filter/adaptive_noise.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "models/state_model.h"

namespace dkf {
namespace {

/// Bitwise matrix equality (row-major storage is contiguous).
bool MatrixBitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.rows() == 0 || a.cols() == 0) return true;
  return std::memcmp(a.RowData(0), b.RowData(0),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

bool DoubleBitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool VectorBitEqual(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

Result<NoiseAdapter> NoiseAdapter::Create(const AdaptiveNoiseConfig& config,
                                          const StateModel& model) {
  if (!config.enabled) return NoiseAdapter();
  if (config.ratio_alpha <= 0.0 || config.ratio_alpha >= 1.0 ||
      config.corr_alpha <= 0.0 || config.corr_alpha >= 1.0) {
    return Status::InvalidArgument("adaptive: EWMA alphas must be in (0, 1)");
  }
  if (config.warmup_corrections < 1) {
    return Status::InvalidArgument("adaptive: warmup must be >= 1");
  }
  if (!(config.shrink_threshold > 0.0) ||
      !(config.widen_threshold > config.shrink_threshold)) {
    return Status::InvalidArgument(
        "adaptive: need 0 < shrink_threshold < widen_threshold");
  }
  if (!(config.widen_rate > 0.0) || config.widen_rate >= 1.0 ||
      !(config.shrink_rate > 0.0) || config.shrink_rate >= 1.0 ||
      !(config.q_rate > 0.0) || config.q_rate >= 1.0) {
    return Status::InvalidArgument("adaptive: rates must be in (0, 1)");
  }
  if (!(config.r_scale_floor > 0.0) ||
      !(config.r_scale_ceiling > config.r_scale_floor) ||
      !(config.q_scale_floor > 0.0) ||
      !(config.q_scale_ceiling > config.q_scale_floor)) {
    return Status::InvalidArgument(
        "adaptive: need 0 < scale floor < scale ceiling");
  }
  if (!(config.variance_floor >= 0.0)) {
    return Status::InvalidArgument("adaptive: variance floor must be >= 0");
  }
  if (config.holdover_gap < 0 || config.lock_streak < 1) {
    return Status::InvalidArgument(
        "adaptive: holdover_gap >= 0 and lock_streak >= 1 required");
  }
  const size_t m = model.options.measurement_noise.rows();
  if (m == 0 || model.options.measurement_noise.cols() != m) {
    return Status::InvalidArgument("adaptive: model has no measurement noise");
  }
  NoiseAdapter adapter;
  adapter.config_ = config;
  adapter.enabled_ = true;
  adapter.measurement_dim_ = m;
  adapter.nominal_q_ = model.options.process_noise;
  adapter.nominal_r_ = model.options.measurement_noise;
  adapter.prev_z_ = Vector(m);
  adapter.qstep_est_ = Vector(m);
  return adapter;
}

Result<NoiseAdapter::Decision> NoiseAdapter::OnCorrection(
    const KalmanFilter& filter, const Vector& z, int64_t tick) {
  Decision decision;
  if (!enabled_) return decision;
  if (z.size() != measurement_dim_) {
    return Status::InvalidArgument("adaptive: measurement width mismatch");
  }

  // Quantization-step estimate: running minimum nonzero per-component
  // reading delta. Uses transmitted values only, so both mirrors agree.
  if (has_prev_z_) {
    for (size_t i = 0; i < measurement_dim_; ++i) {
      const double diff = std::fabs(z[i] - prev_z_[i]);
      if (diff > 0.0 && std::isfinite(diff)) {
        qstep_est_[i] = qstep_est_[i] == 0.0 ? diff
                                             : std::min(qstep_est_[i], diff);
      }
    }
  }
  prev_z_ = z;
  has_prev_z_ = true;

  // Holdover: after a long silent gap (outage or a settled regime's
  // suppression run) the lag-1 statistic spans the gap and the first
  // innovation reflects accumulated drift — re-seed instead of adapting.
  const bool stale_gap = config_.holdover_gap > 0 &&
                         last_correction_tick_ >= 0 &&
                         tick - last_correction_tick_ > config_.holdover_gap;
  last_correction_tick_ = tick;
  if (stale_gap) {
    has_prev_v_ = false;
    decision.frozen = true;
    return decision;
  }

  // A-priori innovation statistics under the currently installed noise.
  const Vector predicted = filter.PredictedMeasurement();
  const Matrix s = filter.InnovationCovariance();
  double u = 0.0;  // mean normalized innovation squared
  double v = 0.0;  // mean normalized innovation
  for (size_t i = 0; i < measurement_dim_; ++i) {
    const double sii = s(i, i);
    if (!(sii > 0.0) || !std::isfinite(sii)) {
      // Degenerate covariance: never adapt off garbage.
      has_prev_v_ = false;
      decision.frozen = true;
      return decision;
    }
    const double y = z[i] - predicted[i];
    u += y * y / sii;
    v += y / std::sqrt(sii);
  }
  const double inv_m = 1.0 / static_cast<double>(measurement_dim_);
  u *= inv_m;
  v *= inv_m;

  count_ += 1;
  if (count_ == 1) {
    ratio_ewma_ = u;
    corr_ewma_ = 0.0;
  } else {
    ratio_ewma_ =
        config_.ratio_alpha * ratio_ewma_ + (1.0 - config_.ratio_alpha) * u;
    if (has_prev_v_) {
      corr_ewma_ = config_.corr_alpha * corr_ewma_ +
                   (1.0 - config_.corr_alpha) * (v * prev_v_);
    }
  }
  prev_v_ = v;
  has_prev_v_ = true;

  if (count_ <= config_.warmup_corrections) return decision;

  const double old_r = r_scale_;
  const double old_q = q_scale_;
  if (ratio_ewma_ > config_.widen_threshold) {
    // Innovations larger than modelled. Colored innovations mean the
    // state model is lagging (Q too small); white ones mean R too small.
    if (corr_ewma_ > config_.corr_q_threshold) {
      q_scale_ = std::min(q_scale_ * (1.0 + config_.q_rate),
                          config_.q_scale_ceiling);
    } else {
      r_scale_ = std::min(r_scale_ * (1.0 + config_.widen_rate),
                          config_.r_scale_ceiling);
    }
    lock_count_ = 0;
  } else if (ratio_ewma_ < config_.shrink_threshold) {
    // Modelled noise oversized: tighten R, relax Q back toward nominal.
    r_scale_ = std::max(r_scale_ * (1.0 - config_.shrink_rate),
                        config_.r_scale_floor);
    if (q_scale_ > 1.0) {
      q_scale_ = std::max(q_scale_ * (1.0 - config_.q_rate), 1.0);
    }
    lock_count_ = 0;
  } else {
    lock_count_ += 1;
  }
  decision.adapted =
      !DoubleBitEqual(r_scale_, old_r) || !DoubleBitEqual(q_scale_, old_q);
  return decision;
}

Matrix NoiseAdapter::EffectiveMeasurementNoise() const {
  Matrix r = nominal_r_;
  for (size_t i = 0; i < r.rows(); ++i) {
    double* row = r.MutableRowData(i);
    for (size_t j = 0; j < r.cols(); ++j) row[j] *= r_scale_;
  }
  for (size_t i = 0; i < r.rows(); ++i) {
    double floor = config_.variance_floor;
    if (config_.quantization_floor && qstep_est_.size() == r.rows() &&
        qstep_est_[i] > 0.0) {
      // Variance of uniform quantization error over one step.
      floor = std::max(floor, qstep_est_[i] * qstep_est_[i] / 12.0);
    }
    if (r(i, i) < floor) r(i, i) = floor;
  }
  return r;
}

Matrix NoiseAdapter::EffectiveProcessNoise() const {
  Matrix q = nominal_q_;
  for (size_t i = 0; i < q.rows(); ++i) {
    double* row = q.MutableRowData(i);
    for (size_t j = 0; j < q.cols(); ++j) row[j] *= q_scale_;
  }
  return q;
}

Status NoiseAdapter::InstallInto(KalmanFilter* filter) const {
  if (!enabled_ || filter == nullptr) return Status::OK();
  const Matrix r = EffectiveMeasurementNoise();
  if (!MatrixBitEqual(r, filter->measurement_noise())) {
    DKF_RETURN_IF_ERROR(filter->set_measurement_noise(r));
  }
  const Matrix q = EffectiveProcessNoise();
  if (!MatrixBitEqual(q, filter->process_noise())) {
    DKF_RETURN_IF_ERROR(filter->set_process_noise(q));
  }
  return Status::OK();
}

bool NoiseAdapter::Converged() const {
  return enabled_ && lock_count_ >= config_.lock_streak;
}

Vector NoiseAdapter::ExportState() const {
  if (!enabled_) return Vector();
  Vector state(kScalarFields + 2 * measurement_dim_);
  state[0] = static_cast<double>(count_);
  state[1] = ratio_ewma_;
  state[2] = corr_ewma_;
  state[3] = prev_v_;
  state[4] = has_prev_v_ ? 1.0 : 0.0;
  state[5] = r_scale_;
  state[6] = q_scale_;
  state[7] = static_cast<double>(last_correction_tick_);
  state[8] = static_cast<double>(lock_count_);
  state[9] = has_prev_z_ ? 1.0 : 0.0;
  for (size_t i = 0; i < measurement_dim_; ++i) {
    state[kScalarFields + i] = prev_z_[i];
    state[kScalarFields + measurement_dim_ + i] = qstep_est_[i];
  }
  return state;
}

Status NoiseAdapter::ImportState(const Vector& state) {
  if (!enabled_) {
    if (state.size() != 0) {
      return Status::FailedPrecondition(
          "adaptive: state payload for a disabled adapter");
    }
    return Status::OK();
  }
  if (state.size() == 0) {
    count_ = 0;
    ratio_ewma_ = 1.0;
    corr_ewma_ = 0.0;
    prev_v_ = 0.0;
    has_prev_v_ = false;
    r_scale_ = 1.0;
    q_scale_ = 1.0;
    last_correction_tick_ = -1;
    lock_count_ = 0;
    has_prev_z_ = false;
    prev_z_ = Vector(measurement_dim_);
    qstep_est_ = Vector(measurement_dim_);
    return Status::OK();
  }
  const size_t want = kScalarFields + 2 * measurement_dim_;
  if (state.size() != want) {
    return Status::InvalidArgument("adaptive: state payload size mismatch");
  }
  for (size_t i = 0; i < state.size(); ++i) {
    if (!std::isfinite(state[i])) {
      return Status::InvalidArgument("adaptive: non-finite state payload");
    }
  }
  if (!(state[0] >= 0.0) || !(state[5] > 0.0) || !(state[6] > 0.0)) {
    return Status::InvalidArgument("adaptive: implausible state payload");
  }
  count_ = static_cast<int64_t>(state[0]);
  ratio_ewma_ = state[1];
  corr_ewma_ = state[2];
  prev_v_ = state[3];
  has_prev_v_ = state[4] != 0.0;
  r_scale_ = state[5];
  q_scale_ = state[6];
  last_correction_tick_ = static_cast<int64_t>(state[7]);
  lock_count_ = static_cast<int64_t>(state[8]);
  has_prev_z_ = state[9] != 0.0;
  prev_z_ = Vector(measurement_dim_);
  qstep_est_ = Vector(measurement_dim_);
  for (size_t i = 0; i < measurement_dim_; ++i) {
    prev_z_[i] = state[kScalarFields + i];
    qstep_est_[i] = state[kScalarFields + measurement_dim_ + i];
  }
  return Status::OK();
}

bool NoiseAdapter::StateBitEqual(const NoiseAdapter& other) const {
  if (enabled_ != other.enabled_) return false;
  if (!enabled_) return true;
  return count_ == other.count_ &&
         DoubleBitEqual(ratio_ewma_, other.ratio_ewma_) &&
         DoubleBitEqual(corr_ewma_, other.corr_ewma_) &&
         DoubleBitEqual(prev_v_, other.prev_v_) &&
         has_prev_v_ == other.has_prev_v_ &&
         DoubleBitEqual(r_scale_, other.r_scale_) &&
         DoubleBitEqual(q_scale_, other.q_scale_) &&
         last_correction_tick_ == other.last_correction_tick_ &&
         lock_count_ == other.lock_count_ &&
         has_prev_z_ == other.has_prev_z_ &&
         VectorBitEqual(prev_z_, other.prev_z_) &&
         VectorBitEqual(qstep_est_, other.qstep_est_);
}

}  // namespace dkf
