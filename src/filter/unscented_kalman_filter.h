#ifndef DKF_FILTER_UNSCENTED_KALMAN_FILTER_H_
#define DKF_FILTER_UNSCENTED_KALMAN_FILTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dkf {

/// Configuration of an unscented Kalman filter (Julier/Uhlmann,
/// Wan/van der Merwe weights) for the same nonlinear system class the EKF
/// handles:
///   x_{k+1} = f(x_k, k) + w_k,   z_k = h(x_k) + v_k.
///
/// Where the EKF linearizes through Jacobians — losing accuracy on strong
/// curvature and demanding analytic derivatives — the UKF propagates a
/// deterministic set of sigma points through f and h directly. It is the
/// natural next step on the paper's §6 "models for non-linear systems"
/// agenda: same prediction-correction shape, no Jacobians, exact for
/// linear systems.
struct UnscentedKalmanFilterOptions {
  std::function<Vector(const Vector&, int64_t)> transition;  ///< f(x, k)
  std::function<Vector(const Vector&)> measurement;          ///< h(x)

  Matrix process_noise;       ///< Q (n x n)
  Matrix measurement_noise;   ///< R (m x m)
  Vector initial_state;       ///< x_0 (n)
  Matrix initial_covariance;  ///< P_0 (n x n)

  /// Sigma-point spread parameters. The defaults are the standard
  /// recommendation (alpha controls spread, beta = 2 optimal for
  /// Gaussians, kappa = 0). Keep alpha small: under DKF suppression the
  /// covariance inflates during long silent runs, and widely spread sigma
  /// points through a periodic nonlinearity (e.g. a heading angle) smear
  /// the predicted mean badly.
  double alpha = 1e-3;
  double beta = 2.0;
  double kappa = 0.0;
};

/// Unscented Kalman filter with the library's usual tick discipline:
/// Predict() once per step, Correct(z) only when a measurement arrives.
/// Deterministic, hence DKF-mirror-safe.
class UnscentedKalmanFilter {
 public:
  static Result<UnscentedKalmanFilter> Create(
      const UnscentedKalmanFilterOptions& options);

  /// Unscented time update: sigma points of (x, P) through f, recombined.
  Status Predict();

  /// h(x) at the current mean (the value the server answers).
  Vector PredictedMeasurement() const;

  /// Unscented measurement update with observation z.
  Status Correct(const Vector& z);

  const Vector& state() const { return x_; }
  const Matrix& covariance() const { return p_; }
  int64_t step() const { return step_; }
  size_t state_dim() const { return x_.size(); }

  bool StateEquals(const UnscentedKalmanFilter& other) const;

  void Reset();

 private:
  explicit UnscentedKalmanFilter(UnscentedKalmanFilterOptions options);

  /// Generates the 2n+1 sigma points of (x_, p_). Errors when P is not
  /// positive definite.
  Result<std::vector<Vector>> SigmaPoints() const;

  UnscentedKalmanFilterOptions options_;
  Vector x_;
  Matrix p_;
  int64_t step_ = 0;
  // Precomputed weights.
  double lambda_ = 0.0;
  std::vector<double> mean_weights_;
  std::vector<double> cov_weights_;
};

}  // namespace dkf

#endif  // DKF_FILTER_UNSCENTED_KALMAN_FILTER_H_
