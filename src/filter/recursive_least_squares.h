#ifndef DKF_FILTER_RECURSIVE_LEAST_SQUARES_H_
#define DKF_FILTER_RECURSIVE_LEAST_SQUARES_H_

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dkf {

/// Recursive least squares estimation of a parameter vector w from scalar
/// observations z_k = phi_k^T w + e_k.
///
/// Section 3.2 (case 4) observes that when measurements carry no confidence
/// value and are treated as exact, Kalman filtering degenerates to
/// (weighted) least squares; RLS is that degenerate case with an optional
/// exponential forgetting factor for slowly drifting parameters.
struct RecursiveLeastSquaresOptions {
  size_t dim = 0;             ///< number of parameters
  double forgetting = 1.0;    ///< lambda in (0, 1]; 1 = no forgetting
  double initial_gain = 1e6;  ///< P_0 = initial_gain * I (diffuse prior)
};

class RecursiveLeastSquares {
 public:
  static Result<RecursiveLeastSquares> Create(
      const RecursiveLeastSquaresOptions& options);

  /// Incorporates one observation with regressor `phi` and target `z`.
  Status Update(const Vector& phi, double z);

  /// Predicted target for regressor `phi`: phi^T w.
  Result<double> Predict(const Vector& phi) const;

  /// Current parameter estimate.
  const Vector& parameters() const { return w_; }

  /// Current inverse-information matrix (gain covariance).
  const Matrix& gain_covariance() const { return p_; }

  int64_t observations() const { return observations_; }

 private:
  RecursiveLeastSquares(const RecursiveLeastSquaresOptions& options);

  RecursiveLeastSquaresOptions options_;
  Vector w_;
  Matrix p_;
  int64_t observations_ = 0;
};

}  // namespace dkf

#endif  // DKF_FILTER_RECURSIVE_LEAST_SQUARES_H_
