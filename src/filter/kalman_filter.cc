#include "filter/kalman_filter.h"

#include "common/string_util.h"
#include "linalg/decompose.h"

namespace dkf {

namespace {

Status ValidateOptions(const KalmanFilterOptions& options) {
  const size_t n = options.initial_state.size();
  if (n == 0) return Status::InvalidArgument("empty initial state");
  if (!options.transition_fn) {
    if (options.transition.rows() != n || options.transition.cols() != n) {
      return Status::InvalidArgument(
          StrFormat("transition is %zux%zu, state dim is %zu",
                    options.transition.rows(), options.transition.cols(), n));
    }
  }
  const size_t m = options.measurement.rows();
  if (m == 0 || options.measurement.cols() != n) {
    return Status::InvalidArgument(
        StrFormat("measurement matrix is %zux%zu, state dim is %zu", m,
                  options.measurement.cols(), n));
  }
  if (options.process_noise.rows() != n || options.process_noise.cols() != n) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  if (options.measurement_noise.rows() != m ||
      options.measurement_noise.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  if (options.initial_covariance.rows() != n ||
      options.initial_covariance.cols() != n) {
    return Status::InvalidArgument("initial covariance must be n x n");
  }
  if (!options.initial_state.IsFinite() ||
      !options.initial_covariance.IsFinite()) {
    return Status::InvalidArgument("non-finite initial state or covariance");
  }
  return Status::OK();
}

}  // namespace

KalmanFilter::KalmanFilter(KalmanFilterOptions options)
    : options_(std::move(options)),
      x_(options_.initial_state),
      p_(options_.initial_covariance) {}

Result<KalmanFilter> KalmanFilter::Create(const KalmanFilterOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateOptions(options));
  return KalmanFilter(options);
}

Matrix KalmanFilter::TransitionAt(int64_t step) const {
  return options_.transition_fn ? options_.transition_fn(step)
                                : options_.transition;
}

Status KalmanFilter::Predict() {
  const Matrix phi = TransitionAt(step_);
  if (phi.rows() != x_.size() || phi.cols() != x_.size()) {
    return Status::Internal(
        StrFormat("transition_fn returned %zux%zu for state dim %zu",
                  phi.rows(), phi.cols(), x_.size()));
  }
  x_ = phi * x_;
  p_ = phi * p_ * phi.Transpose() + options_.process_noise;
  p_.Symmetrize();
  ++step_;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("filter state diverged to non-finite values");
  }
  return Status::OK();
}

Vector KalmanFilter::PredictedMeasurement() const {
  return options_.measurement * x_;
}

Matrix KalmanFilter::InnovationCovariance() const {
  const Matrix& h = options_.measurement;
  return h * p_ * h.Transpose() + options_.measurement_noise;
}

Status KalmanFilter::Correct(const Vector& z) {
  const Matrix& h = options_.measurement;
  if (z.size() != h.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), h.rows()));
  }
  const Matrix s = InnovationCovariance();
  // K = P H^T S^{-1}, computed by solving S K^T = H P (S is symmetric).
  auto s_inv_or = Inverse(s);
  if (!s_inv_or.ok()) {
    return Status::FailedPrecondition(
        "innovation covariance not invertible: " +
        s_inv_or.status().message());
  }
  const Matrix k = p_ * h.Transpose() * s_inv_or.value();

  const Vector innovation = z - h * x_;
  x_ += k * innovation;

  // Joseph-form covariance update: (I-KH) P (I-KH)^T + K R K^T. Stable
  // against the loss of symmetry/positivity the textbook form suffers.
  const Matrix i_kh = Matrix::Identity(x_.size()) - k * h;
  p_ = i_kh * p_ * i_kh.Transpose() +
       k * options_.measurement_noise * k.Transpose();
  p_.Symmetrize();
  last_innovation_ = innovation;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("filter state diverged to non-finite values");
  }
  return Status::OK();
}

Result<double> KalmanFilter::Nis(const Vector& z) const {
  const Matrix& h = options_.measurement;
  if (z.size() != h.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), h.rows()));
  }
  const Vector innovation = z - h * x_;
  auto solved = SolveLinear(InnovationCovariance(), innovation);
  if (!solved.ok()) return solved.status();
  return innovation.Dot(solved.value());
}

Status KalmanFilter::set_process_noise(const Matrix& q) {
  if (q.rows() != x_.size() || q.cols() != x_.size()) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  options_.process_noise = q;
  return Status::OK();
}

Status KalmanFilter::set_measurement_noise(const Matrix& r) {
  const size_t m = options_.measurement.rows();
  if (r.rows() != m || r.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  options_.measurement_noise = r;
  return Status::OK();
}

void KalmanFilter::Reset() {
  x_ = options_.initial_state;
  p_ = options_.initial_covariance;
  step_ = 0;
  last_innovation_ = Vector();
}

bool KalmanFilter::StateEquals(const KalmanFilter& other) const {
  if (step_ != other.step_ || x_.size() != other.x_.size()) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != other.x_[i]) return false;
  }
  if (p_.rows() != other.p_.rows() || p_.cols() != other.p_.cols()) {
    return false;
  }
  for (size_t r = 0; r < p_.rows(); ++r) {
    for (size_t c = 0; c < p_.cols(); ++c) {
      if (p_(r, c) != other.p_(r, c)) return false;
    }
  }
  return true;
}

}  // namespace dkf
