#include "filter/kalman_filter.h"

#include "common/string_util.h"
#include "linalg/decompose.h"
#include "linalg/kernels.h"

namespace dkf {

namespace {

// Consecutive converged Corrects (under an unbroken Predict/Correct
// cadence) required before the steady-state fast path arms. Two in a row
// rules out a coincidental single match. Period-2 cycles require twice as
// many hits so each phase of the cycle is confirmed twice.
constexpr int kArmStreak = 2;

Status ValidateOptions(const KalmanFilterOptions& options) {
  const size_t n = options.initial_state.size();
  if (n == 0) return Status::InvalidArgument("empty initial state");
  if (!options.transition_fn) {
    if (options.transition.rows() != n || options.transition.cols() != n) {
      return Status::InvalidArgument(
          StrFormat("transition is %zux%zu, state dim is %zu",
                    options.transition.rows(), options.transition.cols(), n));
    }
  }
  const size_t m = options.measurement.rows();
  if (m == 0 || options.measurement.cols() != n) {
    return Status::InvalidArgument(
        StrFormat("measurement matrix is %zux%zu, state dim is %zu", m,
                  options.measurement.cols(), n));
  }
  if (options.process_noise.rows() != n || options.process_noise.cols() != n) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  if (options.measurement_noise.rows() != m ||
      options.measurement_noise.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  if (options.initial_covariance.rows() != n ||
      options.initial_covariance.cols() != n) {
    return Status::InvalidArgument("initial covariance must be n x n");
  }
  if (!options.initial_state.IsFinite() ||
      !options.initial_covariance.IsFinite()) {
    return Status::InvalidArgument("non-finite initial state or covariance");
  }
  return Status::OK();
}

}  // namespace

KalmanFilter::KalmanFilter(KalmanFilterOptions options)
    : options_(std::move(options)),
      x_(options_.initial_state),
      p_(options_.initial_covariance),
      identity_(Matrix::Identity(options_.initial_state.size())) {
  // Pre-size the workspace so the hot loop never grows anything. For
  // n <= 6 the matrices are inline-stored and this is free; for larger
  // states it front-loads the heap allocations into construction.
  const size_t n = x_.size();
  const size_t m = options_.measurement.rows();
  scratch_.nn1.AssignZero(n, n);
  scratch_.nn2.AssignZero(n, n);
  scratch_.nn3.AssignZero(n, n);
  scratch_.nm1.AssignZero(n, m);
  scratch_.nm2.AssignZero(n, m);
  scratch_.k.AssignZero(n, m);
  scratch_.mm.AssignZero(m, m);
  scratch_.mv1.AssignZero(m);
  scratch_.mv2.AssignZero(m);
  scratch_.mv3.AssignZero(m);
  scratch_.nv1.AssignZero(n);
  scratch_.pivots.reserve(m);
  for (int i = 0; i < 2; ++i) {
    ss_prev_post_[i].AssignZero(n, n);
    ss_gain_[i].AssignZero(n, m);
    ss_prior_p_[i].AssignZero(n, n);
    ss_post_p_[i].AssignZero(n, n);
  }
  ss_prev_gain_.AssignZero(n, m);
}

Result<KalmanFilter> KalmanFilter::Create(const KalmanFilterOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateOptions(options));
  return KalmanFilter(options);
}

const Matrix& KalmanFilter::TransitionAt(int64_t step) {
  if (!options_.transition_fn) return options_.transition;
  scratch_.phi = options_.transition_fn(step);
  return scratch_.phi;
}

void KalmanFilter::DisarmSteadyState() {
  if (ss_mode_ == SsMode::kArmed) {
    DKF_TRACE(obs_sink_, step_, obs_source_, TraceEventKind::kFastPathDisarm,
              obs_actor_, static_cast<double>(ss_period_));
  }
  ss_mode_ = SsMode::kTracking;
  ss_streak1_ = 0;
  ss_streak2_ = 0;
  ss_have_prev_ = 0;
}

Status KalmanFilter::Predict() {
  if (ss_mode_ == SsMode::kArmed) {
    if (phase_ == Phase::kCorrected) {
      // Fast path: x <- phi x with the frozen covariance cycle. The frozen
      // matrices are a floating-point fixed cycle of the slow-path
      // recursion, so assigning them is bit-identical to recomputing.
      MultiplyInto(options_.transition, x_, &scratch_.nv1);
      x_ = scratch_.nv1;
      ss_idx_ = (ss_idx_ + 1) % ss_period_;
      p_ = ss_prior_p_[ss_idx_];
      ++step_;
      ++predicts_since_correct_;
      phase_ = Phase::kPredicted;
      if (!x_.IsFinite()) {
        return Status::Internal("filter state diverged to non-finite values");
      }
      return Status::OK();
    }
    // A second Predict without an intervening Correct (a coasting tick)
    // moves the covariance off the frozen cycle: resume the full update.
    DisarmSteadyState();
  }
  const Matrix& phi = TransitionAt(step_);
  if (phi.rows() != x_.size() || phi.cols() != x_.size()) {
    return Status::Internal(
        StrFormat("transition_fn returned %zux%zu for state dim %zu",
                  phi.rows(), phi.cols(), x_.size()));
  }
  // x <- phi x, P <- phi P phi^T + Q, all in scratch.
  MultiplyInto(phi, x_, &scratch_.nv1);
  x_ = scratch_.nv1;
  MultiplyInto(phi, p_, &scratch_.nn1);
  MultiplyTransposedInto(scratch_.nn1, phi, &scratch_.nn2);
  AddScaledInto(scratch_.nn2, options_.process_noise, 1.0, &p_);
  p_.Symmetrize();
  ++step_;
  ++predicts_since_correct_;
  if (ss_mode_ == SsMode::kArmPending) {
    if (phase_ == Phase::kCorrected && predicts_since_correct_ == 1) {
      // Predict after an arming/pending Correct: this a-priori covariance
      // is one phase of the frozen cycle. Arm once all phases are
      // captured (one Predict for period 1, two for period 2).
      ss_prior_p_[ss_capture_idx_] = p_;
      if (--ss_pending_priors_ == 0) {
        ss_mode_ = SsMode::kArmed;
        ss_idx_ = ss_capture_idx_;  // phase of the upcoming Correct
        DKF_TRACE(obs_sink_, step_, obs_source_,
                  TraceEventKind::kFastPathFreeze, obs_actor_,
                  static_cast<double>(ss_period_));
      } else {
        ss_capture_idx_ = (ss_capture_idx_ + 1) % ss_period_;
      }
    } else {
      DisarmSteadyState();
    }
  }
  phase_ = Phase::kPredicted;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("filter state diverged to non-finite values");
  }
  return Status::OK();
}

Vector KalmanFilter::PredictedMeasurement() const {
  return options_.measurement * x_;
}

Matrix KalmanFilter::InnovationCovariance() const {
  const Matrix& h = options_.measurement;
  MultiplyTransposedInto(p_, h, &scratch_.nm1);
  Matrix s;
  MultiplyInto(h, scratch_.nm1, &s);
  AddScaledInto(s, options_.measurement_noise, 1.0, &s);
  return s;
}

Status KalmanFilter::Correct(const Vector& z) {
  const Matrix& h = options_.measurement;
  if (z.size() != h.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), h.rows()));
  }
  if (ss_mode_ == SsMode::kArmed) {
    if (phase_ == Phase::kPredicted && predicts_since_correct_ == 1) {
      // Fast path: x <- x + K (z - H x) with the frozen gain for this
      // cycle phase; the covariance snaps to the frozen a-posteriori
      // value.
      MultiplyInto(h, x_, &scratch_.mv1);
      AddScaledInto(z, scratch_.mv1, -1.0, &scratch_.mv2);
      MultiplyInto(ss_gain_[ss_idx_], scratch_.mv2, &scratch_.nv1);
      x_ += scratch_.nv1;
      p_ = ss_post_p_[ss_idx_];
      last_innovation_ = scratch_.mv2;
      predicts_since_correct_ = 0;
      phase_ = Phase::kCorrected;
      if (!x_.IsFinite()) {
        return Status::Internal("filter state diverged to non-finite values");
      }
      return Status::OK();
    }
    DisarmSteadyState();
  }
  const size_t n = x_.size();
  const size_t m = h.rows();

  // S = H (P H^T) + R, built in scratch. P is kept exactly symmetric by
  // Symmetrize, so P H^T is the transpose of H P entry-for-entry.
  MultiplyTransposedInto(p_, h, &scratch_.nm1);
  MultiplyInto(h, scratch_.nm1, &scratch_.mm);
  AddScaledInto(scratch_.mm, options_.measurement_noise, 1.0, &scratch_.mm);

  // K = P H^T S^{-1}, computed by LU-factoring S once and solving
  // S K^T = H P column-by-column (column j of H P is row j of P H^T) —
  // faster and better conditioned than forming S^{-1} explicitly.
  Status factored = LuFactorInPlace(&scratch_.mm, &scratch_.pivots);
  if (!factored.ok()) {
    return Status::FailedPrecondition(
        "innovation covariance not invertible: " + factored.message());
  }
  scratch_.k.AssignZero(n, m);
  for (size_t j = 0; j < n; ++j) {
    scratch_.mv3.AssignZero(m);
    const double* pht_row = scratch_.nm1.RowData(j);
    for (size_t i = 0; i < m; ++i) scratch_.mv3[i] = pht_row[i];
    DKF_RETURN_IF_ERROR(
        LuSolveInto(scratch_.mm, scratch_.pivots, scratch_.mv3,
                    &scratch_.mv1));
    for (size_t i = 0; i < m; ++i) scratch_.k(j, i) = scratch_.mv1[i];
  }

  // x <- x + K (z - H x).
  MultiplyInto(h, x_, &scratch_.mv1);
  AddScaledInto(z, scratch_.mv1, -1.0, &scratch_.mv2);  // innovation
  MultiplyInto(scratch_.k, scratch_.mv2, &scratch_.nv1);
  x_ += scratch_.nv1;

  // Joseph-form covariance update: (I-KH) P (I-KH)^T + K R K^T. Stable
  // against the loss of symmetry/positivity the textbook form suffers.
  MultiplyInto(scratch_.k, h, &scratch_.nn1);
  AddScaledInto(identity_, scratch_.nn1, -1.0, &scratch_.nn2);  // I - K H
  MultiplyInto(scratch_.nn2, p_, &scratch_.nn1);
  MultiplyTransposedInto(scratch_.nn1, scratch_.nn2, &scratch_.nn3);
  MultiplyInto(scratch_.k, options_.measurement_noise, &scratch_.nm2);
  MultiplyTransposedInto(scratch_.nm2, scratch_.k, &scratch_.nn1);
  AddScaledInto(scratch_.nn3, scratch_.nn1, 1.0, &p_);
  p_.Symmetrize();
  last_innovation_ = scratch_.mv2;

  const bool cadence_ok =
      phase_ == Phase::kPredicted && predicts_since_correct_ == 1;
  predicts_since_correct_ = 0;
  phase_ = Phase::kCorrected;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("filter state diverged to non-finite values");
  }

  // Steady-state convergence tracking: arm once the post-Correct
  // covariance repeats (to within the configured tolerance; exactly, by
  // default) under an unbroken Predict/Correct cadence. Two repeat
  // patterns arm: a true fixed point (P equals the previous post-Correct
  // P) and the period-2 limit cycle multi-axis models settle into, where
  // P oscillates by an ulp forever but P(t) == P(t-2) exactly.
  if (options_.steady_state_fast_path && !options_.transition_fn &&
      options_.steady_state_tolerance >= 0.0) {
    const double tol = options_.steady_state_tolerance;
    const bool hit1 = cadence_ok && ss_have_prev_ >= 1 &&
                      p_.MaxAbsDiff(ss_prev_post_[0]) <= tol;
    const bool hit2 = cadence_ok && ss_have_prev_ >= 2 &&
                      p_.MaxAbsDiff(ss_prev_post_[1]) <= tol;
    ss_streak1_ = hit1 ? ss_streak1_ + 1 : 0;
    ss_streak2_ = hit2 ? ss_streak2_ + 1 : 0;
    // A pending capture is only valid while its own cycle keeps repeating.
    if (ss_mode_ == SsMode::kArmPending &&
        ((ss_period_ == 1 && !hit1) || (ss_period_ == 2 && !hit2))) {
      ss_mode_ = SsMode::kTracking;
    }
    if (ss_mode_ == SsMode::kTracking) {
      if (ss_streak1_ >= kArmStreak) {
        // Fixed point: a single-phase cycle.
        ss_period_ = 1;
        ss_gain_[0] = scratch_.k;
        ss_post_p_[0] = p_;
        ss_pending_priors_ = 1;
        ss_capture_idx_ = 0;
        ss_mode_ = SsMode::kArmPending;
      } else if (ss_streak2_ >= 2 * kArmStreak) {
        // Period-2 cycle: this Correct is phase 1, the previous one was
        // phase 0 (its post-P and gain are still in the history ring).
        ss_period_ = 2;
        ss_gain_[0] = ss_prev_gain_;
        ss_post_p_[0] = ss_prev_post_[0];
        ss_gain_[1] = scratch_.k;
        ss_post_p_[1] = p_;
        ss_pending_priors_ = 2;
        ss_capture_idx_ = 0;
        ss_mode_ = SsMode::kArmPending;
      }
    }
    ss_prev_post_[1] = ss_prev_post_[0];
    ss_prev_post_[0] = p_;
    ss_prev_gain_ = scratch_.k;
    if (ss_have_prev_ < 2) ++ss_have_prev_;
  }
  return Status::OK();
}

Result<double> KalmanFilter::Nis(const Vector& z) const {
  const Matrix& h = options_.measurement;
  if (z.size() != h.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), h.rows()));
  }
  // y^T S^{-1} y by factor-and-solve against scratch — no inverse, no
  // allocation.
  MultiplyTransposedInto(p_, h, &scratch_.nm1);
  MultiplyInto(h, scratch_.nm1, &scratch_.mm);
  AddScaledInto(scratch_.mm, options_.measurement_noise, 1.0, &scratch_.mm);
  MultiplyInto(h, x_, &scratch_.mv1);
  AddScaledInto(z, scratch_.mv1, -1.0, &scratch_.mv2);
  DKF_RETURN_IF_ERROR(LuFactorInPlace(&scratch_.mm, &scratch_.pivots));
  DKF_RETURN_IF_ERROR(
      LuSolveInto(scratch_.mm, scratch_.pivots, scratch_.mv2, &scratch_.mv1));
  return scratch_.mv2.Dot(scratch_.mv1);
}

Status KalmanFilter::set_process_noise(const Matrix& q) {
  if (q.rows() != x_.size() || q.cols() != x_.size()) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  options_.process_noise = q;
  // The Riccati fixed point moved: leave the fast path and re-track.
  DisarmSteadyState();
  return Status::OK();
}

Status KalmanFilter::set_measurement_noise(const Matrix& r) {
  const size_t m = options_.measurement.rows();
  if (r.rows() != m || r.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  options_.measurement_noise = r;
  DisarmSteadyState();
  return Status::OK();
}

void KalmanFilter::Reset() {
  x_ = options_.initial_state;
  p_ = options_.initial_covariance;
  step_ = 0;
  last_innovation_ = Vector();
  phase_ = Phase::kInitial;
  predicts_since_correct_ = 0;
  DisarmSteadyState();
}

Status KalmanFilter::ImportState(const Vector& x, const Matrix& p,
                                 int64_t step) {
  if (x.size() != x_.size()) {
    return Status::InvalidArgument("imported state has the wrong dimension");
  }
  if (p.rows() != p_.rows() || p.cols() != p_.cols()) {
    return Status::InvalidArgument(
        "imported covariance has the wrong dimensions");
  }
  x_ = x;
  p_ = p;
  step_ = step;
  last_innovation_ = Vector();
  phase_ = Phase::kPredicted;
  predicts_since_correct_ = 1;
  DisarmSteadyState();
  return Status::OK();
}

KalmanFilter::FullState KalmanFilter::ExportFullState() const {
  FullState full;
  full.x = x_;
  full.p = p_;
  full.step = step_;
  full.last_innovation = last_innovation_;
  full.process_noise = options_.process_noise;
  full.measurement_noise = options_.measurement_noise;
  full.phase = static_cast<uint8_t>(phase_);
  full.ss_mode = static_cast<uint8_t>(ss_mode_);
  full.ss_streak1 = ss_streak1_;
  full.ss_streak2 = ss_streak2_;
  full.predicts_since_correct = predicts_since_correct_;
  full.ss_have_prev = ss_have_prev_;
  for (int i = 0; i < 2; ++i) {
    full.ss_prev_post[i] = ss_prev_post_[i];
    full.ss_gain[i] = ss_gain_[i];
    full.ss_prior_p[i] = ss_prior_p_[i];
    full.ss_post_p[i] = ss_post_p_[i];
  }
  full.ss_prev_gain = ss_prev_gain_;
  full.ss_period = ss_period_;
  full.ss_pending_priors = ss_pending_priors_;
  full.ss_capture_idx = ss_capture_idx_;
  full.ss_idx = ss_idx_;
  return full;
}

Status KalmanFilter::ImportFullState(const FullState& full) {
  const size_t n = x_.size();
  const size_t m = options_.measurement.rows();
  if (full.x.size() != n || full.p.rows() != n || full.p.cols() != n) {
    return Status::InvalidArgument(
        "full state has the wrong state/covariance dimensions");
  }
  if (full.process_noise.rows() != n || full.process_noise.cols() != n ||
      full.measurement_noise.rows() != m ||
      full.measurement_noise.cols() != m) {
    return Status::InvalidArgument("full state has the wrong noise shapes");
  }
  if (full.last_innovation.size() != 0 && full.last_innovation.size() != m) {
    return Status::InvalidArgument(
        "full state has the wrong innovation dimension");
  }
  if (full.phase > static_cast<uint8_t>(Phase::kCorrected) ||
      full.ss_mode > static_cast<uint8_t>(SsMode::kArmed) ||
      full.ss_period < 1 || full.ss_period > 2) {
    return Status::InvalidArgument("full state has out-of-range mode fields");
  }
  for (int i = 0; i < 2; ++i) {
    if (full.ss_prev_post[i].rows() != n || full.ss_prev_post[i].cols() != n ||
        full.ss_prior_p[i].rows() != n || full.ss_prior_p[i].cols() != n ||
        full.ss_post_p[i].rows() != n || full.ss_post_p[i].cols() != n ||
        full.ss_gain[i].rows() != n || full.ss_gain[i].cols() != m) {
      return Status::InvalidArgument(
          "full state has the wrong fast-path matrix shapes");
    }
  }
  if (full.ss_prev_gain.rows() != n || full.ss_prev_gain.cols() != m) {
    return Status::InvalidArgument(
        "full state has the wrong fast-path gain shape");
  }
  if (!full.x.IsFinite() || !full.p.IsFinite()) {
    return Status::InvalidArgument(
        "full state carries non-finite estimate or covariance");
  }
  x_ = full.x;
  p_ = full.p;
  step_ = full.step;
  last_innovation_ = full.last_innovation;
  // Direct assignment on purpose: set_process_noise/set_measurement_noise
  // would disarm the fast path, which must survive a checkpoint intact.
  options_.process_noise = full.process_noise;
  options_.measurement_noise = full.measurement_noise;
  phase_ = static_cast<Phase>(full.phase);
  ss_mode_ = static_cast<SsMode>(full.ss_mode);
  ss_streak1_ = full.ss_streak1;
  ss_streak2_ = full.ss_streak2;
  predicts_since_correct_ = full.predicts_since_correct;
  ss_have_prev_ = full.ss_have_prev;
  for (int i = 0; i < 2; ++i) {
    ss_prev_post_[i] = full.ss_prev_post[i];
    ss_gain_[i] = full.ss_gain[i];
    ss_prior_p_[i] = full.ss_prior_p[i];
    ss_post_p_[i] = full.ss_post_p[i];
  }
  ss_prev_gain_ = full.ss_prev_gain;
  ss_period_ = full.ss_period;
  ss_pending_priors_ = full.ss_pending_priors;
  ss_capture_idx_ = full.ss_capture_idx;
  ss_idx_ = full.ss_idx;
  return Status::OK();
}

bool KalmanFilter::StateEquals(const KalmanFilter& other) const {
  if (step_ != other.step_ || x_.size() != other.x_.size()) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != other.x_[i]) return false;
  }
  if (p_.rows() != other.p_.rows() || p_.cols() != other.p_.cols()) {
    return false;
  }
  for (size_t r = 0; r < p_.rows(); ++r) {
    for (size_t c = 0; c < p_.cols(); ++c) {
      if (p_(r, c) != other.p_(r, c)) return false;
    }
  }
  return true;
}

}  // namespace dkf
