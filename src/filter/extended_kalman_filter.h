#ifndef DKF_FILTER_EXTENDED_KALMAN_FILTER_H_
#define DKF_FILTER_EXTENDED_KALMAN_FILTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dkf {

/// Configuration of an extended Kalman filter for the nonlinear system
///   x_{k+1} = f(x_k, k) + w_k
///   z_k     = h(x_k) + v_k
/// linearized about the most recent estimate (§3.2 cases 2-3: nonlinear
/// state propagation and/or measurement).
struct ExtendedKalmanFilterOptions {
  /// Nonlinear state propagation f(x, k).
  std::function<Vector(const Vector&, int64_t)> transition;

  /// Jacobian of f with respect to x, evaluated at (x, k).
  std::function<Matrix(const Vector&, int64_t)> transition_jacobian;

  /// Nonlinear measurement function h(x).
  std::function<Vector(const Vector&)> measurement;

  /// Jacobian of h with respect to x.
  std::function<Matrix(const Vector&)> measurement_jacobian;

  Matrix process_noise;      ///< Q (n x n)
  Matrix measurement_noise;  ///< R (m x m)
  Vector initial_state;      ///< x_0 (n)
  Matrix initial_covariance; ///< P_0 (n x n)
};

/// Extended Kalman filter. Mirrors the KalmanFilter tick discipline:
/// Predict() once per step, Correct(z) only when a measurement arrives.
///
/// Like KalmanFilter, the per-tick arithmetic runs against a preallocated
/// scratch workspace (linalg/kernels.h), so small-dimension ticks are
/// allocation-free. There is no steady-state fast path: the Jacobians are
/// re-linearized at every estimate, so the covariance recursion is never
/// stationary.
class ExtendedKalmanFilter {
 public:
  static Result<ExtendedKalmanFilter> Create(
      const ExtendedKalmanFilterOptions& options);

  /// Time update through the nonlinear model: x <- f(x, k),
  /// P <- F P F^T + Q with F the transition Jacobian at the prior estimate.
  Status Predict();

  /// h(x) at the current estimate.
  Vector PredictedMeasurement() const;

  /// Measurement update linearized at the current estimate.
  Status Correct(const Vector& z);

  const Vector& state() const { return x_; }
  const Matrix& covariance() const { return p_; }
  int64_t step() const { return step_; }

  /// True when both filters have bit-identical state, covariance, and
  /// step counter (the mirror-consistency predicate; the callbacks are
  /// assumed shared/equal by construction).
  bool StateEquals(const ExtendedKalmanFilter& other) const;

  void Reset();

 private:
  explicit ExtendedKalmanFilter(ExtendedKalmanFilterOptions options);

  /// Preallocated workspace for the in-place kernels (see KalmanFilter).
  struct Scratch {
    Matrix jac;      // transition/measurement Jacobian of the current step
    Matrix nn1;      // n x n temporaries
    Matrix nn2;
    Matrix nn3;
    Matrix nm1;      // P H^T
    Matrix nm2;      // K R
    Matrix k;        // gain (n x m)
    Matrix mm;       // S, LU-factored in place
    Vector mv1;
    Vector mv2;
    Vector nv1;
    std::vector<size_t> pivots;
  };

  ExtendedKalmanFilterOptions options_;
  Vector x_;
  Matrix p_;
  int64_t step_ = 0;
  Matrix identity_;  // I_n, hoisted out of the Joseph update
  Scratch scratch_;
};

}  // namespace dkf

#endif  // DKF_FILTER_EXTENDED_KALMAN_FILTER_H_
