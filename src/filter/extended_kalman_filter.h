#ifndef DKF_FILTER_EXTENDED_KALMAN_FILTER_H_
#define DKF_FILTER_EXTENDED_KALMAN_FILTER_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dkf {

/// Configuration of an extended Kalman filter for the nonlinear system
///   x_{k+1} = f(x_k, k) + w_k
///   z_k     = h(x_k) + v_k
/// linearized about the most recent estimate (§3.2 cases 2-3: nonlinear
/// state propagation and/or measurement).
struct ExtendedKalmanFilterOptions {
  /// Nonlinear state propagation f(x, k).
  std::function<Vector(const Vector&, int64_t)> transition;

  /// Jacobian of f with respect to x, evaluated at (x, k).
  std::function<Matrix(const Vector&, int64_t)> transition_jacobian;

  /// Nonlinear measurement function h(x).
  std::function<Vector(const Vector&)> measurement;

  /// Jacobian of h with respect to x.
  std::function<Matrix(const Vector&)> measurement_jacobian;

  Matrix process_noise;      ///< Q (n x n)
  Matrix measurement_noise;  ///< R (m x m)
  Vector initial_state;      ///< x_0 (n)
  Matrix initial_covariance; ///< P_0 (n x n)
};

/// Extended Kalman filter. Mirrors the KalmanFilter tick discipline:
/// Predict() once per step, Correct(z) only when a measurement arrives.
class ExtendedKalmanFilter {
 public:
  static Result<ExtendedKalmanFilter> Create(
      const ExtendedKalmanFilterOptions& options);

  /// Time update through the nonlinear model: x <- f(x, k),
  /// P <- F P F^T + Q with F the transition Jacobian at the prior estimate.
  Status Predict();

  /// h(x) at the current estimate.
  Vector PredictedMeasurement() const;

  /// Measurement update linearized at the current estimate.
  Status Correct(const Vector& z);

  const Vector& state() const { return x_; }
  const Matrix& covariance() const { return p_; }
  int64_t step() const { return step_; }

  /// True when both filters have bit-identical state, covariance, and
  /// step counter (the mirror-consistency predicate; the callbacks are
  /// assumed shared/equal by construction).
  bool StateEquals(const ExtendedKalmanFilter& other) const;

  void Reset();

 private:
  explicit ExtendedKalmanFilter(ExtendedKalmanFilterOptions options);

  ExtendedKalmanFilterOptions options_;
  Vector x_;
  Matrix p_;
  int64_t step_ = 0;
};

}  // namespace dkf

#endif  // DKF_FILTER_EXTENDED_KALMAN_FILTER_H_
