#include "filter/steady_state.h"

#include "common/string_util.h"
#include "linalg/decompose.h"
#include "linalg/kernels.h"

namespace dkf {

Result<SteadyStateSolution> SolveRiccati(const Matrix& transition,
                                         const Matrix& measurement,
                                         const Matrix& process_noise,
                                         const Matrix& measurement_noise,
                                         double tolerance,
                                         int max_iterations) {
  const size_t n = transition.rows();
  if (transition.cols() != n) {
    return Status::InvalidArgument("transition must be square");
  }
  if (measurement.cols() != n) {
    return Status::InvalidArgument("measurement must have n columns");
  }
  const Matrix h_t = measurement.Transpose();
  Matrix p = process_noise;  // any PSD start converges for detectable systems
  int iterations = 0;
  for (; iterations < max_iterations; ++iterations) {
    const Matrix s = measurement * p * h_t + measurement_noise;
    auto s_inv_or = Inverse(s);
    if (!s_inv_or.ok()) {
      return Status::FailedPrecondition(
          "innovation covariance not invertible during Riccati iteration");
    }
    const Matrix gain = p * h_t * s_inv_or.value();
    Matrix next = transition * (p - gain * measurement * p) *
                      transition.Transpose() +
                  process_noise;
    next.Symmetrize();
    const double delta = next.MaxAbsDiff(p);
    p = next;
    if (delta < tolerance) {
      SteadyStateSolution solution;
      solution.covariance = p;
      const Matrix s_final = measurement * p * h_t + measurement_noise;
      auto s_final_inv = Inverse(s_final);
      if (!s_final_inv.ok()) return s_final_inv.status();
      solution.gain = p * h_t * s_final_inv.value();
      solution.iterations = iterations + 1;
      return solution;
    }
  }
  return Status::FailedPrecondition(
      StrFormat("Riccati iteration did not converge in %d steps",
                max_iterations));
}

SteadyStateKalmanFilter::SteadyStateKalmanFilter(Matrix transition,
                                                 Matrix measurement,
                                                 Matrix gain,
                                                 Vector initial_state)
    : transition_(std::move(transition)),
      measurement_(std::move(measurement)),
      gain_(std::move(gain)),
      x_(std::move(initial_state)) {}

Result<SteadyStateKalmanFilter> SteadyStateKalmanFilter::Create(
    const KalmanFilterOptions& options) {
  if (options.transition_fn) {
    return Status::InvalidArgument(
        "steady-state filter requires a constant transition matrix");
  }
  auto solution_or =
      SolveRiccati(options.transition, options.measurement,
                   options.process_noise, options.measurement_noise);
  if (!solution_or.ok()) return solution_or.status();
  return SteadyStateKalmanFilter(options.transition, options.measurement,
                                 std::move(solution_or).value().gain,
                                 options.initial_state);
}

void SteadyStateKalmanFilter::Predict() {
  MultiplyInto(transition_, x_, &scratch_n_);
  x_ = scratch_n_;
  ++step_;
}

Vector SteadyStateKalmanFilter::PredictedMeasurement() const {
  return measurement_ * x_;
}

bool SteadyStateKalmanFilter::StateEquals(
    const SteadyStateKalmanFilter& other) const {
  if (step_ != other.step_ || x_.size() != other.x_.size()) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != other.x_[i]) return false;
  }
  return true;
}

Status SteadyStateKalmanFilter::Correct(const Vector& z) {
  if (z.size() != measurement_.rows()) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(),
                  measurement_.rows()));
  }
  // x <- x + K (z - H x), all in scratch.
  MultiplyInto(measurement_, x_, &scratch_m_);
  AddScaledInto(z, scratch_m_, -1.0, &scratch_m_);
  MultiplyInto(gain_, scratch_m_, &scratch_n_);
  x_ += scratch_n_;
  return Status::OK();
}

}  // namespace dkf
