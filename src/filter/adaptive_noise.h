#ifndef DKF_FILTER_ADAPTIVE_NOISE_H_
#define DKF_FILTER_ADAPTIVE_NOISE_H_

#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "filter/kalman_filter.h"
#include "linalg/matrix.h"

namespace dkf {

struct StateModel;

/// Tunables of the online Q/R servo (docs/adaptive.md). Defaults are the
/// production recipe: fast-ish R reaction, slow Q reaction, generous
/// clamps. `enabled = false` keeps every filter on its fixed nominal
/// noise, bit-identical to the pre-adaptive engine.
struct AdaptiveNoiseConfig {
  /// Master switch. Off by default so existing configurations, golden
  /// traces, and pre-v4 snapshots behave exactly as before.
  bool enabled = false;

  /// EWMA retention for the normalized-innovation-squared ratio
  /// E[y^2 / S]. Must be in (0, 1); higher = slower, smoother.
  double ratio_alpha = 0.9;

  /// EWMA retention for the lag-1 normalized-innovation correlation that
  /// discriminates Q-misfit (colored innovations) from R-misfit (white
  /// but wrongly sized innovations).
  double corr_alpha = 0.9;

  /// Corrections observed before any scale is allowed to move; the EWMA
  /// state needs this many samples to mean anything.
  int64_t warmup_corrections = 8;

  /// Ratio above which the filter is under-modelling its noise and the
  /// servo widens (R by default, Q when innovations are colored).
  double widen_threshold = 1.8;

  /// Ratio below which the modelled noise is oversized and the servo
  /// shrinks R (and relaxes Q back toward nominal).
  double shrink_threshold = 0.5;

  /// Per-correction multiplicative step applied when widening R.
  double widen_rate = 0.08;

  /// Per-correction multiplicative step applied when shrinking R.
  double shrink_rate = 0.03;

  /// Clamp on the R multiplier, relative to nominal R.
  double r_scale_floor = 0.05;
  double r_scale_ceiling = 50.0;

  /// Lag-1 correlation magnitude above which a widen is attributed to
  /// process (Q) misfit instead of measurement (R) misfit.
  double corr_q_threshold = 0.35;

  /// Per-correction relative step for the (deliberately slow) Q servo.
  double q_rate = 0.02;

  /// Clamp on the Q multiplier, relative to nominal Q.
  double q_scale_floor = 0.1;
  double q_scale_ceiling = 50.0;

  /// Absolute floor applied to every effective-R diagonal, guarding
  /// against a degenerate (singular) measurement noise.
  double variance_floor = 1e-9;

  /// When true, effective-R diagonals are additionally floored at
  /// step^2 / 12 — the variance of uniform quantization error — where
  /// `step` is the smallest nonzero reading delta seen so far. Stops the
  /// filter from trusting quantized readings below their resolution.
  bool quantization_floor = true;

  /// Corrections separated by more than this many ticks carry stale
  /// innovation statistics (outage, long suppression run after a regime
  /// settled): the first correction after such a gap re-seeds the lag-1
  /// state and is not adapted on. 0 disables holdover detection.
  int64_t holdover_gap = 64;

  /// Consecutive in-dead-band corrections after which the servo reports
  /// Converged() — the fleet engine's re-absorption gate.
  int64_t lock_streak = 24;
};

/// O(1)-state innovation-based Q/R servo for one Kalman filter.
///
/// The estimator watches corrections only — never suppressed readings —
/// so a source-side mirror and a server-side filter running identical
/// NoiseAdapter instances over the *transmitted* corrections adapt
/// bit-identically (the DKF mirror-consistency contract, docs/adaptive.md).
/// All state is a handful of scalars plus two measurement-width vectors;
/// nothing allocates per correction for measurement widths <= 6.
///
/// Replaces the deque-based AdaptiveNoiseEstimator sketch
/// (filter/noise_estimation.h), which allocated per Observe() and was
/// never wired into the protocol.
class NoiseAdapter {
 public:
  /// A disabled adapter: every call is a cheap no-op. Lets callers embed
  /// the adapter by value without optionality gymnastics.
  NoiseAdapter() = default;

  /// Builds an adapter for filters instantiated from `model`, capturing
  /// the model's nominal Q and R as the adaptation baseline. Errors on
  /// nonsensical configuration.
  static Result<NoiseAdapter> Create(const AdaptiveNoiseConfig& config,
                                     const StateModel& model);

  bool enabled() const { return enabled_; }

  /// What OnCorrection decided for one correction.
  struct Decision {
    bool adapted = false;  ///< a scale moved; InstallInto may change Q/R
    bool frozen = false;   ///< holdover gap detected; statistics re-seeded
  };

  /// Feeds one transmitted correction. Must be called with the filter in
  /// its *pre-correct* state (after Predict, before Correct) so the
  /// innovation y = z - H x and its covariance S = H P H^T + R are the
  /// textbook a-priori quantities; call filter.Correct(z) afterwards and
  /// then InstallInto() to publish any new effective Q/R.
  ///
  /// Deterministic: equal call sequences on equal states yield bit-equal
  /// adapter states — the basis of mirror consistency.
  Result<Decision> OnCorrection(const KalmanFilter& filter, const Vector& z,
                                int64_t tick);

  /// Installs the current effective Q/R into `filter`, skipping the
  /// setter (and its steady-state fast-path disarm) when the installed
  /// matrix is already bit-identical.
  Status InstallInto(KalmanFilter* filter) const;

  /// Effective noise under the current scales: R is nominal R scaled by
  /// r_scale with diagonals floored (variance floor + quantization
  /// floor); Q is nominal Q scaled by q_scale.
  Matrix EffectiveMeasurementNoise() const;
  Matrix EffectiveProcessNoise() const;

  /// True once `lock_streak` consecutive corrections landed in the dead
  /// band — the scales have stopped moving.
  bool Converged() const;

  double r_scale() const { return r_scale_; }
  double q_scale() const { return q_scale_; }
  int64_t corrections() const { return count_; }

  /// Flat serialization of the mutable adapter state (not the config or
  /// the nominal matrices, which both ends share by construction). Rides
  /// in kResync messages (Message::resync_adapt) and in snapshot-v4
  /// checkpoints. Empty when the adapter is disabled.
  Vector ExportState() const;

  /// Restores a peer's exported state bit-exactly; an empty vector
  /// resets to the initial state. Errors on malformed payloads (wrong
  /// length, non-finite values) so a corrupted-but-checksum-colliding
  /// frame cannot poison the servo.
  Status ImportState(const Vector& state);

  /// Bitwise equality of the mutable state — the adaptive half of the
  /// mirror-consistency predicate.
  bool StateBitEqual(const NoiseAdapter& other) const;

 private:
  static constexpr int64_t kScalarFields = 10;

  AdaptiveNoiseConfig config_;
  bool enabled_ = false;
  size_t measurement_dim_ = 0;
  Matrix nominal_q_;
  Matrix nominal_r_;

  // Mutable state (everything ExportState ships).
  int64_t count_ = 0;           ///< corrections observed
  double ratio_ewma_ = 1.0;     ///< EWMA of mean(y_i^2 / S_ii)
  double corr_ewma_ = 0.0;      ///< EWMA of v_k * v_{k-1}
  double prev_v_ = 0.0;         ///< previous mean normalized innovation
  bool has_prev_v_ = false;
  double r_scale_ = 1.0;
  double q_scale_ = 1.0;
  int64_t last_correction_tick_ = -1;
  int64_t lock_count_ = 0;
  bool has_prev_z_ = false;
  Vector prev_z_;     ///< previous transmitted reading (qstep estimation)
  Vector qstep_est_;  ///< per-component min nonzero |z_k - z_{k-1}|
};

}  // namespace dkf

#endif  // DKF_FILTER_ADAPTIVE_NOISE_H_
