#include "filter/unscented_kalman_filter.h"

#include <cmath>

#include "common/string_util.h"
#include "linalg/decompose.h"

namespace dkf {

namespace {

Status ValidateOptions(const UnscentedKalmanFilterOptions& options) {
  if (!options.transition || !options.measurement) {
    return Status::InvalidArgument(
        "UKF requires transition and measurement functions");
  }
  const size_t n = options.initial_state.size();
  if (n == 0) return Status::InvalidArgument("empty initial state");
  if (options.process_noise.rows() != n || options.process_noise.cols() != n) {
    return Status::InvalidArgument("process noise must be n x n");
  }
  const size_t m = options.measurement_noise.rows();
  if (m == 0 || options.measurement_noise.cols() != m) {
    return Status::InvalidArgument("measurement noise must be m x m");
  }
  if (options.initial_covariance.rows() != n ||
      options.initial_covariance.cols() != n) {
    return Status::InvalidArgument("initial covariance must be n x n");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  return Status::OK();
}

}  // namespace

UnscentedKalmanFilter::UnscentedKalmanFilter(
    UnscentedKalmanFilterOptions options)
    : options_(std::move(options)), x_(options_.initial_state),
      p_(options_.initial_covariance) {
  const double n = static_cast<double>(x_.size());
  lambda_ = options_.alpha * options_.alpha * (n + options_.kappa) - n;
  const size_t count = 2 * x_.size() + 1;
  mean_weights_.resize(count);
  cov_weights_.resize(count);
  mean_weights_[0] = lambda_ / (n + lambda_);
  cov_weights_[0] = mean_weights_[0] +
                    (1.0 - options_.alpha * options_.alpha + options_.beta);
  for (size_t i = 1; i < count; ++i) {
    mean_weights_[i] = 1.0 / (2.0 * (n + lambda_));
    cov_weights_[i] = mean_weights_[i];
  }
}

Result<UnscentedKalmanFilter> UnscentedKalmanFilter::Create(
    const UnscentedKalmanFilterOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateOptions(options));
  return UnscentedKalmanFilter(options);
}

Result<std::vector<Vector>> UnscentedKalmanFilter::SigmaPoints() const {
  const size_t n = x_.size();
  const double scale = static_cast<double>(n) + lambda_;
  Matrix scaled = p_ * scale;
  auto chol_or = CholeskyDecomposition::Compute(scaled);
  if (!chol_or.ok()) {
    return Status::FailedPrecondition(
        "covariance lost positive definiteness: " +
        chol_or.status().message());
  }
  const Matrix& l = chol_or.value().L();
  std::vector<Vector> points;
  points.reserve(2 * n + 1);
  points.push_back(x_);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(x_ + l.Col(i));
  }
  for (size_t i = 0; i < n; ++i) {
    points.push_back(x_ - l.Col(i));
  }
  return points;
}

Status UnscentedKalmanFilter::Predict() {
  auto points_or = SigmaPoints();
  if (!points_or.ok()) return points_or.status();
  std::vector<Vector>& points = points_or.value();
  for (Vector& point : points) {
    point = options_.transition(point, step_);
    if (point.size() != x_.size()) {
      return Status::Internal("transition changed the state dimension");
    }
  }
  Vector mean(x_.size());
  for (size_t i = 0; i < points.size(); ++i) {
    mean += points[i] * mean_weights_[i];
  }
  Matrix cov = options_.process_noise;
  for (size_t i = 0; i < points.size(); ++i) {
    const Vector d = points[i] - mean;
    cov += d.Outer(d) * cov_weights_[i];
  }
  cov.Symmetrize();
  x_ = mean;
  p_ = cov;
  ++step_;
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("UKF state diverged to non-finite values");
  }
  return Status::OK();
}

Vector UnscentedKalmanFilter::PredictedMeasurement() const {
  return options_.measurement(x_);
}

Status UnscentedKalmanFilter::Correct(const Vector& z) {
  const size_t m = options_.measurement_noise.rows();
  if (z.size() != m) {
    return Status::InvalidArgument(
        StrFormat("measurement size %zu, expected %zu", z.size(), m));
  }
  auto points_or = SigmaPoints();
  if (!points_or.ok()) return points_or.status();
  const std::vector<Vector>& points = points_or.value();

  std::vector<Vector> projected;
  projected.reserve(points.size());
  for (const Vector& point : points) {
    Vector zp = options_.measurement(point);
    if (zp.size() != m) {
      return Status::Internal("measurement function has wrong output size");
    }
    projected.push_back(std::move(zp));
  }
  Vector z_mean(m);
  for (size_t i = 0; i < projected.size(); ++i) {
    z_mean += projected[i] * mean_weights_[i];
  }
  Matrix s = options_.measurement_noise;
  Matrix cross(x_.size(), m);
  for (size_t i = 0; i < projected.size(); ++i) {
    const Vector dz = projected[i] - z_mean;
    const Vector dx = points[i] - x_;
    s += dz.Outer(dz) * cov_weights_[i];
    cross += dx.Outer(dz) * cov_weights_[i];
  }
  s.Symmetrize();
  auto s_inv_or = Inverse(s);
  if (!s_inv_or.ok()) {
    return Status::FailedPrecondition(
        "innovation covariance not invertible: " +
        s_inv_or.status().message());
  }
  const Matrix gain = cross * s_inv_or.value();
  x_ += gain * (z - z_mean);
  p_ -= gain * s * gain.Transpose();
  p_.Symmetrize();
  if (!x_.IsFinite() || !p_.IsFinite()) {
    return Status::Internal("UKF state diverged to non-finite values");
  }
  return Status::OK();
}

bool UnscentedKalmanFilter::StateEquals(
    const UnscentedKalmanFilter& other) const {
  if (step_ != other.step_ || x_.size() != other.x_.size()) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] != other.x_[i]) return false;
  }
  if (p_.rows() != other.p_.rows()) return false;
  for (size_t r = 0; r < p_.rows(); ++r) {
    for (size_t c = 0; c < p_.cols(); ++c) {
      if (p_(r, c) != other.p_(r, c)) return false;
    }
  }
  return true;
}

void UnscentedKalmanFilter::Reset() {
  x_ = options_.initial_state;
  p_ = options_.initial_covariance;
  step_ = 0;
}

}  // namespace dkf
