#include "filter/noise_estimation.h"

#include <algorithm>

namespace dkf {

Result<AdaptiveNoiseEstimator> AdaptiveNoiseEstimator::Create(
    const AdaptiveNoiseOptions& options) {
  if (options.window == 0) {
    return Status::InvalidArgument("window must be positive");
  }
  if (options.min_samples == 0 || options.min_samples > options.window) {
    return Status::InvalidArgument(
        "min_samples must be in [1, window]");
  }
  if (options.floor <= 0.0) {
    return Status::InvalidArgument("variance floor must be positive");
  }
  return AdaptiveNoiseEstimator(options);
}

void AdaptiveNoiseEstimator::Observe(const Vector& innovation,
                                     const Matrix& projected_covariance) {
  innovations_.push_back(innovation);
  projected_.push_back(projected_covariance);
  while (innovations_.size() > options_.window) {
    innovations_.pop_front();
    projected_.pop_front();
  }
}

Result<Matrix> AdaptiveNoiseEstimator::EstimateMeasurementNoise() const {
  if (innovations_.size() < options_.min_samples) {
    return Status::FailedPrecondition("not enough innovations to adapt");
  }
  const size_t m = innovations_.front().size();
  const double count = static_cast<double>(innovations_.size());

  // Sample second moment of the innovations (mean is theoretically zero for
  // a consistent filter; using the raw second moment also captures bias
  // caused by an over-confident R).
  Matrix moment(m, m);
  for (const Vector& y : innovations_) {
    moment += y.Outer(y);
  }
  moment = moment * (1.0 / count);

  // Average of the projected a-priori covariances H P^- H^T.
  Matrix projected(m, m);
  for (const Matrix& hph : projected_) projected += hph;
  projected = projected * (1.0 / count);

  Matrix estimate = moment - projected;
  estimate.Symmetrize();
  // Clamp diagonals to the floor; zero out any row/col whose diagonal was
  // clamped hard negative to keep the matrix PSD-ish.
  for (size_t i = 0; i < m; ++i) {
    estimate(i, i) = std::max(estimate(i, i), options_.floor);
  }
  return estimate;
}

Status AdaptiveNoiseEstimator::Apply(KalmanFilter* filter) const {
  auto estimate_or = EstimateMeasurementNoise();
  if (!estimate_or.ok()) return estimate_or.status();
  return filter->set_measurement_noise(estimate_or.value());
}

}  // namespace dkf
