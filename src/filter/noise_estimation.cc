#include "filter/noise_estimation.h"

#include <algorithm>

namespace dkf {

Result<AdaptiveNoiseEstimator> AdaptiveNoiseEstimator::Create(
    const AdaptiveNoiseOptions& options) {
  if (options.window == 0) {
    return Status::InvalidArgument("window must be positive");
  }
  if (options.min_samples == 0 || options.min_samples > options.window) {
    return Status::InvalidArgument(
        "min_samples must be in [1, window]");
  }
  if (options.floor <= 0.0) {
    return Status::InvalidArgument("variance floor must be positive");
  }
  return AdaptiveNoiseEstimator(options);
}

void AdaptiveNoiseEstimator::Observe(const Vector& innovation,
                                     const Matrix& projected_covariance) {
  const size_t m = innovation.size();
  if (moment_.rows() != m) {
    moment_ = Matrix(m, m);
    projected_ = Matrix(m, m);
    weight_ = 0.0;
    observed_ = 0;
  }
  const double alpha = 1.0 - 1.0 / static_cast<double>(options_.window);
  // Bias-corrected EWMA: keep un-normalized sums plus their total weight,
  // so early estimates are true weighted means instead of zero-biased.
  moment_ = moment_ * alpha + innovation.Outer(innovation) * (1.0 - alpha);
  projected_ = projected_ * alpha + projected_covariance * (1.0 - alpha);
  weight_ = weight_ * alpha + (1.0 - alpha);
  ++observed_;
}

Result<Matrix> AdaptiveNoiseEstimator::EstimateMeasurementNoise() const {
  if (observed_ < options_.min_samples) {
    return Status::FailedPrecondition("not enough innovations to adapt");
  }
  const double scale = 1.0 / weight_;
  Matrix estimate = (moment_ - projected_) * scale;
  estimate.Symmetrize();
  for (size_t i = 0; i < estimate.rows(); ++i) {
    estimate(i, i) = std::max(estimate(i, i), options_.floor);
  }
  return estimate;
}

Status AdaptiveNoiseEstimator::Apply(KalmanFilter* filter) const {
  auto estimate_or = EstimateMeasurementNoise();
  if (!estimate_or.ok()) return estimate_or.status();
  return filter->set_measurement_noise(estimate_or.value());
}

}  // namespace dkf
