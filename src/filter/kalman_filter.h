#ifndef DKF_FILTER_KALMAN_FILTER_H_
#define DKF_FILTER_KALMAN_FILTER_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dkf {

/// Full configuration of a discrete Kalman filter
///   x_{k+1} = phi_k x_k + w_k,   w ~ N(0, Q)
///   z_k     = H x_k + v_k,       v ~ N(0, R)
/// (paper eqs. 3-12). `transition_fn`, when set, supplies a time-varying
/// phi_k (needed by the sinusoidal model of §4.2); otherwise the constant
/// `transition` is used.
struct KalmanFilterOptions {
  /// Constant state-transition matrix phi (n x n). Ignored when
  /// transition_fn is set.
  Matrix transition;

  /// Optional time-varying transition: called with the *current* step index
  /// k to produce the matrix relating x_k to x_{k+1}. Must be
  /// deterministic — the dual-filter protocol relies on the mirror filter
  /// reproducing the server filter bit-for-bit.
  std::function<Matrix(int64_t)> transition_fn;

  /// Measurement matrix H (m x n).
  Matrix measurement;

  /// Process-noise covariance Q (n x n).
  Matrix process_noise;

  /// Measurement-noise covariance R (m x m).
  Matrix measurement_noise;

  /// Initial state estimate x_0 (n).
  Vector initial_state;

  /// Initial error covariance P_0 (n x n).
  Matrix initial_covariance;
};

/// Discrete Kalman filter over double-valued states.
///
/// Usage per tick: call Predict() once (propagates the estimate through
/// phi_k and inflates the covariance by Q), read PredictedMeasurement(),
/// and call Correct(z) only when a measurement is available. Skipping
/// Correct leaves the filter coasting on the model — exactly the behaviour
/// the DKF protocol exploits when an update is suppressed.
class KalmanFilter {
 public:
  /// Validates dimensions and builds the filter. Errors with
  /// InvalidArgument when shapes are inconsistent.
  static Result<KalmanFilter> Create(const KalmanFilterOptions& options);

  /// Time update: x <- phi_k x, P <- phi_k P phi_k^T + Q; advances the step
  /// counter. After this call state() is the a-priori estimate for the new
  /// step.
  Status Predict();

  /// The measurement the filter expects at the current step: H x.
  Vector PredictedMeasurement() const;

  /// Measurement update with observation z (the correction step, eq. 8-12;
  /// the covariance update uses the Joseph form for numerical robustness).
  /// Errors when the innovation covariance is not invertible.
  Status Correct(const Vector& z);

  /// Current state estimate (a-priori right after Predict, a-posteriori
  /// right after Correct).
  const Vector& state() const { return x_; }

  /// Current error covariance.
  const Matrix& covariance() const { return p_; }

  /// Number of Predict() calls so far.
  int64_t step() const { return step_; }

  size_t state_dim() const { return x_.size(); }
  size_t measurement_dim() const { return options_.measurement.rows(); }

  /// Innovation z - Hx from the most recent Correct (empty before the
  /// first correction).
  const Vector& last_innovation() const { return last_innovation_; }

  /// Innovation covariance S = H P H^T + R at the current state.
  Matrix InnovationCovariance() const;

  /// Normalized innovation squared y^T S^{-1} y for measurement z — the
  /// chi-squared consistency statistic used by outlier detection, model
  /// switching, and adaptive sampling.
  Result<double> Nis(const Vector& z) const;

  /// Replaces Q (used by the adaptive noise estimator and the smoothing
  /// factor F knob). Must keep the (n x n) shape.
  Status set_process_noise(const Matrix& q);

  /// Replaces R. Must keep the (m x m) shape.
  Status set_measurement_noise(const Matrix& r);

  const Matrix& process_noise() const { return options_.process_noise; }
  const Matrix& measurement_noise() const {
    return options_.measurement_noise;
  }

  /// Resets state, covariance, and step counter to the initial values.
  void Reset();

  /// True when the two filters have bit-identical state, covariance, and
  /// step counter — the mirror-consistency predicate of the DKF protocol.
  bool StateEquals(const KalmanFilter& other) const;

 private:
  explicit KalmanFilter(KalmanFilterOptions options);

  Matrix TransitionAt(int64_t step) const;

  KalmanFilterOptions options_;
  Vector x_;
  Matrix p_;
  int64_t step_ = 0;
  Vector last_innovation_;
};

}  // namespace dkf

#endif  // DKF_FILTER_KALMAN_FILTER_H_
