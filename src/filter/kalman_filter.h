#ifndef DKF_FILTER_KALMAN_FILTER_H_
#define DKF_FILTER_KALMAN_FILTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "obs/trace_sink.h"

namespace dkf {

/// Full configuration of a discrete Kalman filter
///   x_{k+1} = phi_k x_k + w_k,   w ~ N(0, Q)
///   z_k     = H x_k + v_k,       v ~ N(0, R)
/// (paper eqs. 3-12). `transition_fn`, when set, supplies a time-varying
/// phi_k (needed by the sinusoidal model of §4.2); otherwise the constant
/// `transition` is used.
struct KalmanFilterOptions {
  /// Constant state-transition matrix phi (n x n). Ignored when
  /// transition_fn is set.
  Matrix transition;

  /// Optional time-varying transition: called with the *current* step index
  /// k to produce the matrix relating x_k to x_{k+1}. Must be
  /// deterministic — the dual-filter protocol relies on the mirror filter
  /// reproducing the server filter bit-for-bit.
  std::function<Matrix(int64_t)> transition_fn;

  /// Measurement matrix H (m x n).
  Matrix measurement;

  /// Process-noise covariance Q (n x n).
  Matrix process_noise;

  /// Measurement-noise covariance R (m x m).
  Matrix measurement_noise;

  /// Initial state estimate x_0 (n).
  Vector initial_state;

  /// Initial error covariance P_0 (n x n).
  Matrix initial_covariance;

  /// Enables the steady-state fast path: once the post-Correct covariance
  /// settles into a repeating cycle under the regular Predict/Correct
  /// cadence (a time-invariant model driven at every tick reaches the
  /// Riccati fixed point — or an exact 1-ulp limit cycle of period 2 —
  /// after a few dozen corrections), the filter freezes the gain and
  /// covariance cycle and skips the Riccati/Joseph arithmetic entirely.
  /// With the default exact tolerance this is *bit-identical* to the slow
  /// path — the frozen values are a floating-point fixed cycle, so
  /// recomputing them would reproduce them exactly — which preserves the
  /// dual-link mirror contract. Disarmed automatically by coasting ticks,
  /// noise reconfiguration, and Reset; never armed for time-varying
  /// transitions. See docs/perf.md.
  bool steady_state_fast_path = true;

  /// Covariance convergence tolerance for arming the fast path, compared
  /// against the max-abs elementwise delta of post-Correct covariances one
  /// (period-1) or two (period-2) corrections apart. The default 0.0
  /// requires an exact floating-point fixed cycle (bit-exactness guarantee
  /// above). A small positive value arms earlier — and on models whose
  /// covariance never repeats exactly (high-order polynomial models) — at
  /// the cost of freezing a gain that differs from the converging one in
  /// the last bits; both ends of a dual link still stay in lock-step
  /// because they run identical code on identical inputs.
  double steady_state_tolerance = 0.0;
};

/// Discrete Kalman filter over double-valued states.
///
/// Usage per tick: call Predict() once (propagates the estimate through
/// phi_k and inflates the covariance by Q), read PredictedMeasurement(),
/// and call Correct(z) only when a measurement is available. Skipping
/// Correct leaves the filter coasting on the model — exactly the behaviour
/// the DKF protocol exploits when an update is suppressed.
///
/// The per-tick arithmetic runs against a preallocated per-filter scratch
/// workspace via the in-place kernels in linalg/kernels.h, so for state
/// dimensions <= 6 a Predict+Correct cycle performs zero heap allocations
/// (see docs/perf.md and bench/bench_filter_hotpath.cc).
class KalmanFilter {
 public:
  /// Validates dimensions and builds the filter. Errors with
  /// InvalidArgument when shapes are inconsistent.
  static Result<KalmanFilter> Create(const KalmanFilterOptions& options);

  /// Time update: x <- phi_k x, P <- phi_k P phi_k^T + Q; advances the step
  /// counter. After this call state() is the a-priori estimate for the new
  /// step.
  Status Predict();

  /// The measurement the filter expects at the current step: H x.
  Vector PredictedMeasurement() const;

  /// Measurement update with observation z (the correction step, eq. 8-12;
  /// the covariance update uses the Joseph form for numerical robustness).
  /// The gain K = P H^T S^{-1} is computed by LU-factoring S once and
  /// solving S K^T = H P — no explicit inverse. Errors when the innovation
  /// covariance is not invertible.
  Status Correct(const Vector& z);

  /// Current state estimate (a-priori right after Predict, a-posteriori
  /// right after Correct).
  const Vector& state() const { return x_; }

  /// Current error covariance.
  const Matrix& covariance() const { return p_; }

  /// Number of Predict() calls so far.
  int64_t step() const { return step_; }

  size_t state_dim() const { return x_.size(); }
  size_t measurement_dim() const { return options_.measurement.rows(); }

  /// Innovation z - Hx from the most recent Correct (empty before the
  /// first correction).
  const Vector& last_innovation() const { return last_innovation_; }

  /// Innovation covariance S = H P H^T + R at the current state.
  Matrix InnovationCovariance() const;

  /// Normalized innovation squared y^T S^{-1} y for measurement z — the
  /// chi-squared consistency statistic used by outlier detection, model
  /// switching, and adaptive sampling. Factor-and-solve, no inverse.
  Result<double> Nis(const Vector& z) const;

  /// Replaces Q (used by the adaptive noise estimator and the smoothing
  /// factor F knob). Must keep the (n x n) shape. Disarms the steady-state
  /// fast path.
  Status set_process_noise(const Matrix& q);

  /// Replaces R. Must keep the (m x m) shape. Disarms the steady-state
  /// fast path.
  Status set_measurement_noise(const Matrix& r);

  const Matrix& process_noise() const { return options_.process_noise; }
  const Matrix& measurement_noise() const {
    return options_.measurement_noise;
  }

  /// True while the steady-state fast path is engaged: the covariance has
  /// converged and Predict/Correct run with the frozen gain and covariance
  /// cycle, skipping the Riccati/Joseph arithmetic.
  bool steady_state_armed() const { return ss_mode_ == SsMode::kArmed; }

  /// Resets state, covariance, and step counter to the initial values.
  void Reset();

  /// Overwrites state, covariance, and step counter with an externally
  /// supplied snapshot — the receiving half of the dual-link full-state
  /// resync. The snapshot is taken bit-exact (no arithmetic touches it),
  /// the filter is placed in the post-Predict phase (a resync carries the
  /// peer's a-priori state), and the steady-state fast path is disarmed.
  /// Errors when the dimensions do not match this filter's model.
  Status ImportState(const Vector& x, const Matrix& p, int64_t step);

  /// True when the two filters have bit-identical state, covariance, and
  /// step counter — the mirror-consistency predicate of the DKF protocol.
  bool StateEquals(const KalmanFilter& other) const;

  /// Everything that distinguishes a running filter from a freshly
  /// constructed one with the same model recipe: estimate, covariance,
  /// step/phase counters, the current (possibly reconfigured) Q and R, and
  /// the complete steady-state fast-path bookkeeping including the frozen
  /// gain/covariance cycle. Restoring it via ImportFullState continues the
  /// filter bit-identically — unlike the resync-oriented ImportState, which
  /// deliberately disarms the fast path. Scratch is excluded: it never
  /// carries state across calls. Used by src/checkpoint/.
  struct FullState {
    Vector x;
    Matrix p;
    int64_t step = 0;
    Vector last_innovation;
    Matrix process_noise;
    Matrix measurement_noise;
    uint8_t phase = 0;    // Phase enum value
    uint8_t ss_mode = 0;  // SsMode enum value
    int32_t ss_streak1 = 0;
    int32_t ss_streak2 = 0;
    int64_t predicts_since_correct = 0;
    int32_t ss_have_prev = 0;
    Matrix ss_prev_post[2];
    Matrix ss_prev_gain;
    int32_t ss_period = 1;
    int32_t ss_pending_priors = 0;
    int32_t ss_capture_idx = 0;
    int32_t ss_idx = 0;
    Matrix ss_gain[2];
    Matrix ss_prior_p[2];
    Matrix ss_post_p[2];
  };

  FullState ExportFullState() const;

  /// Overwrites the full running state. Errors (leaving the filter
  /// untouched) when any dimension disagrees with this filter's model or
  /// an enum value is out of range. Q/R are assigned directly — this is a
  /// state restore, not a reconfiguration, so the fast path is *not*
  /// disarmed.
  Status ImportFullState(const FullState& full);

  /// Wires an observability sink: fast-path freeze/disarm transitions are
  /// emitted as trace events tagged (source_id, actor). Pass nullptr to
  /// unwire. Observation only — never alters filter arithmetic.
  void set_trace(TraceSink* sink, int32_t source_id, TraceActor actor) {
    obs_sink_ = sink;
    obs_source_ = source_id;
    obs_actor_ = actor;
  }

  /// The transition matrix this filter itself would use at `step` — the
  /// batched fleet engine (src/fleet/) asserts its cached per-group
  /// coefficients are these exact bits before trusting them.
  const Matrix& TransitionForStep(int64_t step) { return TransitionAt(step); }

 private:
  explicit KalmanFilter(KalmanFilterOptions options);

  /// The transition for `step`. Returns a reference to the constant matrix
  /// when no transition_fn is set (no copy); otherwise evaluates the
  /// callback into scratch and returns a reference to it.
  const Matrix& TransitionAt(int64_t step);

  /// Where the filter sits in the Predict/Correct cadence — the guard the
  /// steady-state fast path uses to detect coasting (Predict,Predict) and
  /// other cadence breaks that move the covariance off its fixed cycle.
  enum class Phase { kInitial, kPredicted, kCorrected };

  /// Steady-state fast-path mode: tracking convergence, waiting for the
  /// next Predict(s) to capture the a-priori covariance cycle, or armed.
  enum class SsMode { kTracking, kArmPending, kArmed };

  /// Leaves the fast path and restarts convergence tracking.
  void DisarmSteadyState();

  /// Preallocated per-filter workspace for the in-place kernels. Sized at
  /// construction; kernels reshape entries via AssignZero, which reuses
  /// capacity, so nothing here allocates after construction (and for
  /// n <= 6 nothing allocates at all — the storage is inline).
  struct Scratch {
    Matrix phi;      // transition_fn result (time-varying models only)
    Matrix nn1;      // n x n temporaries
    Matrix nn2;
    Matrix nn3;
    Matrix nm1;      // P H^T
    Matrix nm2;      // K R
    Matrix k;        // gain (n x m)
    Matrix mm;       // S, LU-factored in place
    Vector mv1;      // H x / LU solve output
    Vector mv2;      // innovation
    Vector mv3;      // LU rhs
    Vector nv1;      // phi x / K y
    std::vector<size_t> pivots;
  };

  KalmanFilterOptions options_;
  Vector x_;
  Matrix p_;
  int64_t step_ = 0;

  // Observability (docs/observability.md): nullable sink + the identity
  // stamped on emitted events. Copied with the filter; owners re-wire
  // clones explicitly.
  TraceSink* obs_sink_ = nullptr;
  int32_t obs_source_ = 0;
  TraceActor obs_actor_ = TraceActor::kSourceFilter;
  Vector last_innovation_;
  Matrix identity_;  // I_n, hoisted out of the Joseph update

  // InnovationCovariance() and Nis() are logically const but share the
  // workspace; filters are single-threaded objects (one per source/shard).
  mutable Scratch scratch_;

  // Steady-state fast-path bookkeeping. The frozen cycle has period 1
  // (true Riccati fixed point) or 2 (the common exact 1-ulp limit cycle);
  // arrays are indexed by phase within the cycle.
  Phase phase_ = Phase::kInitial;
  SsMode ss_mode_ = SsMode::kTracking;
  int ss_streak1_ = 0;               // consecutive Corrects with P == P(-1)
  int ss_streak2_ = 0;               // consecutive Corrects with P == P(-2)
  int64_t predicts_since_correct_ = 0;
  int ss_have_prev_ = 0;             // how many previous post-P are valid
  Matrix ss_prev_post_[2];           // post-Correct P one/two Corrects ago
  Matrix ss_prev_gain_;              // gain of the previous Correct
  int ss_period_ = 1;                // cycle length while pending/armed
  int ss_pending_priors_ = 0;        // priors still to capture while pending
  int ss_capture_idx_ = 0;           // next prior slot to capture
  int ss_idx_ = 0;                   // cycle phase of the next Correct
  Matrix ss_gain_[2];                // frozen gains while armed
  Matrix ss_prior_p_[2];             // frozen a-priori covariance cycle
  Matrix ss_post_p_[2];              // frozen a-posteriori covariance cycle
};

}  // namespace dkf

#endif  // DKF_FILTER_KALMAN_FILTER_H_
