#ifndef DKF_METRICS_METRICS_H_
#define DKF_METRICS_METRICS_H_

#include <cstdint>

#include "common/result.h"
#include "common/time_series.h"

namespace dkf {

/// Streaming accumulator for the paper's error metrics (§5): average error
/// value, plus max and RMSE for completeness.
class ErrorAccumulator {
 public:
  void Add(double error);

  int64_t count() const { return count_; }
  /// Sum(e_k)/n — the paper's "average error value".
  double mean() const;
  double max() const { return max_; }
  double rmse() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double max_ = 0.0;
};

/// Mean absolute difference between two equal-length scalar series — the
/// "adherence" measure behind Figure 10 (how closely KF-smoothed data
/// matches the moving average / the raw stream).
Result<double> SeriesMeanAbsDiff(const TimeSeries& a, const TimeSeries& b);

/// Largest absolute difference between two equal-length scalar series.
Result<double> SeriesMaxAbsDiff(const TimeSeries& a, const TimeSeries& b);

}  // namespace dkf

#endif  // DKF_METRICS_METRICS_H_
