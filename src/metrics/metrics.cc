#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dkf {

void ErrorAccumulator::Add(double error) {
  ++count_;
  sum_ += error;
  sum_sq_ += error * error;
  max_ = std::max(max_, error);
}

double ErrorAccumulator::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double ErrorAccumulator::rmse() const {
  return count_ == 0 ? 0.0
                     : std::sqrt(sum_sq_ / static_cast<double>(count_));
}

namespace {

Status CheckComparable(const TimeSeries& a, const TimeSeries& b) {
  if (a.width() != 1 || b.width() != 1) {
    return Status::InvalidArgument("series comparison expects width-1 series");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        StrFormat("series sizes differ: %zu vs %zu", a.size(), b.size()));
  }
  if (a.empty()) {
    return Status::InvalidArgument("cannot compare empty series");
  }
  return Status::OK();
}

}  // namespace

Result<double> SeriesMeanAbsDiff(const TimeSeries& a, const TimeSeries& b) {
  DKF_RETURN_IF_ERROR(CheckComparable(a, b));
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(a.value(i) - b.value(i));
  }
  return sum / static_cast<double>(a.size());
}

Result<double> SeriesMaxAbsDiff(const TimeSeries& a, const TimeSeries& b) {
  DKF_RETURN_IF_ERROR(CheckComparable(a, b));
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a.value(i) - b.value(i)));
  }
  return best;
}

}  // namespace dkf
