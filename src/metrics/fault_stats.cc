#include "metrics/fault_stats.h"

#include <algorithm>

namespace dkf {

void ProtocolFaultStats::MergeFrom(const ProtocolFaultStats& other) {
  divergence_events += other.divergence_events;
  resyncs_sent += other.resyncs_sent;
  heartbeats_sent += other.heartbeats_sent;
  ambiguous_acks += other.ambiguous_acks;
  ticks_diverged += other.ticks_diverged;
  max_recovery_ticks = std::max(max_recovery_ticks, other.max_recovery_ticks);
  resyncs_applied += other.resyncs_applied;
  heartbeats_received += other.heartbeats_received;
  rejected_stale += other.rejected_stale;
  rejected_corrupt += other.rejected_corrupt;
  sequence_gaps += other.sequence_gaps;
  degraded_ticks += other.degraded_ticks;
}

double ProtocolFaultStats::MeanRecoveryTicks() const {
  if (divergence_events == 0) return 0.0;
  return static_cast<double>(ticks_diverged) /
         static_cast<double>(divergence_events);
}

}  // namespace dkf
