#ifndef DKF_METRICS_REPORT_H_
#define DKF_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "metrics/experiment.h"

namespace dkf {

/// Persists experiment rows as CSV with the header
/// `predictor,delta,ticks,updates,update_percentage,avg_error,max_error,
/// rmse` — the interchange format for plotting the reproduced figures
/// outside the repo.
Status WriteExperimentRowsCsv(const std::vector<ExperimentRow>& rows,
                              const std::string& path);

/// Reads rows written by WriteExperimentRowsCsv.
Result<std::vector<ExperimentRow>> ReadExperimentRowsCsv(
    const std::string& path);

}  // namespace dkf

#endif  // DKF_METRICS_REPORT_H_
