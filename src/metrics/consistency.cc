#include "metrics/consistency.h"

namespace dkf {

namespace {

// 95% chi-squared quantiles for m = 1..4 (the library's measurement
// dimensions are tiny).
constexpr double kChi2Q95[] = {3.841, 5.991, 7.815, 9.488};

}  // namespace

Result<NisConsistency> EvaluateNisConsistency(KalmanFilter filter,
                                              const TimeSeries& series,
                                              size_t warmup) {
  if (series.width() != filter.measurement_dim()) {
    return Status::InvalidArgument(
        "series width does not match the filter's measurement dimension");
  }
  if (series.size() <= warmup) {
    return Status::InvalidArgument("series shorter than the warmup");
  }
  const size_t m = filter.measurement_dim();
  if (m == 0 || m > 4) {
    return Status::InvalidArgument("supported measurement dims: 1..4");
  }
  const double threshold = kChi2Q95[m - 1];

  NisConsistency result;
  double sum = 0.0;
  int64_t exceed = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    DKF_RETURN_IF_ERROR(filter.Predict());
    const Vector z(series.Row(i));
    if (i >= warmup) {
      auto nis_or = filter.Nis(z);
      if (!nis_or.ok()) return nis_or.status();
      sum += nis_or.value();
      if (nis_or.value() > threshold) ++exceed;
      ++result.samples;
    }
    DKF_RETURN_IF_ERROR(filter.Correct(z));
  }
  result.mean_nis = sum / static_cast<double>(result.samples);
  result.exceed_95_fraction =
      static_cast<double>(exceed) / static_cast<double>(result.samples);
  return result;
}

}  // namespace dkf
