#include "metrics/report.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace dkf {

namespace {

const char* const kHeader[] = {"predictor", "delta",     "ticks",
                               "updates",   "update_percentage",
                               "avg_error", "max_error", "rmse"};
constexpr size_t kColumns = sizeof(kHeader) / sizeof(kHeader[0]);

}  // namespace

Status WriteExperimentRowsCsv(const std::vector<ExperimentRow>& rows,
                              const std::string& path) {
  auto writer_or = CsvWriter::Open(path);
  if (!writer_or.ok()) return writer_or.status();
  CsvWriter writer = std::move(writer_or).value();
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      std::vector<std::string>(kHeader, kHeader + kColumns)));
  for (const ExperimentRow& row : rows) {
    DKF_RETURN_IF_ERROR(writer.WriteRow(
        {row.predictor, DoubleToString(row.delta),
         StrFormat("%lld", static_cast<long long>(row.ticks)),
         StrFormat("%lld", static_cast<long long>(row.updates)),
         DoubleToString(row.update_percentage),
         DoubleToString(row.avg_error), DoubleToString(row.max_error),
         DoubleToString(row.rmse)}));
  }
  return writer.Close();
}

Result<std::vector<ExperimentRow>> ReadExperimentRowsCsv(
    const std::string& path) {
  auto rows_or = ReadCsvFile(path);
  if (!rows_or.ok()) return rows_or.status();
  const auto& raw = rows_or.value();
  if (raw.empty() || raw[0].size() != kColumns || raw[0][0] != kHeader[0]) {
    return Status::InvalidArgument("missing experiment-rows header");
  }
  std::vector<ExperimentRow> rows;
  rows.reserve(raw.size() - 1);
  for (size_t i = 1; i < raw.size(); ++i) {
    if (raw[i].size() != kColumns) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu cells, expected %zu", i, raw[i].size(),
                    kColumns));
    }
    ExperimentRow row;
    row.predictor = raw[i][0];
    long long ticks = 0;
    long long updates = 0;
    if (!ParseDouble(raw[i][1], &row.delta) ||
        !ParseInt64(raw[i][2], &ticks) || !ParseInt64(raw[i][3], &updates) ||
        !ParseDouble(raw[i][4], &row.update_percentage) ||
        !ParseDouble(raw[i][5], &row.avg_error) ||
        !ParseDouble(raw[i][6], &row.max_error) ||
        !ParseDouble(raw[i][7], &row.rmse)) {
      return Status::InvalidArgument(
          StrFormat("malformed numeric cell in row %zu", i));
    }
    row.ticks = ticks;
    row.updates = updates;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace dkf
