#ifndef DKF_METRICS_CONSISTENCY_H_
#define DKF_METRICS_CONSISTENCY_H_

#include <cstdint>

#include "common/result.h"
#include "common/time_series.h"
#include "filter/kalman_filter.h"

namespace dkf {

/// Result of a normalized-innovation-squared consistency check.
struct NisConsistency {
  /// Mean NIS across the run. For a well-specified filter this is a
  /// chi-squared mean: expected value = measurement dimension m.
  double mean_nis = 0.0;
  int64_t samples = 0;
  /// Fraction of ticks whose NIS exceeded the 95% chi-squared quantile
  /// (3.84 for m = 1). ~0.05 for a consistent filter; >> 0.05 when R is
  /// optimistic, << 0.05 when pessimistic.
  double exceed_95_fraction = 0.0;
};

/// Runs `filter` over `series` (predict + correct every tick, skipping a
/// configurable warmup) and accumulates the NIS statistics — the standard
/// diagnostic for whether Q/R match the stream, and the measurable basis
/// for the paper's §6 concern about unknown noise statistics.
Result<NisConsistency> EvaluateNisConsistency(KalmanFilter filter,
                                              const TimeSeries& series,
                                              size_t warmup = 20);

}  // namespace dkf

#endif  // DKF_METRICS_CONSISTENCY_H_
