#ifndef DKF_METRICS_FAULT_STATS_H_
#define DKF_METRICS_FAULT_STATS_H_

#include <cstdint>

namespace dkf {

/// Counters for the hardened dual-link protocol's fault handling: how
/// often the mirror/server pair diverged, how the resync machinery
/// recovered, and what the server rejected at the door. One instance is
/// kept per SourceNode (source-side fields) and per ServerNode
/// (server-side fields); StreamManager and the sharded runtime merge
/// them into one fleet-wide view (see runtime/stats_merge.h and
/// docs/protocol.md §6).
struct ProtocolFaultStats {
  // ---- source side -------------------------------------------------
  /// Times a source entered the pending-resync state (an update's ACK
  /// came back ambiguous, so the mirror could have diverged from KF_s).
  int64_t divergence_events = 0;
  /// Full-state resync messages transmitted.
  int64_t resyncs_sent = 0;
  /// Heartbeats transmitted (divergence-time bound, see ProtocolOptions).
  int64_t heartbeats_sent = 0;
  /// Sends whose link-layer ACK was ambiguous (lost ACK, in-flight
  /// delay, outage, or corruption — the sender cannot tell which).
  int64_t ambiguous_acks = 0;
  /// Ticks a source ended still pending resync (suppression frozen).
  int64_t ticks_diverged = 0;
  /// Longest single divergence episode, in ticks from detection to the
  /// ACK that healed it.
  int64_t max_recovery_ticks = 0;

  // ---- server side -------------------------------------------------
  /// Resync messages accepted and applied (state overwrite + replay).
  int64_t resyncs_applied = 0;
  /// Heartbeats accepted (liveness refreshed).
  int64_t heartbeats_received = 0;
  /// Messages rejected as stale or duplicate (sequence number not newer
  /// than the last applied one, or a measurement from a past tick).
  int64_t rejected_stale = 0;
  /// Messages rejected by the checksum (payload corruption).
  int64_t rejected_corrupt = 0;
  /// Sequence-number gaps observed on accepted messages (messages the
  /// server can prove it never saw).
  int64_t sequence_gaps = 0;
  /// Source-ticks served degraded (each degraded source counts every
  /// tick it spends degraded).
  int64_t degraded_ticks = 0;

  /// Field-wise accumulation (max for max_recovery_ticks).
  void MergeFrom(const ProtocolFaultStats& other);

  /// Mean divergence-to-heal time in ticks; 0 when nothing diverged.
  double MeanRecoveryTicks() const;
};

}  // namespace dkf

#endif  // DKF_METRICS_FAULT_STATS_H_
