#include "metrics/experiment.h"

#include "core/dual_link.h"
#include "metrics/metrics.h"

namespace dkf {

Result<ExperimentRow> RunSuppressionExperiment(
    const TimeSeries& readings, const Predictor& prototype, double delta,
    const ExperimentOptions& options) {
  if (readings.width() != prototype.dim()) {
    return Status::InvalidArgument(
        "series width does not match the predictor dimension");
  }
  DualLinkOptions link_options;
  link_options.delta = delta;
  link_options.norm = options.trigger_norm;
  link_options.check_mirror_consistency = options.check_mirror_consistency;
  auto link_or = DualLink::Create(prototype, link_options);
  if (!link_or.ok()) return link_or.status();
  DualLink link = std::move(link_or).value();

  ErrorAccumulator errors;
  for (size_t i = 0; i < readings.size(); ++i) {
    const Vector reading(readings.Row(i));
    auto step_or = link.Step(reading);
    if (!step_or.ok()) return step_or.status();
    errors.Add(Deviation(step_or.value().server_value, reading,
                         options.error_norm));
  }

  ExperimentRow row;
  row.predictor = prototype.name();
  row.delta = delta;
  row.ticks = link.stats().ticks;
  row.updates = link.stats().updates_sent;
  row.update_percentage = link.stats().UpdatePercentage();
  row.avg_error = errors.mean();
  row.max_error = errors.max();
  row.rmse = errors.rmse();
  return row;
}

Result<std::vector<ExperimentRow>> RunSweep(
    const TimeSeries& readings,
    const std::vector<const Predictor*>& prototypes,
    const std::vector<double>& deltas, const ExperimentOptions& options) {
  if (prototypes.empty() || deltas.empty()) {
    return Status::InvalidArgument("empty sweep");
  }
  std::vector<ExperimentRow> rows;
  rows.reserve(prototypes.size() * deltas.size());
  for (double delta : deltas) {
    for (const Predictor* prototype : prototypes) {
      auto row_or =
          RunSuppressionExperiment(readings, *prototype, delta, options);
      if (!row_or.ok()) return row_or.status();
      rows.push_back(std::move(row_or).value());
    }
  }
  return rows;
}

}  // namespace dkf
