#ifndef DKF_METRICS_EXPERIMENT_H_
#define DKF_METRICS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "core/predictor.h"
#include "core/suppression.h"

namespace dkf {

/// One row of a figure-reproduction table: the outcome of running one
/// predictor over one dataset at one precision width.
struct ExperimentRow {
  std::string predictor;
  double delta = 0.0;
  int64_t ticks = 0;
  int64_t updates = 0;
  double update_percentage = 0.0;  ///< the paper's "% updates" metric
  double avg_error = 0.0;          ///< the paper's "average error value"
  double max_error = 0.0;
  double rmse = 0.0;
};

/// Knobs shared by every suppression experiment.
struct ExperimentOptions {
  /// Deviation norm of the suppression trigger. Default matches §5.1
  /// ("error in either X or Y ... greater than delta").
  DeviationNorm trigger_norm = DeviationNorm::kMaxAbs;
  /// Norm of the reported error metric. Default matches §5.1
  /// ("errors are measured as sum of errors in both coordinates").
  DeviationNorm error_norm = DeviationNorm::kL1;
  /// Verify mirror consistency on every tick (slower; used by tests).
  bool check_mirror_consistency = false;
};

/// Runs the dual-prediction protocol for `prototype` over `readings` at
/// one precision width, returning the paper's two metrics. This is the
/// engine behind every Figure 4/5/7/8/11/12-style bench.
Result<ExperimentRow> RunSuppressionExperiment(
    const TimeSeries& readings, const Predictor& prototype, double delta,
    const ExperimentOptions& options = ExperimentOptions());

/// Runs a full sweep: every predictor in `prototypes` at every delta.
/// Rows are ordered delta-major, predictor-minor.
Result<std::vector<ExperimentRow>> RunSweep(
    const TimeSeries& readings,
    const std::vector<const Predictor*>& prototypes,
    const std::vector<double>& deltas,
    const ExperimentOptions& options = ExperimentOptions());

}  // namespace dkf

#endif  // DKF_METRICS_EXPERIMENT_H_
