#ifndef DKF_CHECKPOINT_SNAPSHOT_IO_H_
#define DKF_CHECKPOINT_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>

#include "checkpoint/snapshot.h"
#include "common/result.h"

namespace dkf {

/// Binary snapshot codec (wire format in docs/checkpoint.md).
///
/// File = 8-byte magic "DKFSNAP1" + u32 version + u64 FNV-1a-64 checksum
/// of the payload + u64 payload length + payload, all little-endian.
/// Doubles travel as raw IEEE-754 bits, so corrupted in-flight payloads
/// round-trip bit-exactly; model recipes and filter states are finite-
/// checked on both paths (shared with the synopsis codec via
/// core/synopsis_io.h) so a damaged file can never smuggle a non-finite
/// value into a running filter.
///
/// Error taxonomy: wrong magic / out-of-range version / checksum /
/// trailing garbage -> InvalidArgument; truncation -> OutOfRange;
/// missing file -> NotFound; a model with a time-varying transition_fn
/// -> Unimplemented (arbitrary functions do not serialize — same rule
/// as SaveSynopsis).

inline constexpr char kSnapshotMagic[] = "DKFSNAP1";  // 8 bytes on the wire
/// v2 appended the serving-layer section (src/serve/); v3 appended the
/// delta-governor section (src/governor/); v4 added the adaptive-noise
/// fields (protocol config + per-source/link/resync-message adapter
/// state, docs/adaptive.md); v5 appended the multi-sensor fusion
/// section (src/fusion/: groups, member mirrors + channel lanes, fused
/// queries) and the subscription group_id field.
inline constexpr uint32_t kSnapshotVersion = 5;
/// Oldest version this build still reads. v1 files predate the serving
/// layer; they decode with an empty ServeSnapshot. v2 files predate the
/// governor; they decode with a disabled GovernorSnapshot. v1-v3 files
/// predate noise adaptation; they decode with it disabled and empty
/// adapter state. v1-v4 files predate fusion; they decode with no
/// groups and no fused queries.
inline constexpr uint32_t kSnapshotMinVersion = 1;

/// Serializes a snapshot to the full file image (header + payload).
Result<std::string> EncodeSnapshot(const EngineSnapshot& snapshot);

/// Serializes a snapshot as an *older* format version (header stamped
/// with `version`, later sections and fields omitted from the payload).
/// Data only newer versions can carry is silently dropped — the result
/// is exactly what a build of that era would have written for the
/// downgraded state. InvalidArgument outside
/// [kSnapshotMinVersion, kSnapshotVersion]. This exists for
/// backward-compatibility tests and downgrade tooling; production saves
/// should use EncodeSnapshot.
Result<std::string> EncodeSnapshotForVersion(const EngineSnapshot& snapshot,
                                             uint32_t version);

/// Parses and validates a full file image.
Result<EngineSnapshot> DecodeSnapshot(const std::string& bytes);

/// Encode + atomic write (via a .tmp rename, see common/binary_io.h).
Status SaveSnapshotFile(const EngineSnapshot& snapshot,
                        const std::string& path);

/// Read + decode.
Result<EngineSnapshot> LoadSnapshotFile(const std::string& path);

}  // namespace dkf

#endif  // DKF_CHECKPOINT_SNAPSHOT_IO_H_
