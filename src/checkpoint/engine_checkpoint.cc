/// Save/Restore for StreamManager and ShardedStreamEngine
/// (docs/checkpoint.md). This file is the only code with checkpoint
/// access to the engines' internals: CheckpointAccess is the friend
/// class the engine headers declare, so the snapshot plumbing stays out
/// of the hot-path translation units entirely.

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/snapshot.h"
#include "checkpoint/snapshot_io.h"
#include "common/string_util.h"
#include "dsms/stream_manager.h"
#include "obs/trace_merge.h"
#include "runtime/shard.h"
#include "runtime/sharded_engine.h"

namespace dkf {

namespace {

/// Canonical in-flight gauge name (the one gauge that is re-derived per
/// shard on restore instead of copied, because its per-shard split
/// follows the target layout).
constexpr char kInFlightGauge[] = "channel.in_flight";

std::array<int64_t, kNumTraceEventKinds> CountKinds(
    const std::vector<TraceEvent>& events) {
  std::array<int64_t, kNumTraceEventKinds> counts{};
  for (const TraceEvent& event : events) {
    ++counts[static_cast<size_t>(event.kind)];
  }
  return counts;
}

/// All registered queries, ascending id — synthetic aggregate members
/// included, so a restore replays the registry verbatim.
std::vector<ContinuousQuery> CollectQueries(const QueryRegistry& registry) {
  std::vector<ContinuousQuery> queries;
  for (int source_id : registry.ActiveSources()) {
    for (const ContinuousQuery& query : registry.QueriesForSource(source_id)) {
      queries.push_back(query);
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const ContinuousQuery& a, const ContinuousQuery& b) {
              return a.id < b.id;
            });
  return queries;
}

}  // namespace

/// The one class befriended by StreamManager, StreamShard, and
/// ShardedStreamEngine. Stateless; every method is a static pass over
/// one engine's internals.
class CheckpointAccess {
 public:
  static Result<EngineSnapshot> Capture(const StreamManager& manager) {
    EngineSnapshot snapshot;
    snapshot.energy = manager.options_.energy;
    snapshot.channel = manager.options_.channel;
    snapshot.default_delta = manager.options_.default_delta;
    snapshot.protocol = manager.options_.protocol;
    snapshot.num_shards = 1;
    snapshot.ticks = manager.ticks_;
    snapshot.control_messages = manager.control_messages_;

    for (const auto& [source_id, node] : manager.sources_) {
      SourceSnapshot source;
      source.source_id = source_id;
      source.model = manager.models_.at(source_id);
      DKF_ASSIGN_OR_RETURN(source.node, node->ExportCheckpoint());
      DKF_ASSIGN_OR_RETURN(source.link, manager.server_.ExportLink(source_id));
      source.channel = manager.channel_.ExportSourceCheckpoint(source_id);
      snapshot.sources.push_back(std::move(source));
    }

    snapshot.server_faults = manager.server_.fault_stats();
    snapshot.has_shared_rng = true;
    snapshot.shared_rng = manager.channel_.ExportSharedRng();

    snapshot.queries = CollectQueries(manager.registry_);
    for (const auto& [id, binding] : manager.aggregates_) {
      AggregateSnapshot aggregate;
      aggregate.id = id;
      aggregate.source_ids = binding.source_ids;
      aggregate.synthetic_query_ids = binding.synthetic_query_ids;
      snapshot.aggregates.push_back(std::move(aggregate));
    }

    if (manager.sink_ != nullptr) {
      snapshot.obs.enabled = true;
      snapshot.obs.options = manager.sink_->options();
      // Canonical merged order — the order the determinism contract is
      // stated in, and the order that fans onto any shard layout.
      snapshot.obs.events = MergeTraces({manager.sink_->Events()});
      for (int k = 0; k < kNumTraceEventKinds; ++k) {
        snapshot.obs.kind_counts[static_cast<size_t>(k)] =
            manager.sink_->count(static_cast<TraceEventKind>(k));
      }
      snapshot.obs.dropped = manager.sink_->dropped_events();
      snapshot.obs.gauges = manager.sink_->gauges();
    }
    return snapshot;
  }

  static Result<EngineSnapshot> Capture(const ShardedStreamEngine& engine) {
    EngineSnapshot snapshot;
    snapshot.energy = engine.options_.energy;
    snapshot.channel = engine.options_.channel;
    // The shards run with per-source fault streams regardless of what the
    // original options said (the engine forces it); the snapshot records
    // the effective value so any restore target reproduces the streams.
    snapshot.channel.per_source_rng = true;
    snapshot.default_delta = engine.options_.default_delta;
    snapshot.protocol = engine.options_.protocol;
    snapshot.num_shards = static_cast<int>(engine.shards_.size());
    snapshot.ticks = engine.ticks_;
    snapshot.control_messages = engine.control_messages();

    for (const auto& [source_id, shard_index] : engine.registered_) {
      const StreamShard& shard =
          *engine.shards_[static_cast<size_t>(shard_index)];
      SourceSnapshot source;
      source.source_id = source_id;
      source.model = engine.models_.at(source_id);
      DKF_ASSIGN_OR_RETURN(source.node,
                           shard.sources_.at(source_id)->ExportCheckpoint());
      DKF_ASSIGN_OR_RETURN(source.link, shard.server_.ExportLink(source_id));
      source.channel = shard.channel_.ExportSourceCheckpoint(source_id);
      snapshot.sources.push_back(std::move(source));
    }

    for (const auto& shard : engine.shards_) {
      snapshot.server_faults.MergeFrom(shard->server_.fault_stats());
    }
    snapshot.has_shared_rng = false;

    snapshot.queries = CollectQueries(engine.registry_);
    for (const auto& [id, binding] : engine.aggregates_) {
      AggregateSnapshot aggregate;
      aggregate.id = id;
      aggregate.source_ids = binding.source_ids;
      aggregate.synthetic_query_ids = binding.synthetic_query_ids;
      snapshot.aggregates.push_back(std::move(aggregate));
    }

    if (!engine.sinks_.empty()) {
      snapshot.obs.enabled = true;
      snapshot.obs.options = engine.sinks_[0]->options();
      snapshot.obs.events = engine.MergedTrace();
      for (const auto& sink : engine.sinks_) {
        for (int k = 0; k < kNumTraceEventKinds; ++k) {
          snapshot.obs.kind_counts[static_cast<size_t>(k)] +=
              sink->count(static_cast<TraceEventKind>(k));
        }
        snapshot.obs.dropped += sink->dropped_events();
        for (const auto& [name, value] : sink->gauges()) {
          snapshot.obs.gauges[name] += value;
        }
      }
    }
    return snapshot;
  }

  static Status Restore(StreamManager& manager,
                        const EngineSnapshot& snapshot) {
    manager.ticks_ = snapshot.ticks;
    manager.control_messages_ = snapshot.control_messages;
    manager.server_.RestoreClock(snapshot.ticks);

    for (const SourceSnapshot& source : snapshot.sources) {
      DKF_RETURN_IF_ERROR(
          manager.RegisterSource(source.source_id, source.model));
      DKF_RETURN_IF_ERROR(
          manager.sources_.at(source.source_id)->ImportCheckpoint(
              source.node));
      DKF_RETURN_IF_ERROR(
          manager.server_.RestoreLink(source.source_id, source.link));
      manager.channel_.ImportSourceCheckpoint(source.source_id,
                                              source.channel);
      manager.installed_smoothing_[source.source_id] =
          source.node.smoothing_factor;
    }
    manager.channel_.FinalizeRestore();
    if (snapshot.has_shared_rng) {
      manager.channel_.ImportSharedRng(snapshot.shared_rng);
    }
    manager.server_.RestoreFaultStats(snapshot.server_faults);

    // Replay the registry verbatim. No reconfiguration runs: the node
    // state restored above is already the post-reconfiguration state.
    for (const ContinuousQuery& query : snapshot.queries) {
      DKF_RETURN_IF_ERROR(manager.registry_.AddQuery(query));
    }
    for (const AggregateSnapshot& aggregate : snapshot.aggregates) {
      StreamManager::AggregateBinding binding;
      binding.source_ids = aggregate.source_ids;
      binding.synthetic_query_ids = aggregate.synthetic_query_ids;
      manager.aggregates_[aggregate.id] = std::move(binding);
    }

    if (snapshot.obs.enabled) {
      DKF_RETURN_IF_ERROR(manager.EnableTracing(snapshot.obs.options));
      manager.sink_->RestoreForCheckpoint(snapshot.obs.events,
                                          snapshot.obs.kind_counts,
                                          snapshot.obs.dropped,
                                          snapshot.obs.gauges);
    }
    return Status::OK();
  }

  static Status Restore(ShardedStreamEngine& engine,
                        const EngineSnapshot& snapshot) {
    engine.ticks_ = snapshot.ticks;
    for (auto& shard : engine.shards_) {
      shard->server_.RestoreClock(snapshot.ticks);
    }

    for (const SourceSnapshot& source : snapshot.sources) {
      DKF_RETURN_IF_ERROR(
          engine.RegisterSource(source.source_id, source.model));
      StreamShard& shard = engine.OwningShard(source.source_id);
      DKF_RETURN_IF_ERROR(
          shard.sources_.at(source.source_id)->ImportCheckpoint(source.node));
      DKF_RETURN_IF_ERROR(
          shard.server_.RestoreLink(source.source_id, source.link));
      shard.channel_.ImportSourceCheckpoint(source.source_id, source.channel);
      shard.installed_smoothing_[source.source_id] =
          source.node.smoothing_factor;
    }
    for (auto& shard : engine.shards_) {
      shard->channel_.FinalizeRestore();
    }
    // The snapshot's fleet-wide aggregates land on shard 0; only merged
    // views are part of the determinism contract (docs/checkpoint.md).
    engine.shards_[0]->server_.RestoreFaultStats(snapshot.server_faults);
    engine.shards_[0]->control_messages_ = snapshot.control_messages;

    for (const ContinuousQuery& query : snapshot.queries) {
      DKF_RETURN_IF_ERROR(engine.registry_.AddQuery(query));
    }
    for (const AggregateSnapshot& aggregate : snapshot.aggregates) {
      ShardedStreamEngine::AggregateBinding binding;
      binding.source_ids = aggregate.source_ids;
      binding.synthetic_query_ids = aggregate.synthetic_query_ids;
      std::map<int, std::vector<int>> grouped;
      for (int source_id : aggregate.source_ids) {
        grouped[engine.ShardIndexFor(source_id)].push_back(source_id);
      }
      binding.members_by_shard.assign(grouped.begin(), grouped.end());
      engine.aggregates_[aggregate.id] = std::move(binding);
    }

    if (snapshot.obs.enabled) {
      DKF_RETURN_IF_ERROR(engine.EnableTracing(snapshot.obs.options));
      const size_t num_shards = engine.shards_.size();
      // Fan the canonical trace back onto the target layout. The events
      // are stably ordered by (step, source_id), so each shard's
      // subsequence preserves the original relative order of its own
      // events — which is exactly what makes the re-merged trace
      // bit-identical to the uninterrupted run's.
      std::vector<std::vector<TraceEvent>> buckets(num_shards);
      for (const TraceEvent& event : snapshot.obs.events) {
        buckets[static_cast<size_t>(engine.ShardIndexFor(event.source_id))]
            .push_back(event);
      }
      std::array<int64_t, kNumTraceEventKinds> represented{};
      std::vector<std::array<int64_t, kNumTraceEventKinds>> shard_counts;
      shard_counts.reserve(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        shard_counts.push_back(CountKinds(buckets[s]));
        for (int k = 0; k < kNumTraceEventKinds; ++k) {
          represented[static_cast<size_t>(k)] +=
              shard_counts[s][static_cast<size_t>(k)];
        }
      }
      // Totals beyond the retained events (the ring wrapped before the
      // snapshot) cannot be attributed to a shard; credit shard 0 so the
      // merged counters still sum to the snapshot's exact totals.
      for (int k = 0; k < kNumTraceEventKinds; ++k) {
        shard_counts[0][static_cast<size_t>(k)] +=
            snapshot.obs.kind_counts[static_cast<size_t>(k)] -
            represented[static_cast<size_t>(k)];
      }
      const bool had_in_flight_gauge =
          snapshot.obs.gauges.contains(kInFlightGauge);
      for (size_t s = 0; s < num_shards; ++s) {
        std::map<std::string, double> gauges;
        if (s == 0) {
          gauges = snapshot.obs.gauges;
          gauges.erase(kInFlightGauge);
        }
        if (had_in_flight_gauge) {
          gauges[kInFlightGauge] = static_cast<double>(
              engine.shards_[s]->channel_.in_flight());
        }
        engine.sinks_[s]->RestoreForCheckpoint(
            buckets[s], shard_counts[s],
            s == 0 ? snapshot.obs.dropped : 0, gauges);
      }
    }
    return Status::OK();
  }
};

Status StreamManager::Save(const std::string& path) const {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot,
                       CheckpointAccess::Capture(*this));
  return SaveSnapshotFile(snapshot, path);
}

Result<std::unique_ptr<StreamManager>> StreamManager::Restore(
    const std::string& path) {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot, LoadSnapshotFile(path));
  StreamManagerOptions options;
  options.energy = snapshot.energy;
  options.channel = snapshot.channel;
  options.default_delta = snapshot.default_delta;
  options.protocol = snapshot.protocol;
  auto manager = std::make_unique<StreamManager>(options);
  DKF_RETURN_IF_ERROR(CheckpointAccess::Restore(*manager, snapshot));
  return manager;
}

Status ShardedStreamEngine::Save(const std::string& path) const {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot,
                       CheckpointAccess::Capture(*this));
  return SaveSnapshotFile(snapshot, path);
}

Result<std::unique_ptr<ShardedStreamEngine>> ShardedStreamEngine::Restore(
    const std::string& path, int num_shards) {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot, LoadSnapshotFile(path));
  if (!snapshot.channel.per_source_rng &&
      (snapshot.channel.drop_probability > 0.0 ||
       snapshot.channel.fault.any())) {
    return Status::InvalidArgument(
        "snapshot uses a shared channel RNG stream; a sharded restore "
        "would change the fault sequence — restore with "
        "StreamManager::Restore");
  }
  ShardedStreamEngineOptions options;
  options.num_shards = num_shards > 0 ? num_shards : snapshot.num_shards;
  options.energy = snapshot.energy;
  options.channel = snapshot.channel;
  options.default_delta = snapshot.default_delta;
  options.protocol = snapshot.protocol;
  auto engine = std::make_unique<ShardedStreamEngine>(options);
  DKF_RETURN_IF_ERROR(CheckpointAccess::Restore(*engine, snapshot));
  return engine;
}

}  // namespace dkf
