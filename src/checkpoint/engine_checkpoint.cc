/// Save/Restore for StreamManager and ShardedStreamEngine
/// (docs/checkpoint.md). This file is the only code with checkpoint
/// access to the engines' internals: CheckpointAccess is the friend
/// class the engine headers declare, so the snapshot plumbing stays out
/// of the hot-path translation units entirely.

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/snapshot.h"
#include "checkpoint/snapshot_io.h"
#include "common/string_util.h"
#include "dsms/stream_manager.h"
#include "obs/trace_merge.h"
#include "runtime/shard.h"
#include "runtime/sharded_engine.h"
#include "serve/subscription.h"
#include "serve/subscription_engine.h"

namespace dkf {

namespace {

/// Canonical in-flight gauge name (the one gauge that is re-derived per
/// shard on restore instead of copied, because its per-shard split
/// follows the target layout).
constexpr char kInFlightGauge[] = "channel.in_flight";

std::array<int64_t, kNumTraceEventKinds> CountKinds(
    const std::vector<TraceEvent>& events) {
  std::array<int64_t, kNumTraceEventKinds> counts{};
  for (const TraceEvent& event : events) {
    ++counts[static_cast<size_t>(event.kind)];
  }
  return counts;
}

/// All registered queries, ascending id — synthetic aggregate members
/// included, so a restore replays the registry verbatim.
std::vector<ContinuousQuery> CollectQueries(const QueryRegistry& registry) {
  std::vector<ContinuousQuery> queries;
  for (int source_id : registry.ActiveSources()) {
    for (const ContinuousQuery& query : registry.QueriesForSource(source_id)) {
      queries.push_back(query);
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const ContinuousQuery& a, const ContinuousQuery& b) {
              return a.id < b.id;
            });
  return queries;
}

/// All registered fused queries, ascending id — replayed verbatim on
/// restore (no reconfiguration runs; each group's effective delta is
/// already exact in its GroupState).
std::vector<FusedQuery> CollectFusedQueries(const QueryRegistry& registry) {
  std::vector<FusedQuery> queries;
  for (int group_id : registry.ActiveGroups()) {
    for (const FusedQuery& query : registry.FusedQueriesForGroup(group_id)) {
      queries.push_back(query);
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const FusedQuery& a, const FusedQuery& b) {
              return a.id < b.id;
            });
  return queries;
}

/// Folds one serving engine's registrations, undrained buffer, cursor,
/// and counters into the snapshot accumulators. The caller merges the
/// collected streams and sorts the subscriptions once every engine has
/// been folded.
void FoldServe(const SubscriptionEngine& serve, ServeSnapshot* out,
               std::vector<std::vector<NotificationBatch>>* streams) {
  for (const SubscriptionState& state : serve.ExportSubscriptions()) {
    ServeSubscriptionSnapshot sub;
    sub.spec = state.spec;
    sub.inside = state.inside;
    sub.fired = state.fired;
    out->subscriptions.push_back(std::move(sub));
  }
  streams->push_back(std::vector<NotificationBatch>(serve.pending().begin(),
                                                    serve.pending().end()));
  out->drained_through_step =
      std::max(out->drained_through_step, serve.drained_through_step());
  const ServeStats stats = serve.stats();
  out->notifications += stats.notifications;
  out->dropped += stats.dropped;
  out->touched += stats.touched;
  out->affected += stats.affected;
}

ServeStats ServeCounters(const ServeSnapshot& serve) {
  ServeStats stats;
  stats.notifications = serve.notifications;
  stats.dropped = serve.dropped;
  stats.touched = serve.touched;
  stats.affected = serve.affected;
  return stats;
}

/// Serving-layer read adapters over the public engine APIs, used to
/// re-prime the serve value caches once the filters are restored (the
/// caches are pure functions of engine state, so nothing about them is
/// serialized — see SubscriptionEngine::RefreshCaches).
class ManagerAnswerReader final : public ServeAnswerSource {
 public:
  explicit ManagerAnswerReader(const StreamManager& manager)
      : manager_(manager) {}

  Result<double> SourceValue(int source_id) const override {
    auto answer_or = manager_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto answer_or = manager_.AnswerWithConfidence(source_id);
    if (!answer_or.ok()) return answer_or.status();
    if (!answer_or.value().covariance.has_value()) return 0.0;
    return (*answer_or.value().covariance)(0, 0);
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    return manager_.AnswerAggregate(aggregate_id);
  }

  Result<double> FusedValue(int group_id) const override {
    auto answer_or = manager_.AnswerFused(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> FusedUncertainty(int group_id) const override {
    auto answer_or = manager_.AnswerFusedWithConfidence(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value().covariance(0, 0);
  }

 private:
  const StreamManager& manager_;
};

class ShardAnswerReader final : public ServeAnswerSource {
 public:
  explicit ShardAnswerReader(const StreamShard& shard) : shard_(shard) {}

  Result<double> SourceValue(int source_id) const override {
    auto answer_or = shard_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto answer_or = shard_.AnswerWithConfidence(source_id);
    if (!answer_or.ok()) return answer_or.status();
    if (!answer_or.value().covariance.has_value()) return 0.0;
    return (*answer_or.value().covariance)(0, 0);
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    return Status::InvalidArgument(
        StrFormat("aggregate %d is not served at shard level", aggregate_id));
  }

  Result<double> FusedValue(int group_id) const override {
    auto answer_or = shard_.AnswerFused(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> FusedUncertainty(int group_id) const override {
    auto answer_or = shard_.AnswerFusedWithConfidence(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value().covariance(0, 0);
  }

 private:
  const StreamShard& shard_;
};

class EngineAnswerReader final : public ServeAnswerSource {
 public:
  explicit EngineAnswerReader(const ShardedStreamEngine& engine)
      : engine_(engine) {}

  Result<double> SourceValue(int source_id) const override {
    auto answer_or = engine_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto answer_or = engine_.AnswerWithConfidence(source_id);
    if (!answer_or.ok()) return answer_or.status();
    if (!answer_or.value().covariance.has_value()) return 0.0;
    return (*answer_or.value().covariance)(0, 0);
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    // Member order, not shard order — matches the serving layer's
    // layout-invariant delivery values.
    return engine_.AnswerAggregateCanonical(aggregate_id);
  }

 private:
  const ShardedStreamEngine& engine_;
};

}  // namespace

/// The one class befriended by StreamManager, StreamShard, and
/// ShardedStreamEngine. Stateless; every method is a static pass over
/// one engine's internals.
class CheckpointAccess {
 public:
  static Result<EngineSnapshot> Capture(const StreamManager& manager) {
    EngineSnapshot snapshot;
    snapshot.energy = manager.options_.energy;
    snapshot.channel = manager.options_.channel;
    snapshot.default_delta = manager.options_.default_delta;
    snapshot.protocol = manager.options_.protocol;
    snapshot.num_shards = 1;
    snapshot.ticks = manager.ticks_;
    snapshot.control_messages = manager.control_messages_;

    for (const auto& [source_id, node] : manager.sources_) {
      SourceSnapshot source;
      source.source_id = source_id;
      source.model = manager.models_.at(source_id);
      DKF_ASSIGN_OR_RETURN(source.node, node->ExportCheckpoint());
      DKF_ASSIGN_OR_RETURN(source.link, manager.server_.ExportLink(source_id));
      source.channel = manager.channel_.ExportSourceCheckpoint(source_id);
      snapshot.sources.push_back(std::move(source));
    }

    snapshot.server_faults = manager.server_.fault_stats();
    snapshot.has_shared_rng = true;
    snapshot.shared_rng = manager.channel_.ExportSharedRng();

    snapshot.queries = CollectQueries(manager.registry_);
    for (const auto& [id, binding] : manager.aggregates_) {
      AggregateSnapshot aggregate;
      aggregate.id = id;
      aggregate.source_ids = binding.source_ids;
      aggregate.synthetic_query_ids = binding.synthetic_query_ids;
      snapshot.aggregates.push_back(std::move(aggregate));
    }

    if (manager.sink_ != nullptr) {
      snapshot.obs.enabled = true;
      snapshot.obs.options = manager.sink_->options();
      // Canonical merged order — the order the determinism contract is
      // stated in, and the order that fans onto any shard layout.
      snapshot.obs.events = MergeTraces({manager.sink_->Events()});
      for (int k = 0; k < kNumTraceEventKinds; ++k) {
        snapshot.obs.kind_counts[static_cast<size_t>(k)] =
            manager.sink_->count(static_cast<TraceEventKind>(k));
      }
      snapshot.obs.dropped = manager.sink_->dropped_events();
      snapshot.obs.gauges = manager.sink_->gauges();
    }

    snapshot.serve.options = manager.options_.serve;
    std::vector<std::vector<NotificationBatch>> serve_streams;
    FoldServe(manager.serve_, &snapshot.serve, &serve_streams);
    snapshot.serve.pending = MergeNotificationBatches(serve_streams);

    // Fusion groups with their members' channel lanes (members share the
    // channel's per-source namespace, so their lanes export like any
    // source's).
    for (FusionEngine::GroupState& group : manager.fusion_.ExportGroups()) {
      FusionGroupSnapshot entry;
      entry.member_channels.reserve(group.members.size());
      for (const FusionEngine::MemberState& member : group.members) {
        entry.member_channels.push_back(
            manager.channel_.ExportSourceCheckpoint(member.source_id));
      }
      entry.group = std::move(group);
      snapshot.fusion_groups.push_back(std::move(entry));
    }
    snapshot.fused_queries = CollectFusedQueries(manager.registry_);
    return snapshot;
  }

  static Result<EngineSnapshot> Capture(const ShardedStreamEngine& engine) {
    EngineSnapshot snapshot;
    snapshot.energy = engine.options_.energy;
    snapshot.channel = engine.options_.channel;
    // The shards run with per-source fault streams regardless of what the
    // original options said (the engine forces it); the snapshot records
    // the effective value so any restore target reproduces the streams.
    snapshot.channel.per_source_rng = true;
    snapshot.default_delta = engine.options_.default_delta;
    snapshot.protocol = engine.options_.protocol;
    snapshot.num_shards = static_cast<int>(engine.shards_.size());
    snapshot.ticks = engine.ticks_;
    snapshot.control_messages = engine.control_messages();

    for (const auto& [source_id, shard_index] : engine.registered_) {
      const StreamShard& shard =
          *engine.shards_[static_cast<size_t>(shard_index)];
      SourceSnapshot source;
      source.source_id = source_id;
      source.model = engine.models_.at(source_id);
      // Routed exports: a batch-resident source (src/fleet/) synthesizes
      // the exact per-source state a spilled run would capture, so the
      // snapshot bytes are engine-agnostic.
      DKF_ASSIGN_OR_RETURN(source.node, shard.ExportSourceState(source_id));
      DKF_ASSIGN_OR_RETURN(source.link, shard.ExportLinkState(source_id));
      source.channel = shard.channel_.ExportSourceCheckpoint(source_id);
      snapshot.sources.push_back(std::move(source));
    }

    for (const auto& shard : engine.shards_) {
      snapshot.server_faults.MergeFrom(shard->server_.fault_stats());
      // Degraded ticks accounted on batch lanes live in the fleet
      // engine; fold them in so the merged counters match a per-source
      // run's server-side totals.
      if (shard->fleet_ != nullptr) {
        snapshot.server_faults.degraded_ticks +=
            shard->fleet_->degraded_ticks();
      }
    }
    snapshot.has_shared_rng = false;

    snapshot.queries = CollectQueries(engine.registry_);
    for (const auto& [id, binding] : engine.aggregates_) {
      AggregateSnapshot aggregate;
      aggregate.id = id;
      aggregate.source_ids = binding.source_ids;
      aggregate.synthetic_query_ids = binding.synthetic_query_ids;
      snapshot.aggregates.push_back(std::move(aggregate));
    }

    if (!engine.sinks_.empty()) {
      snapshot.obs.enabled = true;
      snapshot.obs.options = engine.sinks_[0]->options();
      snapshot.obs.events = engine.MergedTrace();
      for (const auto& sink : engine.sinks_) {
        for (int k = 0; k < kNumTraceEventKinds; ++k) {
          snapshot.obs.kind_counts[static_cast<size_t>(k)] +=
              sink->count(static_cast<TraceEventKind>(k));
        }
        snapshot.obs.dropped += sink->dropped_events();
        for (const auto& [name, value] : sink->gauges()) {
          snapshot.obs.gauges[name] += value;
        }
      }
    }

    // Serving front-end: every engine's registrations collected in one
    // shard-layout-free list, the per-engine undrained buffers merged
    // into the canonical stream (the order DrainNotifications would
    // hand out).
    snapshot.serve.options = engine.options_.serve;
    std::vector<std::vector<NotificationBatch>> serve_streams;
    FoldServe(engine.aggregate_serve_, &snapshot.serve, &serve_streams);
    for (const auto& shard : engine.shards_) {
      FoldServe(shard->serve_, &snapshot.serve, &serve_streams);
    }
    std::sort(snapshot.serve.subscriptions.begin(),
              snapshot.serve.subscriptions.end(),
              [](const ServeSubscriptionSnapshot& a,
                 const ServeSubscriptionSnapshot& b) {
                return a.spec.id < b.spec.id;
              });
    snapshot.serve.pending = MergeNotificationBatches(serve_streams);

    // Delta governor (snapshot v3): the configured control law plus
    // every source's controller state, keyed by source id like
    // everything else — a mid-epoch restore at any shard count resumes
    // the exact same delta schedule.
    if (engine.governor_ != nullptr) {
      snapshot.governor.enabled = true;
      snapshot.governor.options = engine.options_.governor;
      snapshot.governor.epochs = engine.governor_->epochs();
      for (const auto& [source_id, state] : engine.governor_->states()) {
        GovernorSourceSnapshot entry;
        entry.source_id = source_id;
        entry.state = state;
        snapshot.governor.states.push_back(entry);
      }
    }

    // Fusion groups, collected across shards and ordered by group id so
    // the snapshot is shard-layout-free like everything else.
    for (const auto& shard : engine.shards_) {
      for (FusionEngine::GroupState& group : shard->fusion_.ExportGroups()) {
        FusionGroupSnapshot entry;
        entry.member_channels.reserve(group.members.size());
        for (const FusionEngine::MemberState& member : group.members) {
          entry.member_channels.push_back(
              shard->channel_.ExportSourceCheckpoint(member.source_id));
        }
        entry.group = std::move(group);
        snapshot.fusion_groups.push_back(std::move(entry));
      }
    }
    std::sort(snapshot.fusion_groups.begin(), snapshot.fusion_groups.end(),
              [](const FusionGroupSnapshot& a, const FusionGroupSnapshot& b) {
                return a.group.group_id < b.group.group_id;
              });
    snapshot.fused_queries = CollectFusedQueries(engine.registry_);
    return snapshot;
  }

  static Status Restore(StreamManager& manager,
                        const EngineSnapshot& snapshot) {
    manager.ticks_ = snapshot.ticks;
    manager.control_messages_ = snapshot.control_messages;
    manager.server_.RestoreClock(snapshot.ticks);

    for (const SourceSnapshot& source : snapshot.sources) {
      DKF_RETURN_IF_ERROR(
          manager.RegisterSource(source.source_id, source.model));
      DKF_RETURN_IF_ERROR(
          manager.sources_.at(source.source_id)->ImportCheckpoint(
              source.node));
      DKF_RETURN_IF_ERROR(
          manager.server_.RestoreLink(source.source_id, source.link));
      manager.channel_.ImportSourceCheckpoint(source.source_id,
                                              source.channel);
      manager.installed_smoothing_[source.source_id] =
          source.node.smoothing_factor;
    }
    // Fusion groups and their members' channel lanes, before the
    // channel's restore is finalized so the lanes are part of the same
    // pass as the plain sources'.
    for (const FusionGroupSnapshot& entry : snapshot.fusion_groups) {
      if (entry.member_channels.size() != entry.group.members.size()) {
        return Status::InvalidArgument(StrFormat(
            "fusion group %d has %zu channel lanes for %zu members",
            entry.group.group_id, entry.member_channels.size(),
            entry.group.members.size()));
      }
      DKF_RETURN_IF_ERROR(manager.fusion_.ImportGroup(entry.group));
      for (size_t m = 0; m < entry.group.members.size(); ++m) {
        manager.channel_.ImportSourceCheckpoint(
            entry.group.members[m].source_id, entry.member_channels[m]);
      }
    }
    // The fusion clock holds the last *completed* tick: the next
    // BeginTick(ticks) does its degraded accounting for tick ticks-1,
    // exactly as the uninterrupted run's would.
    manager.fusion_.RestoreClock(snapshot.ticks - 1);
    manager.channel_.FinalizeRestore();
    if (snapshot.has_shared_rng) {
      manager.channel_.ImportSharedRng(snapshot.shared_rng);
    }
    manager.server_.RestoreFaultStats(snapshot.server_faults);

    // Replay the registry verbatim. No reconfiguration runs: the node
    // state restored above is already the post-reconfiguration state.
    for (const ContinuousQuery& query : snapshot.queries) {
      DKF_RETURN_IF_ERROR(manager.registry_.AddQuery(query));
    }
    for (const FusedQuery& query : snapshot.fused_queries) {
      DKF_RETURN_IF_ERROR(manager.registry_.AddFusedQuery(query));
    }
    for (const AggregateSnapshot& aggregate : snapshot.aggregates) {
      StreamManager::AggregateBinding binding;
      binding.source_ids = aggregate.source_ids;
      binding.synthetic_query_ids = aggregate.synthetic_query_ids;
      manager.aggregates_[aggregate.id] = std::move(binding);
    }

    if (snapshot.obs.enabled) {
      DKF_RETURN_IF_ERROR(manager.EnableTracing(snapshot.obs.options));
      manager.sink_->RestoreForCheckpoint(snapshot.obs.events,
                                          snapshot.obs.kind_counts,
                                          snapshot.obs.dropped,
                                          snapshot.obs.gauges);
    }

    // Serving front-end: re-attach every registration with its saved
    // delivery state (no fresh initial notifications), hand back the
    // undrained buffer, then re-prime the value caches from the
    // restored filters.
    for (const ServeSubscriptionSnapshot& sub :
         snapshot.serve.subscriptions) {
      SubscriptionState state;
      state.spec = sub.spec;
      state.inside = sub.inside;
      state.fired = sub.fired;
      std::vector<int> members;
      if (sub.spec.kind == SubscriptionKind::kAggregate) {
        auto it = manager.aggregates_.find(sub.spec.aggregate_id);
        if (it == manager.aggregates_.end()) {
          return Status::InvalidArgument(StrFormat(
              "subscription %lld targets aggregate %d, which the snapshot "
              "does not register",
              static_cast<long long>(sub.spec.id), sub.spec.aggregate_id));
        }
        members = it->second.source_ids;
      } else if (sub.spec.kind == SubscriptionKind::kFused &&
                 !manager.fusion_.has_group(sub.spec.group_id)) {
        return Status::InvalidArgument(StrFormat(
            "subscription %lld targets fusion group %d, which the snapshot "
            "does not register",
            static_cast<long long>(sub.spec.id), sub.spec.group_id));
      }
      DKF_RETURN_IF_ERROR(manager.serve_.ImportSubscription(state, members));
    }
    manager.serve_.RestorePending(snapshot.serve.pending,
                                  snapshot.serve.drained_through_step);
    manager.serve_.RestoreStats(ServeCounters(snapshot.serve));
    DKF_RETURN_IF_ERROR(
        manager.serve_.RefreshCaches(ManagerAnswerReader(manager)));
    return Status::OK();
  }

  static Status Restore(ShardedStreamEngine& engine,
                        const EngineSnapshot& snapshot) {
    engine.ticks_ = snapshot.ticks;
    for (auto& shard : engine.shards_) {
      shard->server_.RestoreClock(snapshot.ticks);
    }

    for (const SourceSnapshot& source : snapshot.sources) {
      DKF_RETURN_IF_ERROR(
          engine.RegisterSource(source.source_id, source.model));
      StreamShard& shard = engine.OwningShard(source.source_id);
      DKF_RETURN_IF_ERROR(
          shard.sources_.at(source.source_id)->ImportCheckpoint(source.node));
      DKF_RETURN_IF_ERROR(
          shard.server_.RestoreLink(source.source_id, source.link));
      shard.channel_.ImportSourceCheckpoint(source.source_id, source.channel);
      shard.installed_smoothing_[source.source_id] =
          source.node.smoothing_factor;
    }
    // Fusion groups: the whole group (posterior plus every member's
    // mirror and channel lane) lands on the shard its group id pins it
    // to under the *target* layout, before the channels finalize.
    for (const FusionGroupSnapshot& entry : snapshot.fusion_groups) {
      if (entry.member_channels.size() != entry.group.members.size()) {
        return Status::InvalidArgument(StrFormat(
            "fusion group %d has %zu channel lanes for %zu members",
            entry.group.group_id, entry.member_channels.size(),
            entry.group.members.size()));
      }
      const int group_id = entry.group.group_id;
      const int shard_index = engine.ShardIndexFor(group_id);
      StreamShard& shard = *engine.shards_[static_cast<size_t>(shard_index)];
      DKF_RETURN_IF_ERROR(shard.fusion_.ImportGroup(entry.group));
      engine.fusion_groups_[group_id] = shard_index;
      for (size_t m = 0; m < entry.group.members.size(); ++m) {
        const int member_id = entry.group.members[m].source_id;
        engine.fusion_members_[member_id] = group_id;
        shard.channel_.ImportSourceCheckpoint(member_id,
                                              entry.member_channels[m]);
      }
    }
    for (auto& shard : engine.shards_) {
      // Last completed tick on every shard (groupless shards included —
      // their clocks advance unconditionally), so the next
      // BeginTick(ticks) accounts for tick ticks-1 like the
      // uninterrupted run's.
      shard->fusion_.RestoreClock(snapshot.ticks - 1);
      shard->channel_.FinalizeRestore();
    }
    // The snapshot's fleet-wide aggregates land on shard 0; only merged
    // views are part of the determinism contract (docs/checkpoint.md).
    engine.shards_[0]->server_.RestoreFaultStats(snapshot.server_faults);
    engine.shards_[0]->control_messages_ = snapshot.control_messages;

    for (const ContinuousQuery& query : snapshot.queries) {
      DKF_RETURN_IF_ERROR(engine.registry_.AddQuery(query));
    }
    for (const FusedQuery& query : snapshot.fused_queries) {
      DKF_RETURN_IF_ERROR(engine.registry_.AddFusedQuery(query));
    }
    for (const AggregateSnapshot& aggregate : snapshot.aggregates) {
      ShardedStreamEngine::AggregateBinding binding;
      binding.source_ids = aggregate.source_ids;
      binding.synthetic_query_ids = aggregate.synthetic_query_ids;
      std::map<int, std::vector<int>> grouped;
      for (int source_id : aggregate.source_ids) {
        grouped[engine.ShardIndexFor(source_id)].push_back(source_id);
      }
      binding.members_by_shard.assign(grouped.begin(), grouped.end());
      engine.aggregates_[aggregate.id] = std::move(binding);
    }

    if (snapshot.obs.enabled) {
      DKF_RETURN_IF_ERROR(engine.EnableTracing(snapshot.obs.options));
      const size_t num_shards = engine.shards_.size();
      // Fan the canonical trace back onto the target layout. The events
      // are stably ordered by (step, source_id), so each shard's
      // subsequence preserves the original relative order of its own
      // events — which is exactly what makes the re-merged trace
      // bit-identical to the uninterrupted run's.
      std::vector<std::vector<TraceEvent>> buckets(num_shards);
      for (const TraceEvent& event : snapshot.obs.events) {
        buckets[static_cast<size_t>(engine.ShardIndexFor(event.source_id))]
            .push_back(event);
      }
      std::array<int64_t, kNumTraceEventKinds> represented{};
      std::vector<std::array<int64_t, kNumTraceEventKinds>> shard_counts;
      shard_counts.reserve(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        shard_counts.push_back(CountKinds(buckets[s]));
        for (int k = 0; k < kNumTraceEventKinds; ++k) {
          represented[static_cast<size_t>(k)] +=
              shard_counts[s][static_cast<size_t>(k)];
        }
      }
      // Totals beyond the retained events (the ring wrapped before the
      // snapshot) cannot be attributed to a shard; credit shard 0 so the
      // merged counters still sum to the snapshot's exact totals.
      for (int k = 0; k < kNumTraceEventKinds; ++k) {
        shard_counts[0][static_cast<size_t>(k)] +=
            snapshot.obs.kind_counts[static_cast<size_t>(k)] -
            represented[static_cast<size_t>(k)];
      }
      const bool had_in_flight_gauge =
          snapshot.obs.gauges.contains(kInFlightGauge);
      for (size_t s = 0; s < num_shards; ++s) {
        std::map<std::string, double> gauges;
        if (s == 0) {
          gauges = snapshot.obs.gauges;
          gauges.erase(kInFlightGauge);
        }
        if (had_in_flight_gauge) {
          gauges[kInFlightGauge] = static_cast<double>(
              engine.shards_[s]->channel_.in_flight());
        }
        engine.sinks_[s]->RestoreForCheckpoint(
            buckets[s], shard_counts[s],
            s == 0 ? snapshot.obs.dropped : 0, gauges);
      }
    }

    // Serving front-end: registrations land on the engine that owns
    // them under the target layout (aggregate subscriptions at the
    // engine level, the rest on the shard owning their source), with
    // their saved delivery state — no fresh initial notifications.
    for (const ServeSubscriptionSnapshot& sub :
         snapshot.serve.subscriptions) {
      SubscriptionState state;
      state.spec = sub.spec;
      state.inside = sub.inside;
      state.fired = sub.fired;
      if (sub.spec.kind == SubscriptionKind::kAggregate) {
        auto it = engine.aggregates_.find(sub.spec.aggregate_id);
        if (it == engine.aggregates_.end()) {
          return Status::InvalidArgument(StrFormat(
              "subscription %lld targets aggregate %d, which the snapshot "
              "does not register",
              static_cast<long long>(sub.spec.id), sub.spec.aggregate_id));
        }
        DKF_RETURN_IF_ERROR(engine.aggregate_serve_.ImportSubscription(
            state, it->second.source_ids));
      } else if (sub.spec.kind == SubscriptionKind::kFused) {
        auto it = engine.fusion_groups_.find(sub.spec.group_id);
        if (it == engine.fusion_groups_.end()) {
          return Status::InvalidArgument(StrFormat(
              "subscription %lld targets fusion group %d, which the "
              "snapshot does not register",
              static_cast<long long>(sub.spec.id), sub.spec.group_id));
        }
        DKF_RETURN_IF_ERROR(engine.shards_[static_cast<size_t>(it->second)]
                                ->serve_.ImportSubscription(state));
      } else {
        if (!engine.HasSource(sub.spec.source_id)) {
          return Status::InvalidArgument(StrFormat(
              "subscription %lld targets source %d, which the snapshot "
              "does not register",
              static_cast<long long>(sub.spec.id), sub.spec.source_id));
        }
        DKF_RETURN_IF_ERROR(engine.OwningShard(sub.spec.source_id)
                                .serve_.ImportSubscription(state));
      }
    }
    // Fan the canonical undrained buffer back by notification key:
    // negative keys are engine-level aggregate notifications, the rest
    // go to the shard owning the source. Each engine's subsequence
    // preserves canonical order, so a later DrainNotifications
    // re-merges bit-identically to the uninterrupted run's stream.
    const size_t serve_shards = engine.shards_.size();
    std::vector<std::vector<NotificationBatch>> shard_pending(serve_shards);
    std::vector<NotificationBatch> aggregate_pending;
    for (const NotificationBatch& batch : snapshot.serve.pending) {
      std::vector<std::vector<Notification>> per_shard(serve_shards);
      std::vector<Notification> engine_level;
      for (const Notification& notification : batch.notifications) {
        // Fused keys are negative, so they must peel off before the
        // negative-means-aggregate test: they go to the shard their
        // group id pins them to, not to the engine level.
        if (IsFusedSourceKey(notification.source_id)) {
          per_shard[static_cast<size_t>(engine.ShardIndexFor(
                        GroupIdFromFusedKey(notification.source_id)))]
              .push_back(notification);
        } else if (notification.source_id < 0) {
          engine_level.push_back(notification);
        } else {
          per_shard[static_cast<size_t>(
                        engine.ShardIndexFor(notification.source_id))]
              .push_back(notification);
        }
      }
      for (size_t s = 0; s < serve_shards; ++s) {
        if (per_shard[s].empty()) continue;
        NotificationBatch shard_batch;
        shard_batch.step = batch.step;
        shard_batch.notifications = std::move(per_shard[s]);
        shard_pending[s].push_back(std::move(shard_batch));
      }
      if (!engine_level.empty()) {
        NotificationBatch aggregate_batch;
        aggregate_batch.step = batch.step;
        aggregate_batch.notifications = std::move(engine_level);
        aggregate_pending.push_back(std::move(aggregate_batch));
      }
    }
    for (size_t s = 0; s < serve_shards; ++s) {
      engine.shards_[s]->serve_.RestorePending(
          std::move(shard_pending[s]), snapshot.serve.drained_through_step);
    }
    engine.aggregate_serve_.RestorePending(
        std::move(aggregate_pending), snapshot.serve.drained_through_step);
    // The fleet-wide lifetime counters land on shard 0, like the server
    // fault stats: only the merged view is part of the contract.
    engine.shards_[0]->serve_.RestoreStats(ServeCounters(snapshot.serve));

    // Governor controller state, moved verbatim. The epoch cadence is
    // derived from the tick count restored above, so the next epoch
    // fires exactly where the uninterrupted run's would have.
    if (snapshot.governor.enabled) {
      if (engine.governor_ == nullptr) {
        return Status::InvalidArgument(
            "snapshot has the delta governor enabled but the target engine "
            "was built without one");
      }
      std::map<int, DeltaGovernor::SourceState> governor_states;
      for (const GovernorSourceSnapshot& entry : snapshot.governor.states) {
        governor_states[entry.source_id] = entry.state;
      }
      engine.governor_->ImportState(snapshot.governor.epochs,
                                    std::move(governor_states));
    }
    for (auto& shard : engine.shards_) {
      DKF_RETURN_IF_ERROR(
          shard->serve_.RefreshCaches(ShardAnswerReader(*shard)));
    }
    DKF_RETURN_IF_ERROR(
        engine.aggregate_serve_.RefreshCaches(EngineAnswerReader(engine)));
    return Status::OK();
  }
};

Status StreamManager::Save(const std::string& path) const {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot,
                       CheckpointAccess::Capture(*this));
  return SaveSnapshotFile(snapshot, path);
}

Result<std::unique_ptr<StreamManager>> StreamManager::Restore(
    const std::string& path) {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot, LoadSnapshotFile(path));
  if (snapshot.governor.enabled) {
    return Status::InvalidArgument(
        "snapshot has the delta governor enabled; StreamManager never runs "
        "governor epochs, so a restored run would silently diverge — "
        "restore with ShardedStreamEngine::Restore");
  }
  StreamManagerOptions options;
  options.energy = snapshot.energy;
  options.channel = snapshot.channel;
  options.default_delta = snapshot.default_delta;
  options.protocol = snapshot.protocol;
  options.serve = snapshot.serve.options;
  auto manager = std::make_unique<StreamManager>(options);
  DKF_RETURN_IF_ERROR(CheckpointAccess::Restore(*manager, snapshot));
  return manager;
}

Status ShardedStreamEngine::Save(const std::string& path) const {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot,
                       CheckpointAccess::Capture(*this));
  return SaveSnapshotFile(snapshot, path);
}

Result<std::unique_ptr<ShardedStreamEngine>> ShardedStreamEngine::Restore(
    const std::string& path, int num_shards, bool batched_fleet) {
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot, LoadSnapshotFile(path));
  if (!snapshot.channel.per_source_rng &&
      (snapshot.channel.drop_probability > 0.0 ||
       snapshot.channel.fault.any())) {
    return Status::InvalidArgument(
        "snapshot uses a shared channel RNG stream; a sharded restore "
        "would change the fault sequence — restore with "
        "StreamManager::Restore");
  }
  ShardedStreamEngineOptions options;
  options.num_shards = num_shards > 0 ? num_shards : snapshot.num_shards;
  options.energy = snapshot.energy;
  options.channel = snapshot.channel;
  options.default_delta = snapshot.default_delta;
  options.protocol = snapshot.protocol;
  options.serve = snapshot.serve.options;
  options.governor = snapshot.governor.options;
  options.governor.enabled = snapshot.governor.enabled;
  // Snapshots are engine-agnostic: restoring onto the batched fleet
  // engine reconstructs every source on the per-source path (spilled)
  // and lets eligible ones re-enter their lanes after the next tick.
  options.batched_fleet = batched_fleet;
  auto engine = std::make_unique<ShardedStreamEngine>(options);
  DKF_RETURN_IF_ERROR(CheckpointAccess::Restore(*engine, snapshot));
  return engine;
}

}  // namespace dkf
