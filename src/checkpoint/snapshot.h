#ifndef DKF_CHECKPOINT_SNAPSHOT_H_
#define DKF_CHECKPOINT_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "query/query.h"

namespace dkf {

/// Everything the checkpoint keeps for one registered source: the model
/// recipe it was created from plus the three per-link state bundles —
/// the source node (KF_m, optional KF_c, the divergence state machine),
/// the server link (KF_s, ingress bookkeeping), and the channel lane
/// (fault RNG, Gilbert–Elliott chain, in-flight messages, deferred
/// ACKs). Keyed by source id, never by shard: the snapshot is
/// shard-layout-free, which is what makes elastic re-sharding possible
/// (docs/checkpoint.md).
struct SourceSnapshot {
  int source_id = 0;
  StateModel model;
  SourceNode::CheckpointState node;
  ServerNode::LinkSnapshot link;
  Channel::SourceCheckpoint channel;
};

/// One aggregate query binding. The per-shard member grouping is NOT
/// stored — it is recomputed on restore for the target shard count.
struct AggregateSnapshot {
  int id = 0;
  std::vector<int> source_ids;
  std::vector<int> synthetic_query_ids;
};

/// Observability state: the retained trace (in canonical merged order),
/// the exact per-kind totals, and the sampled gauges. Timing histograms
/// are excluded — they are nondeterministic by design.
struct ObsSnapshot {
  bool enabled = false;
  ObsOptions options;
  /// Retained events, stably sorted by (step, source_id) — the same
  /// canonical order MergeTraces produces, so the events fan back onto
  /// any shard layout without disturbing the merged trace.
  std::vector<TraceEvent> events;
  /// Exact per-kind totals (exact even where the ring wrapped).
  std::array<int64_t, kNumTraceEventKinds> kind_counts{};
  int64_t dropped = 0;
  std::map<std::string, double> gauges;
};

/// The complete persisted state of a StreamManager or a
/// ShardedStreamEngine between two ticks. A snapshot captured from
/// either system restores into either system, at any shard count, and
/// the restored run continues bit-identically: same answers, same fault
/// sequence, same merged trace (docs/checkpoint.md).
struct EngineSnapshot {
  // ---- configuration (reconstructs the constructor options) ---------
  EnergyModelOptions energy;
  ChannelOptions channel;
  double default_delta = 1e6;
  ProtocolOptions protocol;
  /// Shard count at save time — the default for a restore that does not
  /// override it. 1 for StreamManager snapshots.
  int num_shards = 1;

  // ---- progress -----------------------------------------------------
  int64_t ticks = 0;
  int64_t control_messages = 0;

  /// Per-source state, ascending source id.
  std::vector<SourceSnapshot> sources;

  /// Server-side ingress counters, aggregated fleet-wide. Restored into
  /// one server (shard 0) — only the merged view is part of the
  /// determinism contract.
  ProtocolFaultStats server_faults;

  /// The shared channel fault stream. Only meaningful when
  /// channel.per_source_rng is false (StreamManager configurations); a
  /// sharded engine's fault streams are all per-source.
  bool has_shared_rng = false;
  Rng::State shared_rng;

  /// Every registered query verbatim, including the synthetic
  /// per-source members of aggregates. Restored directly into the
  /// registry — no reconfiguration runs, because the node state in
  /// `sources` is already exact.
  std::vector<ContinuousQuery> queries;
  std::vector<AggregateSnapshot> aggregates;

  ObsSnapshot obs;
};

}  // namespace dkf

#endif  // DKF_CHECKPOINT_SNAPSHOT_H_
