#ifndef DKF_CHECKPOINT_SNAPSHOT_H_
#define DKF_CHECKPOINT_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "fusion/fusion_engine.h"
#include "governor/delta_governor.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "query/query.h"
#include "serve/subscription.h"
#include "serve/subscription_engine.h"

namespace dkf {

/// Everything the checkpoint keeps for one registered source: the model
/// recipe it was created from plus the three per-link state bundles —
/// the source node (KF_m, optional KF_c, the divergence state machine),
/// the server link (KF_s, ingress bookkeeping), and the channel lane
/// (fault RNG, Gilbert–Elliott chain, in-flight messages, deferred
/// ACKs). Keyed by source id, never by shard: the snapshot is
/// shard-layout-free, which is what makes elastic re-sharding possible
/// (docs/checkpoint.md).
struct SourceSnapshot {
  int source_id = 0;
  StateModel model;
  SourceNode::CheckpointState node;
  ServerNode::LinkSnapshot link;
  Channel::SourceCheckpoint channel;
};

/// One aggregate query binding. The per-shard member grouping is NOT
/// stored — it is recomputed on restore for the target shard count.
struct AggregateSnapshot {
  int id = 0;
  std::vector<int> source_ids;
  std::vector<int> synthetic_query_ids;
};

/// Observability state: the retained trace (in canonical merged order),
/// the exact per-kind totals, and the sampled gauges. Timing histograms
/// are excluded — they are nondeterministic by design.
struct ObsSnapshot {
  bool enabled = false;
  ObsOptions options;
  /// Retained events, stably sorted by (step, source_id) — the same
  /// canonical order MergeTraces produces, so the events fan back onto
  /// any shard layout without disturbing the merged trace.
  std::vector<TraceEvent> events;
  /// Exact per-kind totals (exact even where the ring wrapped).
  std::array<int64_t, kNumTraceEventKinds> kind_counts{};
  int64_t dropped = 0;
  std::map<std::string, double> gauges;
};

/// One standing subscription plus its delivery state — everything the
/// SubscriptionEngine needs to re-attach it with ImportSubscription:
/// the band/range membership and the uncertainty latch travel with the
/// spec so the restored engine emits no fresh initial notification and
/// re-derives nothing.
struct ServeSubscriptionSnapshot {
  Subscription spec;
  bool inside = false;
  bool fired = false;
};

/// Serving front-end state (src/serve/, snapshot v2): the standing
/// registrations, the undrained notification buffer, the delivery
/// cursor, and the lifetime counters. Shard-layout-free like the rest
/// of the snapshot: subscriptions and buffered notifications fan back
/// onto the target layout by source ownership on restore
/// (docs/checkpoint.md).
struct ServeSnapshot {
  ServeOptions options;
  /// Every registration, strictly ascending subscription id.
  std::vector<ServeSubscriptionSnapshot> subscriptions;
  /// Undrained batches in canonical merged order: coalesced per step
  /// and sorted by (step, source_id, subscription_id) — exactly the
  /// order DrainNotifications hands out on any layout.
  std::vector<NotificationBatch> pending;
  int64_t drained_through_step = -1;
  // Lifetime counters (ServeStats minus the derived registration
  // count), fleet-wide. Restored into one engine; only the merged view
  // is part of the determinism contract.
  int64_t notifications = 0;
  int64_t dropped = 0;
  int64_t touched = 0;
  int64_t affected = 0;
};

/// One fusion group and its members (src/fusion/, snapshot v5): the
/// engine-side running state (posterior, version clock, member mirrors
/// and protocol cursors) plus each member's channel lane — members
/// share the per-source uplink fault-stream namespace with plain
/// sources, so their lanes travel exactly like SourceSnapshot's.
/// Keyed by group id; on a sharded restore the whole group lands on
/// the shard ShardIndexFor(group_id) names.
struct FusionGroupSnapshot {
  FusionEngine::GroupState group;
  /// One lane per member, parallel to group.members (ascending id).
  std::vector<Channel::SourceCheckpoint> member_channels;
};

/// One source's governor controller state, keyed by source id (layout-
/// free like everything else in the snapshot).
struct GovernorSourceSnapshot {
  int source_id = 0;
  DeltaGovernor::SourceState state;
};

/// Delta-governor state (src/governor/, snapshot v3): the configured
/// control law plus every source's EWMA rates and sensitivity fit, so a
/// restore mid-epoch resumes the exact same delta schedule. The epoch
/// cadence itself is stateless (derived from the tick count), so no
/// phase needs storing.
struct GovernorSnapshot {
  bool enabled = false;
  GovernorOptions options;
  int64_t epochs = 0;
  /// Controller state, strictly ascending source id.
  std::vector<GovernorSourceSnapshot> states;
};

/// The complete persisted state of a StreamManager or a
/// ShardedStreamEngine between two ticks. A snapshot captured from
/// either system restores into either system, at any shard count, and
/// the restored run continues bit-identically: same answers, same fault
/// sequence, same merged trace (docs/checkpoint.md).
struct EngineSnapshot {
  // ---- configuration (reconstructs the constructor options) ---------
  EnergyModelOptions energy;
  ChannelOptions channel;
  double default_delta = 1e6;
  ProtocolOptions protocol;
  /// Shard count at save time — the default for a restore that does not
  /// override it. 1 for StreamManager snapshots.
  int num_shards = 1;

  // ---- progress -----------------------------------------------------
  int64_t ticks = 0;
  int64_t control_messages = 0;

  /// Per-source state, ascending source id.
  std::vector<SourceSnapshot> sources;

  /// Server-side ingress counters, aggregated fleet-wide. Restored into
  /// one server (shard 0) — only the merged view is part of the
  /// determinism contract.
  ProtocolFaultStats server_faults;

  /// The shared channel fault stream. Only meaningful when
  /// channel.per_source_rng is false (StreamManager configurations); a
  /// sharded engine's fault streams are all per-source.
  bool has_shared_rng = false;
  Rng::State shared_rng;

  /// Every registered query verbatim, including the synthetic
  /// per-source members of aggregates. Restored directly into the
  /// registry — no reconfiguration runs, because the node state in
  /// `sources` is already exact.
  std::vector<ContinuousQuery> queries;
  std::vector<AggregateSnapshot> aggregates;

  ObsSnapshot obs;

  /// Serving front-end (empty when decoded from a v1 file, which
  /// predates src/serve/).
  ServeSnapshot serve;

  /// Delta governor (disabled when decoded from a v1/v2 file, which
  /// predate src/governor/).
  GovernorSnapshot governor;

  /// Fusion groups and their standing fused queries (empty when decoded
  /// from a v1-v4 file, which predate src/fusion/). Groups ascending by
  /// group id, queries ascending by query id.
  std::vector<FusionGroupSnapshot> fusion_groups;
  std::vector<FusedQuery> fused_queries;
};

}  // namespace dkf

#endif  // DKF_CHECKPOINT_SNAPSHOT_H_
