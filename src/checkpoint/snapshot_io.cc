#include "checkpoint/snapshot_io.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/binary_io.h"
#include "common/string_util.h"
#include "core/synopsis_io.h"

namespace dkf {

namespace {

constexpr size_t kMagicBytes = 8;

/// Guards a decoded element count against the bytes actually left, so a
/// corrupted count fails cleanly instead of attempting a huge allocation.
Status CheckCount(const BinaryReader& reader, uint64_t count,
                  size_t elem_bytes, const char* what) {
  const size_t divisor = elem_bytes == 0 ? 1 : elem_bytes;
  if (count > reader.remaining() / divisor) {
    return Status::OutOfRange(StrFormat(
        "truncated snapshot: %s count %llu exceeds the remaining payload",
        what, static_cast<unsigned long long>(count)));
  }
  return Status::OK();
}

void EncodeVector(BinaryWriter& writer, const Vector& v) {
  writer.WriteU64(v.size());
  for (size_t i = 0; i < v.size(); ++i) writer.WriteF64(v[i]);
}

Result<Vector> DecodeVector(BinaryReader& reader) {
  DKF_ASSIGN_OR_RETURN(uint64_t size, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, size, 8, "vector"));
  Vector v(static_cast<size_t>(size));
  for (size_t i = 0; i < v.size(); ++i) {
    DKF_ASSIGN_OR_RETURN(v[i], reader.ReadF64());
  }
  return v;
}

void EncodeMatrix(BinaryWriter& writer, const Matrix& m) {
  writer.WriteU64(m.rows());
  writer.WriteU64(m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) writer.WriteF64(m(r, c));
  }
}

Result<Matrix> DecodeMatrix(BinaryReader& reader) {
  DKF_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadU64());
  DKF_ASSIGN_OR_RETURN(uint64_t cols, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, rows, 8, "matrix rows"));
  if (cols > 0) {
    DKF_RETURN_IF_ERROR(CheckCount(reader, rows * cols, 8, "matrix cells"));
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      DKF_ASSIGN_OR_RETURN(m(r, c), reader.ReadF64());
    }
  }
  return m;
}

void EncodeRngState(BinaryWriter& writer, const Rng::State& state) {
  for (uint64_t word : state.words) writer.WriteU64(word);
  writer.WriteBool(state.has_cached_gaussian);
  writer.WriteF64(state.cached_gaussian);
}

Result<Rng::State> DecodeRngState(BinaryReader& reader) {
  Rng::State state;
  for (uint64_t& word : state.words) {
    DKF_ASSIGN_OR_RETURN(word, reader.ReadU64());
  }
  DKF_ASSIGN_OR_RETURN(state.has_cached_gaussian, reader.ReadBool());
  DKF_ASSIGN_OR_RETURN(state.cached_gaussian, reader.ReadF64());
  return state;
}

void EncodeFaultStats(BinaryWriter& writer, const ProtocolFaultStats& s) {
  writer.WriteI64(s.divergence_events);
  writer.WriteI64(s.resyncs_sent);
  writer.WriteI64(s.heartbeats_sent);
  writer.WriteI64(s.ambiguous_acks);
  writer.WriteI64(s.ticks_diverged);
  writer.WriteI64(s.max_recovery_ticks);
  writer.WriteI64(s.resyncs_applied);
  writer.WriteI64(s.heartbeats_received);
  writer.WriteI64(s.rejected_stale);
  writer.WriteI64(s.rejected_corrupt);
  writer.WriteI64(s.sequence_gaps);
  writer.WriteI64(s.degraded_ticks);
}

Result<ProtocolFaultStats> DecodeFaultStats(BinaryReader& reader) {
  ProtocolFaultStats s;
  DKF_ASSIGN_OR_RETURN(s.divergence_events, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.resyncs_sent, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.heartbeats_sent, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.ambiguous_acks, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.ticks_diverged, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.max_recovery_ticks, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.resyncs_applied, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.heartbeats_received, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.rejected_stale, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.rejected_corrupt, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.sequence_gaps, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.degraded_ticks, reader.ReadI64());
  return s;
}

void EncodeChannelStats(BinaryWriter& writer, const ChannelStats& s) {
  writer.WriteI64(s.messages);
  writer.WriteI64(s.bytes);
  writer.WriteI64(s.dropped);
  writer.WriteI64(s.corrupted);
  writer.WriteI64(s.delayed);
  writer.WriteI64(s.ack_lost);
  writer.WriteI64(s.outage_dropped);
}

Result<ChannelStats> DecodeChannelStats(BinaryReader& reader) {
  ChannelStats s;
  DKF_ASSIGN_OR_RETURN(s.messages, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.bytes, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.dropped, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.corrupted, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.delayed, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.ack_lost, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(s.outage_dropped, reader.ReadI64());
  return s;
}

void EncodeFullState(BinaryWriter& writer, const KalmanFilter::FullState& f) {
  EncodeVector(writer, f.x);
  EncodeMatrix(writer, f.p);
  writer.WriteI64(f.step);
  EncodeVector(writer, f.last_innovation);
  EncodeMatrix(writer, f.process_noise);
  EncodeMatrix(writer, f.measurement_noise);
  writer.WriteU8(f.phase);
  writer.WriteU8(f.ss_mode);
  writer.WriteI64(f.ss_streak1);
  writer.WriteI64(f.ss_streak2);
  writer.WriteI64(f.predicts_since_correct);
  writer.WriteI64(f.ss_have_prev);
  EncodeMatrix(writer, f.ss_prev_post[0]);
  EncodeMatrix(writer, f.ss_prev_post[1]);
  EncodeMatrix(writer, f.ss_prev_gain);
  writer.WriteI64(f.ss_period);
  writer.WriteI64(f.ss_pending_priors);
  writer.WriteI64(f.ss_capture_idx);
  writer.WriteI64(f.ss_idx);
  EncodeMatrix(writer, f.ss_gain[0]);
  EncodeMatrix(writer, f.ss_gain[1]);
  EncodeMatrix(writer, f.ss_prior_p[0]);
  EncodeMatrix(writer, f.ss_prior_p[1]);
  EncodeMatrix(writer, f.ss_post_p[0]);
  EncodeMatrix(writer, f.ss_post_p[1]);
}

Result<int32_t> DecodeI32(BinaryReader& reader, const char* what) {
  DKF_ASSIGN_OR_RETURN(int64_t wide, reader.ReadI64());
  if (wide < INT32_MIN || wide > INT32_MAX) {
    return Status::InvalidArgument(
        StrFormat("snapshot field %s out of 32-bit range", what));
  }
  return static_cast<int32_t>(wide);
}

Result<KalmanFilter::FullState> DecodeFullState(BinaryReader& reader) {
  KalmanFilter::FullState f;
  DKF_ASSIGN_OR_RETURN(f.x, DecodeVector(reader));
  DKF_ASSIGN_OR_RETURN(f.p, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.step, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(f.last_innovation, DecodeVector(reader));
  DKF_ASSIGN_OR_RETURN(f.process_noise, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.measurement_noise, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.phase, reader.ReadU8());
  DKF_ASSIGN_OR_RETURN(f.ss_mode, reader.ReadU8());
  DKF_ASSIGN_OR_RETURN(f.ss_streak1, DecodeI32(reader, "ss_streak1"));
  DKF_ASSIGN_OR_RETURN(f.ss_streak2, DecodeI32(reader, "ss_streak2"));
  DKF_ASSIGN_OR_RETURN(f.predicts_since_correct, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(f.ss_have_prev, DecodeI32(reader, "ss_have_prev"));
  DKF_ASSIGN_OR_RETURN(f.ss_prev_post[0], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_prev_post[1], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_prev_gain, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_period, DecodeI32(reader, "ss_period"));
  DKF_ASSIGN_OR_RETURN(f.ss_pending_priors,
                       DecodeI32(reader, "ss_pending_priors"));
  DKF_ASSIGN_OR_RETURN(f.ss_capture_idx, DecodeI32(reader, "ss_capture_idx"));
  DKF_ASSIGN_OR_RETURN(f.ss_idx, DecodeI32(reader, "ss_idx"));
  DKF_ASSIGN_OR_RETURN(f.ss_gain[0], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_gain[1], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_prior_p[0], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_prior_p[1], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_post_p[0], DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(f.ss_post_p[1], DecodeMatrix(reader));
  return f;
}

void EncodeMessage(BinaryWriter& writer, const Message& message,
                   uint32_t version) {
  writer.WriteU8(static_cast<uint8_t>(message.type));
  writer.WriteI64(message.source_id);
  writer.WriteI64(message.tick);
  EncodeVector(writer, message.payload);
  writer.WriteU64(message.model_index);
  writer.WriteU32(message.sequence);
  writer.WriteU32(message.checksum);
  EncodeVector(writer, message.resync_state);
  EncodeMatrix(writer, message.resync_covariance);
  writer.WriteI64(message.resync_step);
  if (version >= 4) EncodeVector(writer, message.resync_adapt);
}

Result<Message> DecodeMessage(BinaryReader& reader, uint32_t version) {
  Message message;
  DKF_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  if (type > static_cast<uint8_t>(MessageType::kHeartbeat)) {
    return Status::InvalidArgument(
        StrFormat("invalid message type %u in snapshot", type));
  }
  message.type = static_cast<MessageType>(type);
  DKF_ASSIGN_OR_RETURN(int32_t source_id, DecodeI32(reader, "source_id"));
  message.source_id = source_id;
  DKF_ASSIGN_OR_RETURN(message.tick, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(message.payload, DecodeVector(reader));
  DKF_ASSIGN_OR_RETURN(uint64_t model_index, reader.ReadU64());
  message.model_index = static_cast<size_t>(model_index);
  DKF_ASSIGN_OR_RETURN(message.sequence, reader.ReadU32());
  DKF_ASSIGN_OR_RETURN(message.checksum, reader.ReadU32());
  DKF_ASSIGN_OR_RETURN(message.resync_state, DecodeVector(reader));
  DKF_ASSIGN_OR_RETURN(message.resync_covariance, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(message.resync_step, reader.ReadI64());
  if (version >= 4) {
    DKF_ASSIGN_OR_RETURN(message.resync_adapt, DecodeVector(reader));
  }
  return message;
}

/// The finiteness contract for a serialized model recipe, applied on
/// both paths (same rule as the synopsis codec).
Status RequireFiniteModel(const StateModel& model) {
  DKF_RETURN_IF_ERROR(RequireFinite(model.options.transition, "transition"));
  DKF_RETURN_IF_ERROR(RequireFinite(model.options.measurement, "measurement"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.process_noise, "process_noise"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.measurement_noise, "measurement_noise"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.initial_state, "initial_state"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.initial_covariance, "initial_covariance"));
  return Status::OK();
}

Status EncodeModel(BinaryWriter& writer, const StateModel& model) {
  if (model.options.transition_fn) {
    return Status::Unimplemented(
        "time-varying transitions are not serializable");
  }
  DKF_RETURN_IF_ERROR(RequireFiniteModel(model));
  writer.WriteString(model.name);
  writer.WriteU64(model.measurement_dim);
  EncodeMatrix(writer, model.options.transition);
  EncodeMatrix(writer, model.options.measurement);
  EncodeMatrix(writer, model.options.process_noise);
  EncodeMatrix(writer, model.options.measurement_noise);
  EncodeVector(writer, model.options.initial_state);
  EncodeMatrix(writer, model.options.initial_covariance);
  writer.WriteBool(model.options.steady_state_fast_path);
  writer.WriteF64(model.options.steady_state_tolerance);
  return Status::OK();
}

Result<StateModel> DecodeModel(BinaryReader& reader) {
  StateModel model;
  DKF_ASSIGN_OR_RETURN(model.name, reader.ReadString());
  DKF_ASSIGN_OR_RETURN(uint64_t dim, reader.ReadU64());
  model.measurement_dim = static_cast<size_t>(dim);
  DKF_ASSIGN_OR_RETURN(model.options.transition, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(model.options.measurement, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(model.options.process_noise, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(model.options.measurement_noise, DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(model.options.initial_state, DecodeVector(reader));
  DKF_ASSIGN_OR_RETURN(model.options.initial_covariance,
                       DecodeMatrix(reader));
  DKF_ASSIGN_OR_RETURN(model.options.steady_state_fast_path,
                       reader.ReadBool());
  DKF_ASSIGN_OR_RETURN(model.options.steady_state_tolerance,
                       reader.ReadF64());
  if (!std::isfinite(model.options.steady_state_tolerance)) {
    return Status::InvalidArgument(
        "steady_state_tolerance contains a non-finite value");
  }
  DKF_RETURN_IF_ERROR(RequireFiniteModel(model));
  return model;
}

void EncodeOptionalDouble(BinaryWriter& writer,
                          const std::optional<double>& value) {
  writer.WriteBool(value.has_value());
  if (value.has_value()) writer.WriteF64(*value);
}

Result<std::optional<double>> DecodeOptionalDouble(BinaryReader& reader) {
  DKF_ASSIGN_OR_RETURN(bool present, reader.ReadBool());
  std::optional<double> value;
  if (present) {
    DKF_ASSIGN_OR_RETURN(double raw, reader.ReadF64());
    value = raw;
  }
  return value;
}

void EncodeNodeState(BinaryWriter& writer,
                     const SourceNode::CheckpointState& node,
                     uint32_t version) {
  writer.WriteF64(node.delta);
  EncodeOptionalDouble(writer, node.smoothing_factor);
  writer.WriteF64(node.smoothing_measurement_variance);
  EncodeFullState(writer, node.mirror);
  if (node.smoothing_factor.has_value()) {
    EncodeFullState(writer, node.smoother_filter);
    writer.WriteI64(node.smoother_count);
  }
  writer.WriteF64(node.energy_transmission);
  writer.WriteF64(node.energy_compute);
  writer.WriteF64(node.energy_sensing);
  writer.WriteI64(node.readings);
  writer.WriteI64(node.updates_sent);
  writer.WriteU32(node.next_sequence);
  writer.WriteBool(node.pending);
  writer.WriteI64(node.pending_since);
  writer.WriteU32(node.first_resync_sequence);
  writer.WriteI64(node.resync_attempts);
  writer.WriteI64(node.last_resync_tick);
  writer.WriteI64(node.last_send_tick);
  EncodeFaultStats(writer, node.faults);
  if (version >= 4) EncodeVector(writer, node.adapt);
}

Result<SourceNode::CheckpointState> DecodeNodeState(BinaryReader& reader,
                                                    uint32_t version) {
  SourceNode::CheckpointState node;
  DKF_ASSIGN_OR_RETURN(node.delta, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(node.smoothing_factor, DecodeOptionalDouble(reader));
  DKF_ASSIGN_OR_RETURN(node.smoothing_measurement_variance, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(node.mirror, DecodeFullState(reader));
  if (node.smoothing_factor.has_value()) {
    DKF_ASSIGN_OR_RETURN(node.smoother_filter, DecodeFullState(reader));
    DKF_ASSIGN_OR_RETURN(node.smoother_count, reader.ReadI64());
  }
  DKF_ASSIGN_OR_RETURN(node.energy_transmission, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(node.energy_compute, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(node.energy_sensing, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(node.readings, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(node.updates_sent, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(node.next_sequence, reader.ReadU32());
  DKF_ASSIGN_OR_RETURN(node.pending, reader.ReadBool());
  DKF_ASSIGN_OR_RETURN(node.pending_since, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(node.first_resync_sequence, reader.ReadU32());
  DKF_ASSIGN_OR_RETURN(node.resync_attempts,
                       DecodeI32(reader, "resync_attempts"));
  DKF_ASSIGN_OR_RETURN(node.last_resync_tick, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(node.last_send_tick, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(node.faults, DecodeFaultStats(reader));
  if (version >= 4) {
    DKF_ASSIGN_OR_RETURN(node.adapt, DecodeVector(reader));
  }
  return node;
}

void EncodeLink(BinaryWriter& writer, const ServerNode::LinkSnapshot& link,
                uint32_t version) {
  writer.WriteU32(link.last_sequence);
  writer.WriteI64(link.last_valid_tick);
  writer.WriteI64(link.last_resync_tick);
  writer.WriteI64(link.last_update_tick);
  EncodeFullState(writer, link.predictor);
  if (version >= 4) EncodeVector(writer, link.adapt);
}

Result<ServerNode::LinkSnapshot> DecodeLink(BinaryReader& reader,
                                            uint32_t version) {
  ServerNode::LinkSnapshot link;
  DKF_ASSIGN_OR_RETURN(link.last_sequence, reader.ReadU32());
  DKF_ASSIGN_OR_RETURN(link.last_valid_tick, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(link.last_resync_tick, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(link.last_update_tick, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(link.predictor, DecodeFullState(reader));
  if (version >= 4) {
    DKF_ASSIGN_OR_RETURN(link.adapt, DecodeVector(reader));
  }
  return link;
}

void EncodeChannelLane(BinaryWriter& writer,
                       const Channel::SourceCheckpoint& lane,
                       uint32_t version) {
  EncodeChannelStats(writer, lane.stats);
  writer.WriteBool(lane.has_rng);
  if (lane.has_rng) EncodeRngState(writer, lane.rng);
  writer.WriteBool(lane.has_ge_state);
  if (lane.has_ge_state) writer.WriteBool(lane.ge_bad);
  writer.WriteU64(lane.in_flight.size());
  for (const Channel::InFlightEntry& entry : lane.in_flight) {
    writer.WriteI64(entry.due);
    writer.WriteBool(entry.ack_lost);
    writer.WriteBool(entry.corrupted);
    EncodeMessage(writer, entry.message, version);
  }
  writer.WriteU64(lane.deferred_acks.size());
  for (uint32_t ack : lane.deferred_acks) writer.WriteU32(ack);
}

Result<Channel::SourceCheckpoint> DecodeChannelLane(BinaryReader& reader,
                                                    uint32_t version) {
  Channel::SourceCheckpoint lane;
  DKF_ASSIGN_OR_RETURN(lane.stats, DecodeChannelStats(reader));
  DKF_ASSIGN_OR_RETURN(lane.has_rng, reader.ReadBool());
  if (lane.has_rng) {
    DKF_ASSIGN_OR_RETURN(lane.rng, DecodeRngState(reader));
  }
  DKF_ASSIGN_OR_RETURN(lane.has_ge_state, reader.ReadBool());
  if (lane.has_ge_state) {
    DKF_ASSIGN_OR_RETURN(lane.ge_bad, reader.ReadBool());
  }
  DKF_ASSIGN_OR_RETURN(uint64_t in_flight, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, in_flight, 8, "in-flight"));
  lane.in_flight.reserve(static_cast<size_t>(in_flight));
  for (uint64_t i = 0; i < in_flight; ++i) {
    Channel::InFlightEntry entry;
    DKF_ASSIGN_OR_RETURN(entry.due, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(entry.ack_lost, reader.ReadBool());
    DKF_ASSIGN_OR_RETURN(entry.corrupted, reader.ReadBool());
    DKF_ASSIGN_OR_RETURN(entry.message, DecodeMessage(reader, version));
    lane.in_flight.push_back(std::move(entry));
  }
  DKF_ASSIGN_OR_RETURN(uint64_t acks, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, acks, 4, "deferred-ack"));
  lane.deferred_acks.reserve(static_cast<size_t>(acks));
  for (uint64_t i = 0; i < acks; ++i) {
    DKF_ASSIGN_OR_RETURN(uint32_t ack, reader.ReadU32());
    lane.deferred_acks.push_back(ack);
  }
  return lane;
}

void EncodeFaultModel(BinaryWriter& writer, const FaultModel& fault) {
  writer.WriteBool(fault.gilbert_elliott.has_value());
  if (fault.gilbert_elliott.has_value()) {
    writer.WriteF64(fault.gilbert_elliott->p_good_to_bad);
    writer.WriteF64(fault.gilbert_elliott->p_bad_to_good);
    writer.WriteF64(fault.gilbert_elliott->good_loss);
    writer.WriteF64(fault.gilbert_elliott->bad_loss);
  }
  writer.WriteBool(fault.delay.has_value());
  if (fault.delay.has_value()) {
    writer.WriteI64(fault.delay->min_ticks);
    writer.WriteI64(fault.delay->max_ticks);
  }
  writer.WriteU64(fault.outages.size());
  for (const OutageWindow& window : fault.outages) {
    writer.WriteI64(window.start);
    writer.WriteI64(window.end);
  }
  writer.WriteF64(fault.ack_loss_probability);
  writer.WriteF64(fault.corruption_probability);
  writer.WriteI64(fault.active_until);
}

Result<FaultModel> DecodeFaultModel(BinaryReader& reader) {
  FaultModel fault;
  DKF_ASSIGN_OR_RETURN(bool has_ge, reader.ReadBool());
  if (has_ge) {
    GilbertElliottLoss ge;
    DKF_ASSIGN_OR_RETURN(ge.p_good_to_bad, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(ge.p_bad_to_good, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(ge.good_loss, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(ge.bad_loss, reader.ReadF64());
    fault.gilbert_elliott = ge;
  }
  DKF_ASSIGN_OR_RETURN(bool has_delay, reader.ReadBool());
  if (has_delay) {
    DelayModel delay;
    DKF_ASSIGN_OR_RETURN(delay.min_ticks, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(delay.max_ticks, reader.ReadI64());
    fault.delay = delay;
  }
  DKF_ASSIGN_OR_RETURN(uint64_t outages, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, outages, 16, "outage"));
  fault.outages.reserve(static_cast<size_t>(outages));
  for (uint64_t i = 0; i < outages; ++i) {
    OutageWindow window;
    DKF_ASSIGN_OR_RETURN(window.start, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(window.end, reader.ReadI64());
    fault.outages.push_back(window);
  }
  DKF_ASSIGN_OR_RETURN(fault.ack_loss_probability, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(fault.corruption_probability, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(fault.active_until, reader.ReadI64());
  return fault;
}

void EncodeTraceEvent(BinaryWriter& writer, const TraceEvent& event) {
  writer.WriteI64(event.step);
  writer.WriteI64(event.source_id);
  writer.WriteU8(static_cast<uint8_t>(event.kind));
  writer.WriteU8(static_cast<uint8_t>(event.actor));
  writer.WriteF64(event.value);
  writer.WriteF64(event.aux);
  writer.WriteI64(event.detail);
}

Result<TraceEvent> DecodeTraceEvent(BinaryReader& reader) {
  TraceEvent event;
  DKF_ASSIGN_OR_RETURN(event.step, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(event.source_id, DecodeI32(reader, "event source"));
  DKF_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind >= static_cast<uint8_t>(TraceEventKind::kCount)) {
    return Status::InvalidArgument(
        StrFormat("invalid trace event kind %u in snapshot", kind));
  }
  event.kind = static_cast<TraceEventKind>(kind);
  DKF_ASSIGN_OR_RETURN(uint8_t actor, reader.ReadU8());
  if (actor >= static_cast<uint8_t>(TraceActor::kCount)) {
    return Status::InvalidArgument(
        StrFormat("invalid trace actor %u in snapshot", actor));
  }
  event.actor = static_cast<TraceActor>(actor);
  DKF_ASSIGN_OR_RETURN(event.value, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(event.aux, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(event.detail, reader.ReadI64());
  return event;
}

void EncodeSubscription(BinaryWriter& writer, const Subscription& spec,
                        uint32_t version) {
  writer.WriteI64(spec.id);
  writer.WriteU8(static_cast<uint8_t>(spec.kind));
  writer.WriteI64(spec.source_id);
  writer.WriteI64(spec.aggregate_id);
  writer.WriteF64(spec.lo);
  writer.WriteF64(spec.hi);
  writer.WriteF64(spec.uncertainty_ceiling);
  writer.WriteString(spec.description);
  if (version >= 5) writer.WriteI64(spec.group_id);
}

Result<Subscription> DecodeSubscription(BinaryReader& reader,
                                        uint32_t version) {
  Subscription spec;
  DKF_ASSIGN_OR_RETURN(spec.id, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind >= static_cast<uint8_t>(SubscriptionKind::kCount)) {
    return Status::InvalidArgument(
        StrFormat("invalid subscription kind %u in snapshot", kind));
  }
  spec.kind = static_cast<SubscriptionKind>(kind);
  DKF_ASSIGN_OR_RETURN(spec.source_id,
                       DecodeI32(reader, "subscription source"));
  DKF_ASSIGN_OR_RETURN(spec.aggregate_id,
                       DecodeI32(reader, "subscription aggregate"));
  DKF_ASSIGN_OR_RETURN(spec.lo, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(spec.hi, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(spec.uncertainty_ceiling, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(spec.description, reader.ReadString());
  if (version >= 5) {
    DKF_ASSIGN_OR_RETURN(spec.group_id,
                         DecodeI32(reader, "subscription group"));
  }
  return spec;
}

/// Whether a buffered notification belongs to the fusion subsystem —
/// dropped when downgrading below v5 (a build of that era has neither
/// the kind nor the key range).
bool IsFusedNotification(const Notification& notification) {
  return notification.kind == NotificationKind::kFusedUpdate ||
         IsFusedSourceKey(static_cast<int32_t>(notification.source_id));
}

void EncodeNotification(BinaryWriter& writer,
                        const Notification& notification) {
  writer.WriteI64(notification.step);
  writer.WriteI64(notification.source_id);
  writer.WriteI64(notification.subscription_id);
  writer.WriteU8(static_cast<uint8_t>(notification.kind));
  writer.WriteF64(notification.value);
  writer.WriteF64(notification.aux);
}

Result<Notification> DecodeNotification(BinaryReader& reader) {
  Notification notification;
  DKF_ASSIGN_OR_RETURN(notification.step, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(notification.source_id,
                       DecodeI32(reader, "notification source"));
  DKF_ASSIGN_OR_RETURN(notification.subscription_id, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind >= static_cast<uint8_t>(NotificationKind::kCount)) {
    return Status::InvalidArgument(
        StrFormat("invalid notification kind %u in snapshot", kind));
  }
  notification.kind = static_cast<NotificationKind>(kind);
  DKF_ASSIGN_OR_RETURN(notification.value, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(notification.aux, reader.ReadF64());
  return notification;
}

Status EncodePayload(BinaryWriter& writer, const EngineSnapshot& snapshot,
                     uint32_t version) {
  // Configuration.
  writer.WriteF64(snapshot.energy.instructions_per_bit);
  writer.WriteF64(snapshot.energy.instructions_per_filter_step);
  writer.WriteF64(snapshot.energy.instructions_per_reading);
  writer.WriteF64(snapshot.channel.drop_probability);
  writer.WriteU64(snapshot.channel.seed);
  writer.WriteBool(snapshot.channel.per_source_rng);
  EncodeFaultModel(writer, snapshot.channel.fault);
  writer.WriteF64(snapshot.default_delta);
  writer.WriteI64(snapshot.protocol.heartbeat_interval);
  writer.WriteI64(snapshot.protocol.resync_burst_retries);
  writer.WriteI64(snapshot.protocol.resync_retry_backoff);
  writer.WriteI64(snapshot.protocol.staleness_budget);
  writer.WriteF64(snapshot.protocol.degraded_inflation);
  if (version >= 4) {
    // Adaptive-noise configuration (snapshot v4). Older targets drop it;
    // their decoders leave the config default (adaptation disabled).
    const AdaptiveNoiseConfig& a = snapshot.protocol.adaptive;
    writer.WriteBool(a.enabled);
    writer.WriteF64(a.ratio_alpha);
    writer.WriteF64(a.corr_alpha);
    writer.WriteI64(a.warmup_corrections);
    writer.WriteF64(a.widen_threshold);
    writer.WriteF64(a.shrink_threshold);
    writer.WriteF64(a.widen_rate);
    writer.WriteF64(a.shrink_rate);
    writer.WriteF64(a.r_scale_floor);
    writer.WriteF64(a.r_scale_ceiling);
    writer.WriteF64(a.corr_q_threshold);
    writer.WriteF64(a.q_rate);
    writer.WriteF64(a.q_scale_floor);
    writer.WriteF64(a.q_scale_ceiling);
    writer.WriteF64(a.variance_floor);
    writer.WriteBool(a.quantization_floor);
    writer.WriteI64(a.holdover_gap);
    writer.WriteI64(a.lock_streak);
  }
  writer.WriteI64(snapshot.num_shards);

  // Progress.
  writer.WriteI64(snapshot.ticks);
  writer.WriteI64(snapshot.control_messages);

  // Per-source state.
  writer.WriteU64(snapshot.sources.size());
  for (const SourceSnapshot& source : snapshot.sources) {
    writer.WriteI64(source.source_id);
    DKF_RETURN_IF_ERROR(EncodeModel(writer, source.model));
    EncodeNodeState(writer, source.node, version);
    EncodeLink(writer, source.link, version);
    EncodeChannelLane(writer, source.channel, version);
  }

  EncodeFaultStats(writer, snapshot.server_faults);
  writer.WriteBool(snapshot.has_shared_rng);
  if (snapshot.has_shared_rng) EncodeRngState(writer, snapshot.shared_rng);

  // Queries and aggregates.
  writer.WriteU64(snapshot.queries.size());
  for (const ContinuousQuery& query : snapshot.queries) {
    writer.WriteI64(query.id);
    writer.WriteI64(query.source_id);
    writer.WriteF64(query.precision);
    EncodeOptionalDouble(writer, query.smoothing_factor);
    writer.WriteString(query.description);
  }
  writer.WriteU64(snapshot.aggregates.size());
  for (const AggregateSnapshot& aggregate : snapshot.aggregates) {
    writer.WriteI64(aggregate.id);
    writer.WriteU64(aggregate.source_ids.size());
    for (int source_id : aggregate.source_ids) writer.WriteI64(source_id);
    writer.WriteU64(aggregate.synthetic_query_ids.size());
    for (int query_id : aggregate.synthetic_query_ids) {
      writer.WriteI64(query_id);
    }
  }

  // Observability.
  writer.WriteBool(snapshot.obs.enabled);
  if (snapshot.obs.enabled) {
    writer.WriteU64(snapshot.obs.options.ring_capacity);
    writer.WriteBool(snapshot.obs.options.record_timing);
    writer.WriteU64(snapshot.obs.events.size());
    for (const TraceEvent& event : snapshot.obs.events) {
      EncodeTraceEvent(writer, event);
    }
    writer.WriteU64(static_cast<uint64_t>(kNumTraceEventKinds));
    for (int64_t count : snapshot.obs.kind_counts) writer.WriteI64(count);
    writer.WriteI64(snapshot.obs.dropped);
    writer.WriteU64(snapshot.obs.gauges.size());
    for (const auto& [name, value] : snapshot.obs.gauges) {
      writer.WriteString(name);
      writer.WriteF64(value);
    }
  }

  // Serving front-end (snapshot v2). v1 files end here. A downgrade
  // below v5 drops the fusion subsystem, so its standing subscriptions
  // and buffered notifications are filtered out of the serve section
  // too — a pre-fusion decoder would reject the unknown kind and key
  // range, and a build of that era could never have written them.
  if (version < 2) return Status::OK();
  const auto keep_subscription = [version](const Subscription& spec) {
    return version >= 5 || spec.kind != SubscriptionKind::kFused;
  };
  const auto keep_notification = [version](const Notification& n) {
    return version >= 5 || !IsFusedNotification(n);
  };
  writer.WriteU64(snapshot.serve.options.max_buffered_notifications);
  uint64_t kept_subscriptions = 0;
  for (const ServeSubscriptionSnapshot& sub : snapshot.serve.subscriptions) {
    if (keep_subscription(sub.spec)) ++kept_subscriptions;
  }
  writer.WriteU64(kept_subscriptions);
  for (const ServeSubscriptionSnapshot& sub : snapshot.serve.subscriptions) {
    if (!keep_subscription(sub.spec)) continue;
    EncodeSubscription(writer, sub.spec, version);
    writer.WriteBool(sub.inside);
    writer.WriteBool(sub.fired);
  }
  uint64_t kept_batches = 0;
  for (const NotificationBatch& batch : snapshot.serve.pending) {
    for (const Notification& notification : batch.notifications) {
      if (keep_notification(notification)) {
        ++kept_batches;
        break;
      }
    }
  }
  writer.WriteU64(kept_batches);
  for (const NotificationBatch& batch : snapshot.serve.pending) {
    uint64_t kept = 0;
    for (const Notification& notification : batch.notifications) {
      if (keep_notification(notification)) ++kept;
    }
    if (kept == 0) continue;
    writer.WriteI64(batch.step);
    writer.WriteU64(kept);
    for (const Notification& notification : batch.notifications) {
      if (keep_notification(notification)) {
        EncodeNotification(writer, notification);
      }
    }
  }
  writer.WriteI64(snapshot.serve.drained_through_step);
  writer.WriteI64(snapshot.serve.notifications);
  writer.WriteI64(snapshot.serve.dropped);
  writer.WriteI64(snapshot.serve.touched);
  writer.WriteI64(snapshot.serve.affected);

  // Delta governor (snapshot v3). v2 files end here.
  if (version < 3) return Status::OK();
  writer.WriteBool(snapshot.governor.enabled);
  if (snapshot.governor.enabled) {
    const GovernorOptions& g = snapshot.governor.options;
    writer.WriteI64(g.epoch_ticks);
    writer.WriteF64(g.budget_bytes_per_tick);
    writer.WriteF64(g.delta_floor);
    writer.WriteF64(g.delta_ceiling);
    writer.WriteF64(g.max_step_ratio);
    writer.WriteF64(g.dead_band);
    writer.WriteF64(g.ewma_alpha);
    writer.WriteF64(g.process_noise);
    writer.WriteF64(g.measurement_noise);
    writer.WriteI64(snapshot.governor.epochs);
    writer.WriteU64(snapshot.governor.states.size());
    for (const GovernorSourceSnapshot& entry : snapshot.governor.states) {
      writer.WriteI64(entry.source_id);
      writer.WriteF64(entry.state.ewma_bytes);
      writer.WriteF64(entry.state.ewma_updates);
      writer.WriteI64(entry.state.last_bytes);
      writer.WriteI64(entry.state.last_updates);
      writer.WriteF64(entry.state.intensity);
      writer.WriteF64(entry.state.variance);
      writer.WriteBool(entry.state.measured);
      writer.WriteBool(entry.state.frozen);
      writer.WriteF64(entry.state.held_delta);
    }
  }

  // Multi-sensor fusion (snapshot v5). v3/v4 files end here.
  if (version < 5) return Status::OK();
  writer.WriteU64(snapshot.fused_queries.size());
  for (const FusedQuery& query : snapshot.fused_queries) {
    writer.WriteI64(query.id);
    writer.WriteI64(query.group_id);
    writer.WriteF64(query.precision);
    writer.WriteString(query.description);
  }
  writer.WriteU64(snapshot.fusion_groups.size());
  for (const FusionGroupSnapshot& entry : snapshot.fusion_groups) {
    const FusionEngine::GroupState& group = entry.group;
    if (entry.member_channels.size() != group.members.size()) {
      return Status::InvalidArgument(StrFormat(
          "fusion group %d has %zu channel lanes for %zu members",
          group.group_id, entry.member_channels.size(),
          group.members.size()));
    }
    writer.WriteI64(group.group_id);
    DKF_RETURN_IF_ERROR(EncodeModel(writer, group.model));
    writer.WriteF64(group.delta);
    writer.WriteF64(group.base_delta);
    writer.WriteU8(static_cast<uint8_t>(group.norm));
    EncodeFullState(writer, group.posterior);
    writer.WriteI64(group.version);
    writer.WriteI64(group.last_valid_tick);
    EncodeFaultStats(writer, group.faults);
    writer.WriteI64(group.updates_applied);
    writer.WriteI64(group.suppressed);
    writer.WriteI64(group.transmissions);
    writer.WriteI64(group.broadcasts);
    writer.WriteI64(group.broadcast_bytes);
    writer.WriteU64(group.members.size());
    for (size_t m = 0; m < group.members.size(); ++m) {
      const FusionEngine::MemberState& member = group.members[m];
      writer.WriteI64(member.source_id);
      EncodeFullState(writer, member.mirror);
      writer.WriteI64(member.mirror_version);
      writer.WriteBool(member.pending);
      writer.WriteI64(member.pending_since);
      writer.WriteI64(member.resync_attempts);
      writer.WriteI64(member.last_resync_tick);
      writer.WriteI64(member.last_send_tick);
      writer.WriteU32(member.next_sequence);
      writer.WriteU32(member.last_sequence);
      writer.WriteI64(member.synced_version);
      EncodeChannelLane(writer, entry.member_channels[m], version);
    }
  }
  return Status::OK();
}

Result<EngineSnapshot> DecodePayload(BinaryReader& reader,
                                     uint32_t version) {
  EngineSnapshot snapshot;
  DKF_ASSIGN_OR_RETURN(snapshot.energy.instructions_per_bit,
                       reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(snapshot.energy.instructions_per_filter_step,
                       reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(snapshot.energy.instructions_per_reading,
                       reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(snapshot.channel.drop_probability, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(snapshot.channel.seed, reader.ReadU64());
  DKF_ASSIGN_OR_RETURN(snapshot.channel.per_source_rng, reader.ReadBool());
  DKF_ASSIGN_OR_RETURN(snapshot.channel.fault, DecodeFaultModel(reader));
  DKF_ASSIGN_OR_RETURN(snapshot.default_delta, reader.ReadF64());
  DKF_ASSIGN_OR_RETURN(snapshot.protocol.heartbeat_interval,
                       reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(snapshot.protocol.resync_burst_retries,
                       DecodeI32(reader, "resync_burst_retries"));
  DKF_ASSIGN_OR_RETURN(snapshot.protocol.resync_retry_backoff,
                       reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(snapshot.protocol.staleness_budget, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(snapshot.protocol.degraded_inflation,
                       reader.ReadF64());
  if (version >= 4) {
    AdaptiveNoiseConfig& a = snapshot.protocol.adaptive;
    DKF_ASSIGN_OR_RETURN(a.enabled, reader.ReadBool());
    DKF_ASSIGN_OR_RETURN(a.ratio_alpha, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.corr_alpha, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.warmup_corrections, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(a.widen_threshold, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.shrink_threshold, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.widen_rate, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.shrink_rate, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.r_scale_floor, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.r_scale_ceiling, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.corr_q_threshold, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.q_rate, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.q_scale_floor, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.q_scale_ceiling, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.variance_floor, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(a.quantization_floor, reader.ReadBool());
    DKF_ASSIGN_OR_RETURN(a.holdover_gap, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(a.lock_streak, reader.ReadI64());
  }
  DKF_ASSIGN_OR_RETURN(snapshot.num_shards, DecodeI32(reader, "num_shards"));
  if (snapshot.num_shards < 1) {
    return Status::InvalidArgument("snapshot shard count must be >= 1");
  }

  DKF_ASSIGN_OR_RETURN(snapshot.ticks, reader.ReadI64());
  DKF_ASSIGN_OR_RETURN(snapshot.control_messages, reader.ReadI64());

  DKF_ASSIGN_OR_RETURN(uint64_t num_sources, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, num_sources, 8, "source"));
  snapshot.sources.reserve(static_cast<size_t>(num_sources));
  int previous_id = INT32_MIN;
  for (uint64_t i = 0; i < num_sources; ++i) {
    SourceSnapshot source;
    DKF_ASSIGN_OR_RETURN(source.source_id, DecodeI32(reader, "source id"));
    if (source.source_id <= previous_id) {
      return Status::InvalidArgument(
          "snapshot sources must have strictly ascending ids");
    }
    previous_id = source.source_id;
    DKF_ASSIGN_OR_RETURN(source.model, DecodeModel(reader));
    DKF_ASSIGN_OR_RETURN(source.node, DecodeNodeState(reader, version));
    DKF_ASSIGN_OR_RETURN(source.link, DecodeLink(reader, version));
    DKF_ASSIGN_OR_RETURN(source.channel, DecodeChannelLane(reader, version));
    snapshot.sources.push_back(std::move(source));
  }

  DKF_ASSIGN_OR_RETURN(snapshot.server_faults, DecodeFaultStats(reader));
  DKF_ASSIGN_OR_RETURN(snapshot.has_shared_rng, reader.ReadBool());
  if (snapshot.has_shared_rng) {
    DKF_ASSIGN_OR_RETURN(snapshot.shared_rng, DecodeRngState(reader));
  }

  DKF_ASSIGN_OR_RETURN(uint64_t num_queries, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, num_queries, 8, "query"));
  snapshot.queries.reserve(static_cast<size_t>(num_queries));
  for (uint64_t i = 0; i < num_queries; ++i) {
    ContinuousQuery query;
    DKF_ASSIGN_OR_RETURN(query.id, DecodeI32(reader, "query id"));
    DKF_ASSIGN_OR_RETURN(query.source_id, DecodeI32(reader, "query source"));
    DKF_ASSIGN_OR_RETURN(query.precision, reader.ReadF64());
    DKF_ASSIGN_OR_RETURN(query.smoothing_factor, DecodeOptionalDouble(reader));
    DKF_ASSIGN_OR_RETURN(query.description, reader.ReadString());
    snapshot.queries.push_back(std::move(query));
  }

  DKF_ASSIGN_OR_RETURN(uint64_t num_aggregates, reader.ReadU64());
  DKF_RETURN_IF_ERROR(CheckCount(reader, num_aggregates, 8, "aggregate"));
  snapshot.aggregates.reserve(static_cast<size_t>(num_aggregates));
  for (uint64_t i = 0; i < num_aggregates; ++i) {
    AggregateSnapshot aggregate;
    DKF_ASSIGN_OR_RETURN(aggregate.id, DecodeI32(reader, "aggregate id"));
    DKF_ASSIGN_OR_RETURN(uint64_t members, reader.ReadU64());
    DKF_RETURN_IF_ERROR(CheckCount(reader, members, 8, "aggregate member"));
    aggregate.source_ids.reserve(static_cast<size_t>(members));
    for (uint64_t m = 0; m < members; ++m) {
      DKF_ASSIGN_OR_RETURN(int member, DecodeI32(reader, "member id"));
      aggregate.source_ids.push_back(member);
    }
    DKF_ASSIGN_OR_RETURN(uint64_t synthetics, reader.ReadU64());
    DKF_RETURN_IF_ERROR(
        CheckCount(reader, synthetics, 8, "synthetic query"));
    aggregate.synthetic_query_ids.reserve(static_cast<size_t>(synthetics));
    for (uint64_t s = 0; s < synthetics; ++s) {
      DKF_ASSIGN_OR_RETURN(int query_id, DecodeI32(reader, "synthetic id"));
      aggregate.synthetic_query_ids.push_back(query_id);
    }
    snapshot.aggregates.push_back(std::move(aggregate));
  }

  DKF_ASSIGN_OR_RETURN(snapshot.obs.enabled, reader.ReadBool());
  if (snapshot.obs.enabled) {
    DKF_ASSIGN_OR_RETURN(uint64_t capacity, reader.ReadU64());
    snapshot.obs.options.ring_capacity = static_cast<size_t>(capacity);
    DKF_ASSIGN_OR_RETURN(snapshot.obs.options.record_timing,
                         reader.ReadBool());
    DKF_ASSIGN_OR_RETURN(uint64_t num_events, reader.ReadU64());
    DKF_RETURN_IF_ERROR(CheckCount(reader, num_events, 34, "trace event"));
    snapshot.obs.events.reserve(static_cast<size_t>(num_events));
    for (uint64_t i = 0; i < num_events; ++i) {
      DKF_ASSIGN_OR_RETURN(TraceEvent event, DecodeTraceEvent(reader));
      snapshot.obs.events.push_back(event);
    }
    DKF_ASSIGN_OR_RETURN(uint64_t num_kinds, reader.ReadU64());
    // Kinds are append-only, so an older file carries a prefix of this
    // build's enumerators (v1 predates the serving-layer kinds); more
    // kinds than the build knows means a file from a newer build.
    if (num_kinds > static_cast<uint64_t>(kNumTraceEventKinds)) {
      return Status::InvalidArgument(StrFormat(
          "snapshot has %llu trace event kinds, this build knows %d",
          static_cast<unsigned long long>(num_kinds), kNumTraceEventKinds));
    }
    for (uint64_t k = 0; k < num_kinds; ++k) {
      DKF_ASSIGN_OR_RETURN(snapshot.obs.kind_counts[static_cast<size_t>(k)],
                           reader.ReadI64());
    }
    DKF_ASSIGN_OR_RETURN(snapshot.obs.dropped, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(uint64_t num_gauges, reader.ReadU64());
    DKF_RETURN_IF_ERROR(CheckCount(reader, num_gauges, 16, "gauge"));
    for (uint64_t i = 0; i < num_gauges; ++i) {
      DKF_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
      DKF_ASSIGN_OR_RETURN(double value, reader.ReadF64());
      snapshot.obs.gauges[std::move(name)] = value;
    }
  }

  // Serving front-end — absent from v1 files (ServeSnapshot defaults).
  if (version >= 2) {
    DKF_ASSIGN_OR_RETURN(snapshot.serve.options.max_buffered_notifications,
                         reader.ReadU64());
    DKF_ASSIGN_OR_RETURN(uint64_t num_subscriptions, reader.ReadU64());
    DKF_RETURN_IF_ERROR(
        CheckCount(reader, num_subscriptions, 59, "subscription"));
    snapshot.serve.subscriptions.reserve(
        static_cast<size_t>(num_subscriptions));
    int64_t previous_sub = -1;
    for (uint64_t i = 0; i < num_subscriptions; ++i) {
      ServeSubscriptionSnapshot sub;
      DKF_ASSIGN_OR_RETURN(sub.spec, DecodeSubscription(reader, version));
      if (sub.spec.id <= previous_sub) {
        return Status::InvalidArgument(
            "snapshot subscriptions must have strictly ascending ids");
      }
      previous_sub = sub.spec.id;
      DKF_ASSIGN_OR_RETURN(sub.inside, reader.ReadBool());
      DKF_ASSIGN_OR_RETURN(sub.fired, reader.ReadBool());
      snapshot.serve.subscriptions.push_back(std::move(sub));
    }
    DKF_ASSIGN_OR_RETURN(uint64_t num_batches, reader.ReadU64());
    DKF_RETURN_IF_ERROR(
        CheckCount(reader, num_batches, 16, "notification batch"));
    snapshot.serve.pending.reserve(static_cast<size_t>(num_batches));
    int64_t previous_step = INT64_MIN;
    for (uint64_t i = 0; i < num_batches; ++i) {
      NotificationBatch batch;
      DKF_ASSIGN_OR_RETURN(batch.step, reader.ReadI64());
      if (batch.step <= previous_step) {
        return Status::InvalidArgument(
            "snapshot notification batches must have strictly ascending "
            "steps");
      }
      previous_step = batch.step;
      DKF_ASSIGN_OR_RETURN(uint64_t num_notifications, reader.ReadU64());
      DKF_RETURN_IF_ERROR(
          CheckCount(reader, num_notifications, 41, "notification"));
      batch.notifications.reserve(static_cast<size_t>(num_notifications));
      for (uint64_t n = 0; n < num_notifications; ++n) {
        DKF_ASSIGN_OR_RETURN(Notification notification,
                             DecodeNotification(reader));
        batch.notifications.push_back(std::move(notification));
      }
      snapshot.serve.pending.push_back(std::move(batch));
    }
    DKF_ASSIGN_OR_RETURN(snapshot.serve.drained_through_step,
                         reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(snapshot.serve.notifications, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(snapshot.serve.dropped, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(snapshot.serve.touched, reader.ReadI64());
    DKF_ASSIGN_OR_RETURN(snapshot.serve.affected, reader.ReadI64());
  }

  // Delta governor — absent from v1/v2 files (disabled defaults).
  if (version >= 3) {
    DKF_ASSIGN_OR_RETURN(snapshot.governor.enabled, reader.ReadBool());
    if (snapshot.governor.enabled) {
      GovernorOptions& g = snapshot.governor.options;
      g.enabled = true;
      DKF_ASSIGN_OR_RETURN(g.epoch_ticks, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(g.budget_bytes_per_tick, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.delta_floor, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.delta_ceiling, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.max_step_ratio, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.dead_band, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.ewma_alpha, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.process_noise, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(g.measurement_noise, reader.ReadF64());
      DKF_RETURN_IF_ERROR(DeltaGovernor::Validate(g));
      DKF_ASSIGN_OR_RETURN(snapshot.governor.epochs, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(uint64_t num_states, reader.ReadU64());
      DKF_RETURN_IF_ERROR(
          CheckCount(reader, num_states, 66, "governor state"));
      snapshot.governor.states.reserve(static_cast<size_t>(num_states));
      int previous_state_id = INT32_MIN;
      for (uint64_t i = 0; i < num_states; ++i) {
        GovernorSourceSnapshot entry;
        DKF_ASSIGN_OR_RETURN(entry.source_id,
                             DecodeI32(reader, "governor source id"));
        if (entry.source_id <= previous_state_id) {
          return Status::InvalidArgument(
              "governor states must have strictly ascending source ids");
        }
        previous_state_id = entry.source_id;
        DKF_ASSIGN_OR_RETURN(entry.state.ewma_bytes, reader.ReadF64());
        DKF_ASSIGN_OR_RETURN(entry.state.ewma_updates, reader.ReadF64());
        DKF_ASSIGN_OR_RETURN(entry.state.last_bytes, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(entry.state.last_updates, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(entry.state.intensity, reader.ReadF64());
        DKF_ASSIGN_OR_RETURN(entry.state.variance, reader.ReadF64());
        DKF_ASSIGN_OR_RETURN(entry.state.measured, reader.ReadBool());
        DKF_ASSIGN_OR_RETURN(entry.state.frozen, reader.ReadBool());
        DKF_ASSIGN_OR_RETURN(entry.state.held_delta, reader.ReadF64());
        if (!std::isfinite(entry.state.ewma_bytes) ||
            !std::isfinite(entry.state.ewma_updates) ||
            !std::isfinite(entry.state.intensity) ||
            !std::isfinite(entry.state.variance) ||
            !std::isfinite(entry.state.held_delta)) {
          return Status::InvalidArgument(
              "governor state contains a non-finite value");
        }
        snapshot.governor.states.push_back(entry);
      }
    }
  }

  // Multi-sensor fusion — absent from v1-v4 files (no groups, no fused
  // queries).
  if (version >= 5) {
    DKF_ASSIGN_OR_RETURN(uint64_t num_fused, reader.ReadU64());
    DKF_RETURN_IF_ERROR(CheckCount(reader, num_fused, 8, "fused query"));
    snapshot.fused_queries.reserve(static_cast<size_t>(num_fused));
    int previous_fused_id = INT32_MIN;
    for (uint64_t i = 0; i < num_fused; ++i) {
      FusedQuery query;
      DKF_ASSIGN_OR_RETURN(query.id, DecodeI32(reader, "fused query id"));
      if (query.id <= previous_fused_id) {
        return Status::InvalidArgument(
            "fused queries must have strictly ascending ids");
      }
      previous_fused_id = query.id;
      DKF_ASSIGN_OR_RETURN(query.group_id,
                           DecodeI32(reader, "fused query group"));
      DKF_ASSIGN_OR_RETURN(query.precision, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(query.description, reader.ReadString());
      snapshot.fused_queries.push_back(std::move(query));
    }
    DKF_ASSIGN_OR_RETURN(uint64_t num_groups, reader.ReadU64());
    DKF_RETURN_IF_ERROR(CheckCount(reader, num_groups, 8, "fusion group"));
    snapshot.fusion_groups.reserve(static_cast<size_t>(num_groups));
    int previous_group_id = INT32_MIN;
    for (uint64_t i = 0; i < num_groups; ++i) {
      FusionGroupSnapshot entry;
      FusionEngine::GroupState& group = entry.group;
      DKF_ASSIGN_OR_RETURN(group.group_id,
                           DecodeI32(reader, "fusion group id"));
      if (group.group_id <= previous_group_id) {
        return Status::InvalidArgument(
            "fusion groups must have strictly ascending ids");
      }
      previous_group_id = group.group_id;
      DKF_ASSIGN_OR_RETURN(group.model, DecodeModel(reader));
      DKF_ASSIGN_OR_RETURN(group.delta, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(group.base_delta, reader.ReadF64());
      DKF_ASSIGN_OR_RETURN(uint8_t norm, reader.ReadU8());
      if (norm > static_cast<uint8_t>(DeviationNorm::kL1)) {
        return Status::InvalidArgument(
            StrFormat("invalid deviation norm %u in snapshot", norm));
      }
      group.norm = static_cast<DeviationNorm>(norm);
      DKF_ASSIGN_OR_RETURN(group.posterior, DecodeFullState(reader));
      DKF_ASSIGN_OR_RETURN(group.version, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(group.last_valid_tick, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(group.faults, DecodeFaultStats(reader));
      DKF_ASSIGN_OR_RETURN(group.updates_applied, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(group.suppressed, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(group.transmissions, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(group.broadcasts, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(group.broadcast_bytes, reader.ReadI64());
      DKF_ASSIGN_OR_RETURN(uint64_t num_members, reader.ReadU64());
      DKF_RETURN_IF_ERROR(
          CheckCount(reader, num_members, 8, "fusion member"));
      group.members.reserve(static_cast<size_t>(num_members));
      entry.member_channels.reserve(static_cast<size_t>(num_members));
      int previous_member_id = INT32_MIN;
      for (uint64_t m = 0; m < num_members; ++m) {
        FusionEngine::MemberState member;
        DKF_ASSIGN_OR_RETURN(member.source_id,
                             DecodeI32(reader, "fusion member id"));
        if (member.source_id <= previous_member_id) {
          return Status::InvalidArgument(
              "fusion members must have strictly ascending ids");
        }
        previous_member_id = member.source_id;
        DKF_ASSIGN_OR_RETURN(member.mirror, DecodeFullState(reader));
        DKF_ASSIGN_OR_RETURN(member.mirror_version, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(member.pending, reader.ReadBool());
        DKF_ASSIGN_OR_RETURN(member.pending_since, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(member.resync_attempts,
                             DecodeI32(reader, "fusion resync_attempts"));
        DKF_ASSIGN_OR_RETURN(member.last_resync_tick, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(member.last_send_tick, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(member.next_sequence, reader.ReadU32());
        DKF_ASSIGN_OR_RETURN(member.last_sequence, reader.ReadU32());
        DKF_ASSIGN_OR_RETURN(member.synced_version, reader.ReadI64());
        DKF_ASSIGN_OR_RETURN(Channel::SourceCheckpoint lane,
                             DecodeChannelLane(reader, version));
        group.members.push_back(std::move(member));
        entry.member_channels.push_back(std::move(lane));
      }
      snapshot.fusion_groups.push_back(std::move(entry));
    }
  }
  return snapshot;
}

}  // namespace

Result<std::string> EncodeSnapshot(const EngineSnapshot& snapshot) {
  return EncodeSnapshotForVersion(snapshot, kSnapshotVersion);
}

Result<std::string> EncodeSnapshotForVersion(const EngineSnapshot& snapshot,
                                             uint32_t version) {
  if (version < kSnapshotMinVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("cannot encode snapshot version %u (this build writes "
                  "%u..%u)",
                  version, kSnapshotMinVersion, kSnapshotVersion));
  }
  BinaryWriter payload;
  DKF_RETURN_IF_ERROR(EncodePayload(payload, snapshot, version));
  const std::string& body = payload.bytes();

  BinaryWriter file;
  for (size_t i = 0; i < kMagicBytes; ++i) {
    file.WriteU8(static_cast<uint8_t>(kSnapshotMagic[i]));
  }
  file.WriteU32(version);
  file.WriteU64(
      Fnv1a64(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
  file.WriteU64(body.size());
  std::string bytes = file.TakeBytes();
  bytes.append(body);
  return bytes;
}

Result<EngineSnapshot> DecodeSnapshot(const std::string& bytes) {
  BinaryReader header(bytes);
  for (size_t i = 0; i < kMagicBytes; ++i) {
    auto byte_or = header.ReadU8();
    if (!byte_or.ok() ||
        byte_or.value() != static_cast<uint8_t>(kSnapshotMagic[i])) {
      return Status::InvalidArgument("not a dkf snapshot file");
    }
  }
  DKF_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  if (version < kSnapshotMinVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported snapshot version %u (this build reads %u..%u)",
                  version, kSnapshotMinVersion, kSnapshotVersion));
  }
  DKF_ASSIGN_OR_RETURN(uint64_t checksum, header.ReadU64());
  DKF_ASSIGN_OR_RETURN(uint64_t payload_len, header.ReadU64());
  if (payload_len != header.remaining()) {
    return Status::OutOfRange(StrFormat(
        "snapshot payload length %llu does not match the %llu bytes present",
        static_cast<unsigned long long>(payload_len),
        static_cast<unsigned long long>(header.remaining())));
  }
  const std::string payload = bytes.substr(header.offset());
  const uint64_t actual = Fnv1a64(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  if (actual != checksum) {
    return Status::InvalidArgument(
        "snapshot payload checksum mismatch (file corrupted)");
  }
  BinaryReader reader(payload);
  DKF_ASSIGN_OR_RETURN(EngineSnapshot snapshot,
                       DecodePayload(reader, version));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot has %llu bytes of trailing garbage",
        static_cast<unsigned long long>(reader.remaining())));
  }
  return snapshot;
}

Status SaveSnapshotFile(const EngineSnapshot& snapshot,
                        const std::string& path) {
  DKF_ASSIGN_OR_RETURN(std::string bytes, EncodeSnapshot(snapshot));
  return WriteFileBytes(path, bytes);
}

Result<EngineSnapshot> LoadSnapshotFile(const std::string& path) {
  DKF_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DecodeSnapshot(bytes);
}

}  // namespace dkf
