#include "streamgen/noise.h"

#include "common/rng.h"

namespace dkf {

Result<TimeSeries> InjectNoise(const TimeSeries& series,
                               const NoiseInjectionOptions& options) {
  if (options.gaussian_stddev < 0.0 || options.outlier_stddev < 0.0) {
    return Status::InvalidArgument("noise stddevs must be >= 0");
  }
  if (options.outlier_probability < 0.0 ||
      options.outlier_probability > 1.0) {
    return Status::InvalidArgument("outlier probability must be in [0, 1]");
  }
  Rng rng(options.seed);
  TimeSeries out(series.width());
  out.Reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    std::vector<double> row = series.Row(i);
    for (double& v : row) {
      if (options.gaussian_stddev > 0.0) {
        v += rng.Gaussian(0.0, options.gaussian_stddev);
      }
      if (options.outlier_probability > 0.0 &&
          rng.Bernoulli(options.outlier_probability)) {
        v += rng.Gaussian(0.0, options.outlier_stddev);
      }
    }
    DKF_RETURN_IF_ERROR(out.Append(series.timestamp(i), row));
  }
  return out;
}

}  // namespace dkf
