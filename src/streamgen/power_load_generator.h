#ifndef DKF_STREAMGEN_POWER_LOAD_GENERATOR_H_
#define DKF_STREAMGEN_POWER_LOAD_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/time_series.h"

namespace dkf {

/// Synthetic substitute for the BGS zonal electric load dataset [22] used
/// in Example 2 (§5.2). The original site is defunct; the paper exploits
/// only the *sinusoidal diurnal trend* of the data, which this generator
/// reproduces: a base load plus a daily sinusoid (peak in working hours),
/// weekday/weekend modulation, and AR(1) measurement noise.
struct PowerLoadOptions {
  size_t num_points = 5831;    ///< hourly samples (paper: 5831)
  double base_load = 1500.0;   ///< MW
  double daily_amplitude = 400.0;
  /// Hour-of-day at which the sinusoid peaks (paper: load peaks during
  /// working hours).
  double peak_hour = 15.0;
  /// Weekend load is scaled by this factor.
  double weekend_factor = 0.85;
  /// AR(1) noise: e_k = ar_coefficient * e_{k-1} + N(0, noise_stddev^2).
  double ar_coefficient = 0.7;
  double noise_stddev = 25.0;
  uint64_t seed = 7;
};

/// Generates a width-1 hourly load series (timestamps in hours).
Result<TimeSeries> GeneratePowerLoad(const PowerLoadOptions& options);

}  // namespace dkf

#endif  // DKF_STREAMGEN_POWER_LOAD_GENERATOR_H_
