#ifndef DKF_STREAMGEN_HTTP_TRAFFIC_GENERATOR_H_
#define DKF_STREAMGEN_HTTP_TRAFFIC_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/time_series.h"

namespace dkf {

/// Synthetic substitute for the DEC HTTP packet-count trace [31] used in
/// Example 3 (§5.3). The paper uses this data purely as a noisy,
/// trendless, bursty stressor for the KF_c smoothing stage; this generator
/// reproduces those properties with the classic heavy-tailed on/off source
/// superposition (which also yields the self-similar burstiness measured
/// in real HTTP traffic).
struct HttpTrafficOptions {
  size_t num_points = 5000;     ///< samples (counts per 10-timestamp bin)
  size_t num_sources = 24;      ///< superposed on/off flows
  double on_rate = 40.0;        ///< packets per bin contributed while on
  double pareto_shape = 1.5;    ///< tail index of on/off durations
  double mean_on_bins = 4.0;    ///< mean on-period length in bins
  double mean_off_bins = 12.0;  ///< mean off-period length in bins
  double base_rate = 120.0;     ///< background Poisson packets per bin
  /// Probability per bin of an isolated spike of `spike_scale` x base_rate
  /// (the "series of spikes after a few steady measurements" in §5.3).
  double spike_probability = 0.01;
  double spike_scale = 6.0;
  /// Slow diurnal modulation of all rates: real org-to-world HTTP traffic
  /// (the DEC trace) rises and falls with the working day. Invisible at
  /// bin scale (the burst noise dominates) but revealed by KF_c
  /// smoothing, which is what lets a trend model pay off in Figure 11.
  /// Set to 0 for a purely stationary stream.
  double diurnal_fraction = 0.5;
  double bins_per_day = 800.0;
  uint64_t seed = 1234;
};

/// Generates a width-1 series of non-negative packet counts.
Result<TimeSeries> GenerateHttpTraffic(const HttpTrafficOptions& options);

}  // namespace dkf

#endif  // DKF_STREAMGEN_HTTP_TRAFFIC_GENERATOR_H_
