#include "streamgen/trajectory_generator.h"

#include <algorithm>
#include <cmath>

namespace dkf {

Result<TrajectoryData> GenerateTrajectory(const TrajectoryOptions& options) {
  if (options.num_points == 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  if (options.dt <= 0.0) {
    return Status::InvalidArgument("dt must be positive");
  }
  if (options.min_speed < 0.0 || options.max_speed < options.min_speed) {
    return Status::InvalidArgument("need 0 <= min_speed <= max_speed");
  }
  if (options.min_segment == 0 || options.max_segment < options.min_segment) {
    return Status::InvalidArgument("need 1 <= min_segment <= max_segment");
  }
  if (options.noise_stddev < 0.0) {
    return Status::InvalidArgument("noise stddev must be >= 0");
  }

  Rng rng(options.seed);
  TrajectoryData data;
  data.observed.Reserve(options.num_points);
  data.truth.Reserve(options.num_points);

  double x = 0.0;
  double y = 0.0;
  double speed = 0.0;
  double heading = 0.0;
  size_t remaining = 0;  // samples left on the current linear leg

  for (size_t k = 0; k < options.num_points; ++k) {
    if (remaining == 0) {
      // Start a new leg: random speed and heading, held for a random time
      // (the paper's "randomly change its speed and heading, then continue
      // on that linear path").
      speed = std::min(rng.Uniform(options.min_speed, options.max_speed),
                       options.max_speed_cap);
      heading = rng.Uniform(0.0, 2.0 * M_PI);
      remaining = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(options.min_segment),
                         static_cast<int64_t>(options.max_segment)));
    }
    x += speed * std::cos(heading) * options.dt;
    y += speed * std::sin(heading) * options.dt;
    --remaining;

    const double t = static_cast<double>(k) * options.dt;
    DKF_RETURN_IF_ERROR(data.truth.Append(t, {x, y}));
    const double ox = x + rng.Gaussian(0.0, options.noise_stddev);
    const double oy = y + rng.Gaussian(0.0, options.noise_stddev);
    DKF_RETURN_IF_ERROR(data.observed.Append(t, {ox, oy}));
  }
  return data;
}

}  // namespace dkf
