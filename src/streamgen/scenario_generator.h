#ifndef DKF_STREAMGEN_SCENARIO_GENERATOR_H_
#define DKF_STREAMGEN_SCENARIO_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/time_series.h"

namespace dkf {

/// Workloads for the adaptive-noise battery (docs/adaptive.md). Each one
/// violates the fixed-R assumption of the nominal model in a different
/// way, so a self-tuning filter has something concrete to win on:
///
///  * regime shift       — noise stddev jumps at a known tick
///  * degrading sensor   — noise stddev ramps smoothly over the run
///  * quantized readings — a coarse ADC step dominates the error budget
///
/// All three produce a width-1 observed/truth pair, deterministic per
/// seed, following the TrajectoryData idiom.

/// One attribute: truth + matching noisy observation.
struct ScenarioData {
  TimeSeries observed{1};
  TimeSeries truth{1};
};

/// A first-order Gauss–Markov process whose *measurement* noise stddev
/// switches from `stddev_before` to `stddev_after` at sample
/// `shift_point`. The truth process itself is unchanged across the
/// shift, so any extra transmissions are attributable to the stale R.
struct RegimeShiftOptions {
  size_t num_points = 2000;
  double dt = 0.1;
  /// Truth process: x' = decay * x + N(0, drive_stddev), a slow mean-
  /// reverting drift a position/velocity model tracks comfortably.
  double decay = 0.999;
  double drive_stddev = 0.05;
  double stddev_before = 0.05;
  double stddev_after = 0.8;
  size_t shift_point = 1000;
  uint64_t seed = 7001;
};

Result<ScenarioData> GenerateRegimeShift(const RegimeShiftOptions& options);

/// The same truth process with measurement noise that ramps linearly
/// from `stddev_start` to `stddev_end` over the run — a sensor aging in
/// place. No single fixed R is right for more than a slice of the run.
struct DegradingSensorOptions {
  size_t num_points = 2000;
  double dt = 0.1;
  double decay = 0.999;
  double drive_stddev = 0.05;
  double stddev_start = 0.05;
  double stddev_end = 1.0;
  uint64_t seed = 7002;
};

Result<ScenarioData> GenerateDegradingSensor(
    const DegradingSensorOptions& options);

/// A smooth slow trajectory observed through a coarse ADC: readings are
/// rounded to multiples of `step` (plus a little pre-quantization
/// noise). The effective measurement variance is dominated by the
/// uniform quantization error, step^2 / 12 — which the adaptive servo's
/// quantization floor is built to discover.
struct QuantizedReadingsOptions {
  size_t num_points = 2000;
  double dt = 0.1;
  /// Truth: sinusoid + linear drift, amplitude chosen so motion per
  /// sample is smaller than the ADC step (the regime where quantization
  /// hurts most).
  double amplitude = 2.0;
  double period_seconds = 60.0;
  double drift_per_second = 0.02;
  double pre_noise_stddev = 0.01;
  double step = 0.5;
  uint64_t seed = 7003;
};

Result<ScenarioData> GenerateQuantizedReadings(
    const QuantizedReadingsOptions& options);

}  // namespace dkf

#endif  // DKF_STREAMGEN_SCENARIO_GENERATOR_H_
