#include "streamgen/scenario_generator.h"

#include <cmath>

#include "common/rng.h"

namespace dkf {

namespace {

Status ValidateCommon(size_t num_points, double dt) {
  if (num_points == 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  if (dt <= 0.0) {
    return Status::InvalidArgument("dt must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<ScenarioData> GenerateRegimeShift(const RegimeShiftOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateCommon(options.num_points, options.dt));
  if (options.decay <= 0.0 || options.decay > 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  if (options.drive_stddev < 0.0 || options.stddev_before < 0.0 ||
      options.stddev_after < 0.0) {
    return Status::InvalidArgument("stddevs must be >= 0");
  }
  if (options.shift_point > options.num_points) {
    return Status::InvalidArgument("shift_point must be <= num_points");
  }

  Rng rng(options.seed);
  ScenarioData data;
  data.observed.Reserve(options.num_points);
  data.truth.Reserve(options.num_points);

  double x = 0.0;
  for (size_t k = 0; k < options.num_points; ++k) {
    x = options.decay * x + rng.Gaussian(0.0, options.drive_stddev);
    const double stddev =
        k < options.shift_point ? options.stddev_before : options.stddev_after;
    const double t = static_cast<double>(k) * options.dt;
    DKF_RETURN_IF_ERROR(data.truth.Append(t, x));
    DKF_RETURN_IF_ERROR(
        data.observed.Append(t, x + rng.Gaussian(0.0, stddev)));
  }
  return data;
}

Result<ScenarioData> GenerateDegradingSensor(
    const DegradingSensorOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateCommon(options.num_points, options.dt));
  if (options.decay <= 0.0 || options.decay > 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  if (options.drive_stddev < 0.0 || options.stddev_start < 0.0 ||
      options.stddev_end < 0.0) {
    return Status::InvalidArgument("stddevs must be >= 0");
  }

  Rng rng(options.seed);
  ScenarioData data;
  data.observed.Reserve(options.num_points);
  data.truth.Reserve(options.num_points);

  const double span = options.num_points > 1
                          ? static_cast<double>(options.num_points - 1)
                          : 1.0;
  double x = 0.0;
  for (size_t k = 0; k < options.num_points; ++k) {
    x = options.decay * x + rng.Gaussian(0.0, options.drive_stddev);
    const double frac = static_cast<double>(k) / span;
    const double stddev =
        options.stddev_start + frac * (options.stddev_end - options.stddev_start);
    const double t = static_cast<double>(k) * options.dt;
    DKF_RETURN_IF_ERROR(data.truth.Append(t, x));
    DKF_RETURN_IF_ERROR(
        data.observed.Append(t, x + rng.Gaussian(0.0, stddev)));
  }
  return data;
}

Result<ScenarioData> GenerateQuantizedReadings(
    const QuantizedReadingsOptions& options) {
  DKF_RETURN_IF_ERROR(ValidateCommon(options.num_points, options.dt));
  if (options.period_seconds <= 0.0) {
    return Status::InvalidArgument("period_seconds must be positive");
  }
  if (options.pre_noise_stddev < 0.0) {
    return Status::InvalidArgument("pre_noise_stddev must be >= 0");
  }
  if (options.step <= 0.0) {
    return Status::InvalidArgument("step must be positive");
  }

  Rng rng(options.seed);
  ScenarioData data;
  data.observed.Reserve(options.num_points);
  data.truth.Reserve(options.num_points);

  const double omega = 2.0 * M_PI / options.period_seconds;
  for (size_t k = 0; k < options.num_points; ++k) {
    const double t = static_cast<double>(k) * options.dt;
    const double x = options.amplitude * std::sin(omega * t) +
                     options.drift_per_second * t;
    DKF_RETURN_IF_ERROR(data.truth.Append(t, x));
    const double noisy = x + rng.Gaussian(0.0, options.pre_noise_stddev);
    const double quantized = std::round(noisy / options.step) * options.step;
    DKF_RETURN_IF_ERROR(data.observed.Append(t, quantized));
  }
  return data;
}

}  // namespace dkf
