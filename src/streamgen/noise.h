#ifndef DKF_STREAMGEN_NOISE_H_
#define DKF_STREAMGEN_NOISE_H_

#include <cstdint>

#include "common/result.h"
#include "common/time_series.h"

namespace dkf {

/// Options for post-hoc corruption of a clean series — used by the
/// robustness benches (Table 1: graceful degradation under noise).
struct NoiseInjectionOptions {
  double gaussian_stddev = 0.0;   ///< additive white noise per value
  double outlier_probability = 0.0;  ///< chance a sample becomes an outlier
  double outlier_stddev = 0.0;    ///< extra noise applied to outliers
  uint64_t seed = 99;
};

/// Returns a copy of `series` with every value independently corrupted per
/// `options`. All attributes of a multivariate series are corrupted.
Result<TimeSeries> InjectNoise(const TimeSeries& series,
                               const NoiseInjectionOptions& options);

}  // namespace dkf

#endif  // DKF_STREAMGEN_NOISE_H_
