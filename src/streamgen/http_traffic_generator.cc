#include "streamgen/http_traffic_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace dkf {

namespace {

/// Duration of the next on/off period in bins: Pareto with the given mean
/// and tail index. For shape a > 1 the Pareto mean is xm * a / (a - 1), so
/// xm = mean * (a - 1) / a.
double DrawPeriod(Rng* rng, double mean_bins, double shape) {
  const double xm = mean_bins * (shape - 1.0) / shape;
  return std::max(1.0, rng->Pareto(xm, shape));
}

}  // namespace

Result<TimeSeries> GenerateHttpTraffic(const HttpTrafficOptions& options) {
  if (options.num_points == 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  if (options.num_sources == 0) {
    return Status::InvalidArgument("num_sources must be positive");
  }
  if (options.pareto_shape <= 1.0) {
    return Status::InvalidArgument(
        "pareto shape must exceed 1 (finite mean)");
  }
  if (options.mean_on_bins <= 0.0 || options.mean_off_bins <= 0.0) {
    return Status::InvalidArgument("mean on/off periods must be positive");
  }
  if (options.spike_probability < 0.0 || options.spike_probability > 1.0) {
    return Status::InvalidArgument("spike probability must be in [0, 1]");
  }
  if (options.diurnal_fraction < 0.0 || options.diurnal_fraction >= 1.0) {
    return Status::InvalidArgument("diurnal fraction must be in [0, 1)");
  }
  if (options.diurnal_fraction > 0.0 && options.bins_per_day <= 0.0) {
    return Status::InvalidArgument("bins_per_day must be positive");
  }

  Rng rng(options.seed);

  struct SourceState {
    bool on = false;
    double remaining = 0.0;  // bins left in the current period
  };
  std::vector<SourceState> sources(options.num_sources);
  // Desynchronize the sources' initial phases.
  for (auto& src : sources) {
    src.on = rng.Bernoulli(options.mean_on_bins /
                           (options.mean_on_bins + options.mean_off_bins));
    src.remaining = DrawPeriod(
        &rng, src.on ? options.mean_on_bins : options.mean_off_bins,
        options.pareto_shape);
  }

  TimeSeries series(1);
  series.Reserve(options.num_points);
  for (size_t k = 0; k < options.num_points; ++k) {
    double rate = options.base_rate;
    for (auto& src : sources) {
      if (src.remaining <= 0.0) {
        src.on = !src.on;
        src.remaining = DrawPeriod(
            &rng, src.on ? options.mean_on_bins : options.mean_off_bins,
            options.pareto_shape);
      }
      if (src.on) rate += options.on_rate;
      src.remaining -= 1.0;
    }
    if (rng.Bernoulli(options.spike_probability)) {
      rate += options.spike_scale * options.base_rate;
    }
    if (options.diurnal_fraction > 0.0) {
      rate *= 1.0 + options.diurnal_fraction *
                        std::sin(2.0 * M_PI * static_cast<double>(k) /
                                 options.bins_per_day);
    }
    const double count = static_cast<double>(rng.Poisson(rate));
    DKF_RETURN_IF_ERROR(series.Append(static_cast<double>(k), count));
  }
  return series;
}

}  // namespace dkf
