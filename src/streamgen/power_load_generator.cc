#include "streamgen/power_load_generator.h"

#include <cmath>

#include "common/rng.h"

namespace dkf {

Result<TimeSeries> GeneratePowerLoad(const PowerLoadOptions& options) {
  if (options.num_points == 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  if (options.noise_stddev < 0.0) {
    return Status::InvalidArgument("noise stddev must be >= 0");
  }
  if (options.ar_coefficient < 0.0 || options.ar_coefficient >= 1.0) {
    return Status::InvalidArgument("ar coefficient must be in [0, 1)");
  }

  Rng rng(options.seed);
  TimeSeries series(1);
  series.Reserve(options.num_points);

  const double omega = 2.0 * M_PI / 24.0;
  double ar_noise = 0.0;
  for (size_t k = 0; k < options.num_points; ++k) {
    const double hour = static_cast<double>(k);
    const double hour_of_day = std::fmod(hour, 24.0);
    const size_t day = k / 24;
    const bool weekend = (day % 7) >= 5;

    // Daily sinusoid peaking at peak_hour.
    const double phase = omega * (hour_of_day - options.peak_hour);
    double load = options.base_load + options.daily_amplitude * std::cos(phase);
    if (weekend) load *= options.weekend_factor;

    ar_noise = options.ar_coefficient * ar_noise +
               rng.Gaussian(0.0, options.noise_stddev);
    load += ar_noise;

    DKF_RETURN_IF_ERROR(series.Append(hour, load));
  }
  return series;
}

}  // namespace dkf
