#ifndef DKF_STREAMGEN_TRAJECTORY_GENERATOR_H_
#define DKF_STREAMGEN_TRAJECTORY_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "common/time_series.h"

namespace dkf {

/// Configuration of the Example-1 moving-object workload (§5.1): an object
/// moves on straight line segments, randomly changing speed and heading at
/// random times, sampled at a fixed rate.
///
/// The paper caps speed at 500 units and samples every 100 ms but does not
/// state the speed distribution; the defaults here are chosen so that the
/// per-sample displacement is commensurate with the paper's precision
/// sweep (delta in [0.5, 10]), reproducing the reported ~75 % update
/// reduction for the linear model at delta = 3 (see EXPERIMENTS.md).
struct TrajectoryOptions {
  size_t num_points = 4000;     ///< samples (paper: 4000)
  double dt = 0.1;              ///< sampling interval in seconds (100 ms)
  double min_speed = 5.0;       ///< units/second
  double max_speed = 50.0;      ///< units/second (hard cap 500, paper §5.1)
  double max_speed_cap = 500.0; ///< absolute clamp from the paper
  /// Segment length in samples is drawn uniformly from this range: the
  /// "randomly generated length of time" on each linear leg.
  size_t min_segment = 40;
  size_t max_segment = 300;
  /// Std-dev of Gaussian position noise added to the true trajectory
  /// ("does not have high noise", §4 Example 1).
  double noise_stddev = 0.05;
  uint64_t seed = 42;
};

/// Generates a width-2 series (x, y) of noisy observed positions plus the
/// matching noise-free ground truth.
struct TrajectoryData {
  TimeSeries observed{2};
  TimeSeries truth{2};
};

/// Runs the piecewise-linear motion process. Deterministic per seed.
Result<TrajectoryData> GenerateTrajectory(const TrajectoryOptions& options);

}  // namespace dkf

#endif  // DKF_STREAMGEN_TRAJECTORY_GENERATOR_H_
