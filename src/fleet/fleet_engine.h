#ifndef DKF_FLEET_FLEET_ENGINE_H_
#define DKF_FLEET_FLEET_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/predictor.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "models/state_model.h"
#include "obs/trace_sink.h"

namespace dkf {

/// The engine-level tick input for the batched fast path: readings in a
/// flat parallel-array layout instead of a std::map, so a million-source
/// tick costs no tree lookups. `ids[i]` owns `values[i]`. The order is
/// the caller's; the fleet engine caches each lane's rank and revalidates
/// it per tick, so a stable order is fastest but not required.
struct ReadingBatch {
  std::vector<int> ids;
  std::vector<Vector> values;
};

/// Structure-of-arrays batched tick engine for steady-state sources
/// (docs/fleet.md).
///
/// Every source a shard owns is *tracked* here when the batched fleet
/// path is enabled. A tracked source is in exactly one of two states:
///
///  * **spilled** — it lives on the classic per-source path: its
///    SourceNode processes readings, its predictor is registered with
///    the ServerNode, and this engine only watches it for re-entry.
///  * **resident** — its entire dual link is folded into one SoA *lane*:
///    a single copy of the (bit-identical) mirror/predictor filter state
///    packed into contiguous arrays, ticked by flat loops that replicate
///    the KalmanFilter predict arithmetic operation-for-operation. While
///    resident the source is NOT registered with the ServerNode and its
///    SourceNode lies dormant — the lane is the link.
///
/// The invariant that makes this bit-exact (the equivalence contract of
/// docs/fleet.md): a lane only ever executes *fully suppressed healthy
/// ticks* inline. Any tick on which the source would touch the channel —
/// the deviation exceeds delta, a heartbeat is due — or on which its
/// filter would do anything but a plain predict, first *spills* the
/// source back to the per-source objects (reconstructing them from the
/// lane bit-for-bit) and then runs the verbatim per-source code.
/// Consequently resident sources never send, so the channel, protocol
/// state machine, and server ingress are byte-identical to a run without
/// this engine; and a spilled source re-enters (is *absorbed*) only when
/// its mirror and server predictor are bitwise equal again with no
/// channel residue, so folding the pair into one lane loses nothing.
///
/// Threading contract: same as the shard that owns it — ProcessTick on
/// the shard's worker thread, everything else on the driver between
/// ticks.
class FleetEngine {
 public:
  /// `server`, `channel` are the owning shard's; they must outlive this
  /// engine. `protocol`/`energy` must be the options the shard builds
  /// its SourceNodes with (the lane replicates their accounting).
  FleetEngine(ServerNode* server, Channel* channel,
              const ProtocolOptions& protocol,
              const EnergyModelOptions& energy);

  /// Starts managing a source. Call right after the shard has created
  /// `node` and registered the source with the server: the source starts
  /// out spilled and is absorbed at the end of the first tick that
  /// leaves its link healthy and bit-converged. `node` must stay valid
  /// for this engine's lifetime. Sources with a time-varying transition
  /// are tracked but never absorbed (no constant coefficients to cache).
  Status Track(int source_id, const StateModel& model, SourceNode* node);

  /// True when the source is currently folded into a lane.
  bool resident(int source_id) const {
    return resident_.find(source_id) != resident_.end();
  }

  size_t resident_count() const { return resident_.size(); }
  size_t tracked_count() const { return nodes_.size(); }

  /// Degraded ticks accounted on resident lanes (the server counts the
  /// spilled ones); the shard adds this to its merged fault counters.
  int64_t degraded_ticks() const { return degraded_ticks_; }

  /// Lifetime count of lane spills (mid-tick protocol spills plus
  /// reconfigure spills). A governor sweep that keeps a cohort's deltas
  /// stable must not move this — churn tests pin it.
  int64_t spill_count() const { return spills_; }

  void set_trace_sink(TraceSink* sink) { obs_sink_ = sink; }

  /// Spills a resident source between ticks so a reconfiguration
  /// (set_delta / set_smoothing) runs through the real SourceNode.
  /// No-op when the source is already spilled. The source re-enters at
  /// the end of the next tick if still eligible.
  Status SpillForReconfigure(int source_id);

  /// One protocol tick over every tracked source, bit-identical to
  /// RunSourceTick over the same ids: spilled sources run the verbatim
  /// per-source path, resident lanes run the flat suppressed-predict
  /// kernel (spilling first if the tick is anything but a suppressed
  /// healthy predict), and newly re-converged sources are absorbed at
  /// the end. The map overload mirrors RunSourceTick's lookup; the
  /// batch overload is the allocation-light fast path.
  Status ProcessTick(int64_t tick, const std::map<int, Vector>& readings);
  Status ProcessTick(int64_t tick, const ReadingBatch& batch);

  /// Answer surface for resident sources (the shard routes here when the
  /// server has no predictor for the id). Bit-identical to what the
  /// ServerNode would produce for the same link state: the lane state is
  /// loaded into a per-group loaner filter and answered through the very
  /// same code paths.
  Result<Vector> Answer(int source_id) const;
  Result<ServerNode::ConfidentAnswer> AnswerWithConfidence(
      int source_id) const;
  Result<bool> answer_degraded(int source_id) const;

  /// Checkpoint surface for resident sources: synthesizes the exact
  /// per-source snapshots a spilled run would capture. The mirror and
  /// predictor of a resident source are bitwise equal by construction,
  /// so both synthesized states carry the same filter bits.
  Result<SourceNode::CheckpointState> SynthesizeSourceState(
      int source_id) const;
  Result<ServerNode::LinkSnapshot> SynthesizeLinkState(int source_id) const;

 private:
  /// Phase / SsMode enum values mirrored from KalmanFilter::FullState's
  /// uint8_t encoding.
  static constexpr uint8_t kPhaseInitial = 0;
  static constexpr uint8_t kPhasePredicted = 1;
  static constexpr uint8_t kPhaseCorrected = 2;
  static constexpr uint8_t kSsTracking = 0;
  static constexpr uint8_t kSsArmPending = 1;
  static constexpr uint8_t kSsArmed = 2;

  /// All lanes sharing one model recipe. The per-model coefficients
  /// (phi, H, Q, R) are cached flat exactly once here — asserted
  /// bit-equal to the filter's own TransitionAt output at creation — and
  /// every per-lane quantity lives in a parallel array indexed by lane.
  struct Group {
    StateModel model;  // canonical recipe (server re-registration at spill)
    size_t n = 0;      // state dimension
    size_t m = 0;      // measurement dimension

    // Cached per-model coefficients, row-major flat.
    std::vector<double> phi;  // n x n
    std::vector<double> h;    // m x n
    std::vector<double> q;    // n x n
    std::vector<double> r;    // m x m

    // Hot SoA lane state (everything a suppressed predict touches).
    std::vector<int> ids;
    std::vector<double> x;        // n per lane
    std::vector<double> p;        // n*n per lane; invalid while p_stale
    std::vector<int64_t> step;
    std::vector<int64_t> psc;     // predicts_since_correct
    std::vector<uint8_t> phase;
    std::vector<uint8_t> ss_mode;
    std::vector<int32_t> ss_idx;
    std::vector<uint8_t> p_stale;  // armed lanes defer the frozen-P copy
    std::vector<double> delta;
    std::vector<int64_t> last_send_tick;
    std::vector<int64_t> readings;
    std::vector<double> energy_transmission;
    std::vector<double> energy_compute;
    std::vector<double> energy_sensing;
    // Server-side link bookkeeping (staleness / degraded accounting).
    std::vector<uint32_t> link_last_sequence;
    std::vector<int64_t> link_last_valid_tick;
    std::vector<int64_t> link_last_resync_tick;
    std::vector<int64_t> link_last_update_tick;
    // Frozen-cycle length, duplicated out of `cold` so the armed predict
    // never touches the big cold structs.
    std::vector<int32_t> ss_period;
    // ReadingBatch rank cache (-1 until resolved) and the per-tick
    // resolved reading pointer.
    std::vector<int64_t> batch_rank;
    std::vector<const Vector*> value_ptrs;

    // Cold per-lane state: the complete FullState fields a suppressed
    // predict never touches (frozen gain/covariance cycle, streak
    // history, noise copies), plus the armed path's ss_prior_p source.
    std::vector<KalmanFilter::FullState> cold;

    // Flat scratch for the decide-before-commit predict.
    std::vector<double> sx;   // n
    std::vector<double> sp1;  // n*n
    std::vector<double> sp2;  // n*n

    // Loaner filters: `loaner` synthesizes answers/checkpoints from lane
    // state (mutable: Answer() is logically const), `replay` executes
    // the rare arm-pending tick through the real filter so the freeze
    // transition stays bit-exact, trace events included.
    mutable std::optional<KalmanPredictor> loaner;
    std::optional<KalmanPredictor> replay;
  };

  struct LaneRef {
    int group = 0;
    size_t lane = 0;
  };

  /// The group for `model`, created on first use; -1 when the model is
  /// ineligible for batching (time-varying transition).
  Result<int> GroupFor(const StateModel& model);

  /// Reconstructs the lane's FullState (mirror == predictor bitwise).
  KalmanFilter::FullState LaneFullState(const Group& g, size_t lane) const;

  /// The per-source CheckpointState a spilled run would capture, built
  /// from the dormant node plus the lane's live fields.
  Result<SourceNode::CheckpointState> SynthesizeForLane(const Group& g,
                                                        size_t lane) const;

  ServerNode::LinkSnapshot SynthesizeLinkForLane(const Group& g,
                                                 size_t lane) const;

  /// Moves a lane back to the per-source objects. When `reading` is
  /// non-null the spill happens mid-tick: the server predictor replays
  /// the predict it missed (TickAll ran before the lane loop) and the
  /// node processes this tick's reading verbatim.
  Status SpillLane(int group_index, size_t lane, int64_t tick,
                   const Vector* reading);

  /// Swap-removes lane `lane` from `g`, fixing the moved lane's ref.
  void RemoveLane(Group& g, size_t lane);

  /// Appends a lane built from a healthy source's snapshots; returns its
  /// index.
  size_t AddLane(Group& g, int source_id,
                 const SourceNode::CheckpointState& state,
                 const ServerNode::LinkSnapshot& link);

  /// End-of-tick scan: folds every spilled source whose link is healthy
  /// and bit-converged with no channel residue back into its group.
  Status TryAbsorbAll();

  /// Degraded-service accounting for resident lanes, replicating
  /// ServerNode::TickAll's previous-tick bookkeeping.
  void AccountDegradedLanes();

  /// Resolves every tracked source's reading up front (exactly one of
  /// `readings`/`batch` is non-null), staging spilled sources in
  /// ascending id order and caching lane reading pointers. Errors before
  /// any filter state moves.
  Status ResolveReadings(const std::map<int, Vector>* readings,
                         const ReadingBatch* batch);

  /// Rebuilds the flat ascending-id iteration order after any
  /// membership or residency change.
  void RebuildOrder();

  /// Batch position of `id`, using (and lazily rebuilding, at most once
  /// per tick) the cached index; -1 when the batch has no entry.
  int64_t LookupBatchPos(const ReadingBatch& batch, int id, bool* rebuilt);

  Status ProcessTickImpl(int64_t tick, const std::map<int, Vector>* readings,
                         const ReadingBatch* batch);

  /// Ticks one resident lane at `lane` in group `gi`: flat suppressed
  /// predict or spill. Sets `*respill` when the lane was removed (the
  /// caller must re-run the same index).
  Status TickLane(int group_index, size_t lane, int64_t tick,
                  bool* spilled);

  /// Ticks every lane of group `gi`. The dominant case — armed,
  /// corrected, no heartbeat due, deviation inside delta — runs inline
  /// here; everything exceptional falls back to TickLane, which
  /// recomputes from the untouched lane state (bit-exact: nothing is
  /// committed before the fallback decision).
  Status TickGroupLanes(int group_index, int64_t tick);

  ServerNode* server_;
  Channel* channel_;
  ProtocolOptions protocol_;
  EnergyModelOptions energy_;
  TraceSink* obs_sink_ = nullptr;

  std::vector<std::unique_ptr<Group>> groups_;
  std::map<std::string, int> group_by_key_;

  /// Every tracked source, ascending (validation iterates this so the
  /// first missing reading reported matches the per-source path).
  std::map<int, SourceNode*> nodes_;
  /// Tracked id -> group index, or -1 when never batchable.
  std::map<int, int> eligible_group_;
  /// Currently resident sources and their lane.
  std::map<int, LaneRef> resident_;
  /// Currently spilled sources (ascending — per-source processing order).
  std::set<int> spilled_;

  /// One tracked source in the flat per-tick resolve pass: the tree
  /// maps above are authoritative for membership, but walking them per
  /// source per tick costs more than the batched predict itself, so the
  /// resolve loop runs over this ascending-id snapshot instead
  /// (rebuilt only when membership or residency changed).
  struct TickEntry {
    int id = 0;
    SourceNode* node = nullptr;
    int32_t group = -1;  // -1 = spilled
    int32_t lane = 0;
    int64_t rank = -1;   // cached ReadingBatch position
  };
  std::vector<TickEntry> order_;
  bool order_dirty_ = true;

  /// Per-tick staging of spilled work, mirroring RunSourceTick.
  std::vector<std::pair<SourceNode*, const Vector*>> staged_spilled_;
  /// ReadingBatch id -> position cache (validated entry-wise per use).
  std::unordered_map<int, int64_t> batch_pos_;
  /// Scratch for TryAbsorbAll's one-pass channel residue scan.
  std::vector<int> residual_scratch_;

  int64_t degraded_ticks_ = 0;
  int64_t spills_ = 0;
};

}  // namespace dkf

#endif  // DKF_FLEET_FLEET_ENGINE_H_
