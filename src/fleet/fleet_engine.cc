#include "fleet/fleet_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/string_util.h"
#include "core/suppression.h"

namespace dkf {

namespace {

// Bitwise comparison helpers. The absorb predicate and the cached-phi
// assertion both demand *bit* equality — `==` on doubles would treat
// -0.0 == 0.0 and NaN != NaN, either of which could let a lane drift
// from the per-source arithmetic by one representation.
bool BitEqual(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const size_t n = a.rows() * a.cols();
  return n == 0 ||
         std::memcmp(a.RowData(0), b.RowData(0), n * sizeof(double)) == 0;
}

bool BitEqual(const std::vector<double>& flat, const Matrix& m) {
  if (flat.size() != m.rows() * m.cols()) return false;
  return flat.empty() ||
         std::memcmp(flat.data(), m.RowData(0),
                     flat.size() * sizeof(double)) == 0;
}

/// Every field of FullState, bitwise — StateEquals only compares
/// step/x/p, which is not enough to fold two filters into one lane: the
/// steady-state bookkeeping and noise matrices drive future arithmetic.
bool FullStateBitEqual(const KalmanFilter::FullState& a,
                       const KalmanFilter::FullState& b) {
  if (a.step != b.step || a.phase != b.phase || a.ss_mode != b.ss_mode ||
      a.ss_streak1 != b.ss_streak1 || a.ss_streak2 != b.ss_streak2 ||
      a.predicts_since_correct != b.predicts_since_correct ||
      a.ss_have_prev != b.ss_have_prev || a.ss_period != b.ss_period ||
      a.ss_pending_priors != b.ss_pending_priors ||
      a.ss_capture_idx != b.ss_capture_idx || a.ss_idx != b.ss_idx) {
    return false;
  }
  if (!BitEqual(a.x, b.x) || !BitEqual(a.p, b.p) ||
      !BitEqual(a.last_innovation, b.last_innovation) ||
      !BitEqual(a.process_noise, b.process_noise) ||
      !BitEqual(a.measurement_noise, b.measurement_noise) ||
      !BitEqual(a.ss_prev_gain, b.ss_prev_gain)) {
    return false;
  }
  for (int i = 0; i < 2; ++i) {
    if (!BitEqual(a.ss_prev_post[i], b.ss_prev_post[i]) ||
        !BitEqual(a.ss_gain[i], b.ss_gain[i]) ||
        !BitEqual(a.ss_prior_p[i], b.ss_prior_p[i]) ||
        !BitEqual(a.ss_post_p[i], b.ss_post_p[i])) {
      return false;
    }
  }
  return true;
}

void AppendRaw(std::string* out, const void* p, size_t bytes) {
  out->append(static_cast<const char*>(p), bytes);
}

void AppendMatrix(std::string* out, const Matrix& m) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  AppendRaw(out, &rows, sizeof(rows));
  AppendRaw(out, &cols, sizeof(cols));
  if (rows * cols > 0) AppendRaw(out, m.RowData(0), rows * cols * 8);
}

/// Canonical byte key of everything that makes two models interchangeable
/// for batching purposes: lanes in one group share coefficients and the
/// replay/loaner filters, so any field that could alter arithmetic or
/// trace behavior must be part of the key.
std::string ModelKey(const StateModel& model) {
  std::string key = model.name;
  key.push_back('\0');
  AppendRaw(&key, &model.measurement_dim, sizeof(model.measurement_dim));
  const char fast = model.options.steady_state_fast_path ? 1 : 0;
  AppendRaw(&key, &fast, sizeof(fast));
  AppendRaw(&key, &model.options.steady_state_tolerance, sizeof(double));
  AppendMatrix(&key, model.options.transition);
  AppendMatrix(&key, model.options.measurement);
  AppendMatrix(&key, model.options.process_noise);
  AppendMatrix(&key, model.options.measurement_noise);
  AppendMatrix(&key, model.options.initial_covariance);
  const size_t n = model.options.initial_state.size();
  AppendRaw(&key, &n, sizeof(n));
  if (n > 0) AppendRaw(&key, model.options.initial_state.data(), n * 8);
  return key;
}

void FlattenMatrix(const Matrix& m, std::vector<double>* out) {
  out->resize(m.rows() * m.cols());
  if (!out->empty()) {
    std::memcpy(out->data(), m.RowData(0), out->size() * sizeof(double));
  }
}

}  // namespace

FleetEngine::FleetEngine(ServerNode* server, Channel* channel,
                         const ProtocolOptions& protocol,
                         const EnergyModelOptions& energy)
    : server_(server), channel_(channel), protocol_(protocol),
      energy_(energy) {}

Result<int> FleetEngine::GroupFor(const StateModel& model) {
  if (model.options.transition_fn) return -1;  // no constant phi to cache
  std::string key = ModelKey(model);
  auto it = group_by_key_.find(key);
  if (it != group_by_key_.end()) return it->second;

  auto group = std::make_unique<Group>();
  group->model = model;
  group->n = model.options.initial_state.size();
  group->m = model.options.measurement.rows();
  DKF_ASSIGN_OR_RETURN(KalmanPredictor replay, KalmanPredictor::Create(model));
  DKF_ASSIGN_OR_RETURN(KalmanPredictor loaner, KalmanPredictor::Create(model));
  group->replay = std::move(replay);
  group->loaner = std::move(loaner);
  FlattenMatrix(model.options.transition, &group->phi);
  FlattenMatrix(model.options.measurement, &group->h);
  FlattenMatrix(model.options.process_noise, &group->q);
  FlattenMatrix(model.options.measurement_noise, &group->r);
  // The cached coefficients are derived once per group instead of per
  // source; they must be the very bits the filter's own transition lookup
  // produces, or the flat kernels would not be bit-identical to Predict.
  const Matrix& phi0 = group->replay->mutable_filter().TransitionForStep(0);
  if (!BitEqual(group->phi, phi0)) {
    return Status::Internal(
        "cached transition coefficients diverge from TransitionAt output");
  }
  group->sx.resize(group->n);
  group->sp1.resize(group->n * group->n);
  group->sp2.resize(group->n * group->n);
  const int index = static_cast<int>(groups_.size());
  groups_.push_back(std::move(group));
  group_by_key_[std::move(key)] = index;
  return index;
}

Status FleetEngine::Track(int source_id, const StateModel& model,
                          SourceNode* node) {
  if (nodes_.contains(source_id)) {
    return Status::AlreadyExists(
        StrFormat("source %d already tracked", source_id));
  }
  DKF_ASSIGN_OR_RETURN(int group_index, GroupFor(model));
  nodes_[source_id] = node;
  eligible_group_[source_id] = group_index;
  spilled_.insert(source_id);
  order_dirty_ = true;
  return Status::OK();
}

KalmanFilter::FullState FleetEngine::LaneFullState(const Group& g,
                                                   size_t lane) const {
  KalmanFilter::FullState f = g.cold[lane];
  const size_t n = g.n;
  f.x = Vector(n);
  std::memcpy(f.x.data(), &g.x[lane * n], n * sizeof(double));
  if (g.p_stale[lane]) {
    // Armed lanes defer the frozen-covariance copy; the filter's own fast
    // path assigns p <- ss_prior_p[ss_idx] eagerly, so reconstruct that.
    f.p = f.ss_prior_p[g.ss_idx[lane]];
  } else {
    f.p = Matrix(n, n);
    std::memcpy(f.p.MutableRowData(0), &g.p[lane * n * n],
                n * n * sizeof(double));
  }
  f.step = g.step[lane];
  f.predicts_since_correct = g.psc[lane];
  f.phase = g.phase[lane];
  f.ss_mode = g.ss_mode[lane];
  f.ss_idx = g.ss_idx[lane];
  return f;
}

Result<SourceNode::CheckpointState> FleetEngine::SynthesizeForLane(
    const Group& g, size_t lane) const {
  const int id = g.ids[lane];
  auto node_it = nodes_.find(id);
  if (node_it == nodes_.end()) {
    return Status::NotFound(StrFormat("source %d not tracked", id));
  }
  DKF_ASSIGN_OR_RETURN(SourceNode::CheckpointState state,
                       node_it->second->ExportCheckpoint());
  // The dormant node still holds everything a lane never advances (delta,
  // sequence counter, divergence machine, fault counters); overlay the
  // fields the lane does move.
  state.mirror = LaneFullState(g, lane);
  state.readings = g.readings[lane];
  state.energy_transmission = g.energy_transmission[lane];
  state.energy_compute = g.energy_compute[lane];
  state.energy_sensing = g.energy_sensing[lane];
  state.last_send_tick = g.last_send_tick[lane];
  return state;
}

ServerNode::LinkSnapshot FleetEngine::SynthesizeLinkForLane(
    const Group& g, size_t lane) const {
  ServerNode::LinkSnapshot link;
  link.last_sequence = g.link_last_sequence[lane];
  link.last_valid_tick = g.link_last_valid_tick[lane];
  link.last_resync_tick = g.link_last_resync_tick[lane];
  link.last_update_tick = g.link_last_update_tick[lane];
  // Mirror and predictor are bitwise equal while resident — one lane IS
  // the whole dual link — so the same reconstruction serves both. The
  // same holds for the noise servo (absorption required the two adapter
  // states bit-equal, and corrections — the only thing that moves them —
  // never happen on a resident lane), so the dormant node's state stands
  // in for the server's.
  link.predictor = LaneFullState(g, lane);
  auto node_it = nodes_.find(g.ids[lane]);
  if (node_it != nodes_.end()) {
    link.adapt = node_it->second->noise_adapter().ExportState();
  }
  return link;
}

size_t FleetEngine::AddLane(Group& g, int source_id,
                            const SourceNode::CheckpointState& state,
                            const ServerNode::LinkSnapshot& link) {
  const size_t lane = g.ids.size();
  const size_t n = g.n;
  const KalmanFilter::FullState& m = state.mirror;
  g.ids.push_back(source_id);
  g.x.insert(g.x.end(), m.x.data(), m.x.data() + n);
  g.p.insert(g.p.end(), m.p.RowData(0), m.p.RowData(0) + n * n);
  g.step.push_back(m.step);
  g.psc.push_back(m.predicts_since_correct);
  g.phase.push_back(m.phase);
  g.ss_mode.push_back(m.ss_mode);
  g.ss_idx.push_back(m.ss_idx);
  g.p_stale.push_back(0);
  g.delta.push_back(state.delta);
  g.last_send_tick.push_back(state.last_send_tick);
  g.readings.push_back(state.readings);
  g.energy_transmission.push_back(state.energy_transmission);
  g.energy_compute.push_back(state.energy_compute);
  g.energy_sensing.push_back(state.energy_sensing);
  g.link_last_sequence.push_back(link.last_sequence);
  g.link_last_valid_tick.push_back(link.last_valid_tick);
  g.link_last_resync_tick.push_back(link.last_resync_tick);
  g.link_last_update_tick.push_back(link.last_update_tick);
  g.ss_period.push_back(m.ss_period);
  g.batch_rank.push_back(-1);
  g.value_ptrs.push_back(nullptr);
  g.cold.push_back(m);
  return lane;
}

void FleetEngine::RemoveLane(Group& g, size_t lane) {
  const size_t last = g.ids.size() - 1;
  const size_t n = g.n;
  if (lane != last) {
    const int moved = g.ids[last];
    g.ids[lane] = g.ids[last];
    std::memcpy(&g.x[lane * n], &g.x[last * n], n * sizeof(double));
    std::memcpy(&g.p[lane * n * n], &g.p[last * n * n],
                n * n * sizeof(double));
    g.step[lane] = g.step[last];
    g.psc[lane] = g.psc[last];
    g.phase[lane] = g.phase[last];
    g.ss_mode[lane] = g.ss_mode[last];
    g.ss_idx[lane] = g.ss_idx[last];
    g.p_stale[lane] = g.p_stale[last];
    g.delta[lane] = g.delta[last];
    g.last_send_tick[lane] = g.last_send_tick[last];
    g.readings[lane] = g.readings[last];
    g.energy_transmission[lane] = g.energy_transmission[last];
    g.energy_compute[lane] = g.energy_compute[last];
    g.energy_sensing[lane] = g.energy_sensing[last];
    g.link_last_sequence[lane] = g.link_last_sequence[last];
    g.link_last_valid_tick[lane] = g.link_last_valid_tick[last];
    g.link_last_resync_tick[lane] = g.link_last_resync_tick[last];
    g.link_last_update_tick[lane] = g.link_last_update_tick[last];
    g.ss_period[lane] = g.ss_period[last];
    g.batch_rank[lane] = g.batch_rank[last];
    g.value_ptrs[lane] = g.value_ptrs[last];
    g.cold[lane] = std::move(g.cold[last]);
    resident_[moved].lane = lane;
  }
  g.ids.pop_back();
  g.x.resize(g.x.size() - n);
  g.p.resize(g.p.size() - n * n);
  g.step.pop_back();
  g.psc.pop_back();
  g.phase.pop_back();
  g.ss_mode.pop_back();
  g.ss_idx.pop_back();
  g.p_stale.pop_back();
  g.delta.pop_back();
  g.last_send_tick.pop_back();
  g.readings.pop_back();
  g.energy_transmission.pop_back();
  g.energy_compute.pop_back();
  g.energy_sensing.pop_back();
  g.link_last_sequence.pop_back();
  g.link_last_valid_tick.pop_back();
  g.link_last_resync_tick.pop_back();
  g.link_last_update_tick.pop_back();
  g.ss_period.pop_back();
  g.batch_rank.pop_back();
  g.value_ptrs.pop_back();
  g.cold.pop_back();
}

Status FleetEngine::SpillLane(int group_index, size_t lane, int64_t tick,
                              const Vector* reading) {
  Group& g = *groups_[group_index];
  const int id = g.ids[lane];
  SourceNode* node = nodes_.at(id);

  DKF_ASSIGN_OR_RETURN(SourceNode::CheckpointState synth,
                       SynthesizeForLane(g, lane));
  ServerNode::LinkSnapshot link = SynthesizeLinkForLane(g, lane);
  DKF_RETURN_IF_ERROR(node->ImportCheckpoint(synth));
  // Register with the source's *nominal* model, not the (possibly
  // adapted) group model: the server builds its NoiseAdapter from the
  // registration model, and the servo's scales are relative to nominal.
  // RestoreLink then overwrites the filter with the lane's full state,
  // so the registration model's Q/R never reach the filter either way.
  const StateModel& nominal_model = groups_[eligible_group_.at(id)]->model;
  DKF_RETURN_IF_ERROR(server_->RegisterSource(id, nominal_model));
  DKF_RETURN_IF_ERROR(server_->RestoreLink(id, link));

  RemoveLane(g, lane);
  resident_.erase(id);
  spilled_.insert(id);
  order_dirty_ = true;
  ++spills_;

  if (reading != nullptr) {
    // Mid-tick spill: the server's TickAll already ran without this id,
    // so the freshly re-registered predictor replays the predict it
    // missed, then the verbatim per-source code takes the tick over.
    DKF_RETURN_IF_ERROR(server_->TickSource(id));
    auto step_or = node->ProcessReading(tick, *reading, channel_);
    if (!step_or.ok()) return step_or.status();
  }
  return Status::OK();
}

Status FleetEngine::SpillForReconfigure(int source_id) {
  auto it = resident_.find(source_id);
  if (it == resident_.end()) return Status::OK();
  return SpillLane(it->second.group, it->second.lane, /*tick=*/0,
                   /*reading=*/nullptr);
}

int64_t FleetEngine::LookupBatchPos(const ReadingBatch& batch, int id,
                                    bool* rebuilt) {
  auto it = batch_pos_.find(id);
  if (it != batch_pos_.end()) {
    const int64_t pos = it->second;
    if (pos >= 0 && static_cast<size_t>(pos) < batch.ids.size() &&
        batch.ids[pos] == id) {
      return pos;
    }
  }
  if (!*rebuilt) {
    batch_pos_.clear();
    batch_pos_.reserve(batch.ids.size());
    for (size_t i = 0; i < batch.ids.size(); ++i) {
      batch_pos_[batch.ids[i]] = static_cast<int64_t>(i);
    }
    *rebuilt = true;
    auto again = batch_pos_.find(id);
    if (again != batch_pos_.end()) return again->second;
  }
  return -1;
}

void FleetEngine::RebuildOrder() {
  order_.clear();
  order_.reserve(nodes_.size());
  for (auto& [id, node] : nodes_) {
    TickEntry entry;
    entry.id = id;
    entry.node = node;
    auto res = resident_.find(id);
    if (res != resident_.end()) {
      entry.group = res->second.group;
      entry.lane = static_cast<int32_t>(res->second.lane);
      // Carry the warm rank cache across the rebuild.
      entry.rank = groups_[entry.group]->batch_rank[res->second.lane];
    }
    order_.push_back(entry);
  }
  order_dirty_ = false;
}

Status FleetEngine::ResolveReadings(const std::map<int, Vector>* readings,
                                    const ReadingBatch* batch) {
  staged_spilled_.clear();
  staged_spilled_.reserve(spilled_.size());
  if (order_dirty_) RebuildOrder();
  bool rebuilt = false;
  // Ascending id, like RunSourceTick's staging pass: the first missing
  // reading reported is the same one the per-source path would name, and
  // nothing is resolved until everything is (error before state moves).
  for (TickEntry& entry : order_) {
    const Vector* value = nullptr;
    if (readings != nullptr) {
      auto it = readings->find(entry.id);
      if (it != readings->end()) value = &it->second;
    } else {
      // Fast path: the cached rank from the previous tick usually still
      // holds (callers keep batch order stable); fall back to the
      // position index, rebuilt at most once per tick.
      int64_t rank = entry.rank;
      if (rank < 0 || static_cast<size_t>(rank) >= batch->ids.size() ||
          batch->ids[rank] != entry.id) {
        rank = LookupBatchPos(*batch, entry.id, &rebuilt);
      }
      if (rank >= 0) {
        entry.rank = rank;
        value = &batch->values[rank];
      }
    }
    if (value == nullptr) {
      return Status::InvalidArgument(
          StrFormat("missing reading for source %d", entry.id));
    }
    if (entry.group >= 0) {
      Group& g = *groups_[entry.group];
      g.batch_rank[entry.lane] = entry.rank;
      g.value_ptrs[entry.lane] = value;
    } else {
      staged_spilled_.emplace_back(entry.node, value);
    }
  }
  return Status::OK();
}

void FleetEngine::AccountDegradedLanes() {
  // Replicates the degraded-service block at the top of
  // ServerNode::TickAll for the lanes the server no longer sees,
  // including its cheap-guard short-circuit so a fault-free run pays
  // nothing. Must run before TickAll (`now` is the tick that just
  // completed, under the pre-increment clock).
  if (server_->ticks() <= 0 ||
      (protocol_.staleness_budget <= 0 &&
       server_->fault_stats().resyncs_applied == 0)) {
    return;
  }
  const int64_t now = server_->ticks() - 1;
  for (const auto& group : groups_) {
    const Group& g = *group;
    for (size_t i = 0; i < g.ids.size(); ++i) {
      const bool degraded =
          g.link_last_resync_tick[i] == now ||
          (protocol_.staleness_budget > 0 &&
           now - g.link_last_valid_tick[i] >= protocol_.staleness_budget);
      if (!degraded) continue;
      int64_t overdue = 0;
      if (protocol_.staleness_budget > 0) {
        overdue = now - g.link_last_valid_tick[i] -
                  protocol_.staleness_budget + 1;
      }
      if (g.link_last_resync_tick[i] == now) {
        overdue = std::max<int64_t>(overdue, 1);
      }
      overdue = std::max<int64_t>(overdue, 0);
      ++degraded_ticks_;
      DKF_TRACE(obs_sink_, now, g.ids[i], TraceEventKind::kDegradedTick,
                TraceActor::kServer, static_cast<double>(overdue));
    }
  }
}

Status FleetEngine::TickLane(int group_index, size_t lane, int64_t tick,
                             bool* spilled) {
  Group& g = *groups_[group_index];
  const int id = g.ids[lane];
  const Vector* z = g.value_ptrs[lane];
  const size_t n = g.n;
  const size_t m = g.m;

  // A due heartbeat touches the channel whatever the deviation says
  // (suppressed -> heartbeat, violated -> measurement), so the per-source
  // code must own this tick either way.
  if (protocol_.heartbeat_interval > 0 &&
      tick - g.last_send_tick[lane] >= protocol_.heartbeat_interval) {
    DKF_RETURN_IF_ERROR(SpillLane(group_index, lane, tick, z));
    *spilled = true;
    return Status::OK();
  }

  double deviation = 0.0;
  const double* phi = g.phi.data();
  const double* h = g.h.data();
  double* sx = g.sx.data();

  if (g.ss_mode[lane] == kSsArmPending) {
    // The rare arm-pending predict runs through the real filter so the
    // capture/arm/freeze transition stays bit-exact, trace included.
    // First a silent replay decides suppress-vs-spill without touching
    // the lane; then, if suppressed, one traced replay per actor emits
    // exactly what the server filter (TickAll) and the mirror
    // (ProcessReading) would have, in that order.
    KalmanPredictor& replay = *g.replay;
    const KalmanFilter::FullState pre = LaneFullState(g, lane);
    replay.SetTrace(nullptr, 0, TraceActor::kSourceFilter);
    DKF_RETURN_IF_ERROR(replay.ImportFullState(pre));
    DKF_RETURN_IF_ERROR(replay.Tick());
    deviation = Deviation(replay.Predicted(), *z, DeviationNorm::kMaxAbs);
    if (deviation > g.delta[lane]) {
      DKF_RETURN_IF_ERROR(SpillLane(group_index, lane, tick, z));
      *spilled = true;
      return Status::OK();
    }
    DKF_RETURN_IF_ERROR(replay.ImportFullState(pre));
    replay.SetTrace(obs_sink_, id, TraceActor::kServerFilter);
    DKF_RETURN_IF_ERROR(replay.Tick());
    DKF_RETURN_IF_ERROR(replay.ImportFullState(pre));
    replay.SetTrace(obs_sink_, id, TraceActor::kSourceFilter);
    DKF_RETURN_IF_ERROR(replay.Tick());
    replay.SetTrace(nullptr, 0, TraceActor::kSourceFilter);
    DKF_ASSIGN_OR_RETURN(KalmanFilter::FullState post,
                         replay.ExportFullState());
    g.cold[lane] = post;
    std::memcpy(&g.x[lane * n], post.x.data(), n * sizeof(double));
    std::memcpy(&g.p[lane * n * n], post.p.RowData(0),
                n * n * sizeof(double));
    g.p_stale[lane] = 0;
    g.step[lane] = post.step;
    g.psc[lane] = post.predicts_since_correct;
    g.phase[lane] = post.phase;
    g.ss_mode[lane] = post.ss_mode;
    g.ss_idx[lane] = post.ss_idx;
  } else if (g.ss_mode[lane] == kSsArmed &&
             g.phase[lane] == kPhaseCorrected) {
    // Armed fast path (KalmanFilter::Predict, armed branch): x <- phi x,
    // covariance snaps along the frozen cycle. Flat replica of
    // MultiplyInto(Matrix, Vector) — plain ascending sums, no zero-skip.
    const double* x = &g.x[lane * n];
    for (size_t r = 0; r < n; ++r) {
      const double* phi_row = phi + r * n;
      double sum = 0.0;
      for (size_t c = 0; c < n; ++c) sum += phi_row[c] * x[c];
      sx[r] = sum;
    }
    for (size_t r = 0; r < n; ++r) {
      if (!std::isfinite(sx[r])) {
        return Status::Internal("filter state diverged to non-finite values");
      }
    }
    for (size_t r = 0; r < m; ++r) {
      const double* h_row = h + r * n;
      double sum = 0.0;
      for (size_t c = 0; c < n; ++c) sum += h_row[c] * sx[c];
      deviation = std::max(deviation, std::fabs(sum - (*z)[r]));
    }
    if (deviation > g.delta[lane]) {
      DKF_RETURN_IF_ERROR(SpillLane(group_index, lane, tick, z));
      *spilled = true;
      return Status::OK();
    }
    std::memcpy(&g.x[lane * n], sx, n * sizeof(double));
    // (ss_idx + 1) % period without the integer divide: ss_idx stays in
    // [0, period), so the wrap is a single compare.
    const int32_t next_idx = g.ss_idx[lane] + 1;
    g.ss_idx[lane] = next_idx == g.ss_period[lane] ? 0 : next_idx;
    // Defer the p <- ss_prior_p[ss_idx] copy; LaneFullState and the next
    // slow predict materialize it on demand.
    g.p_stale[lane] = 1;
    ++g.step[lane];
    ++g.psc[lane];
    g.phase[lane] = kPhasePredicted;
  } else {
    if (g.ss_mode[lane] == kSsArmed) {
      // Coasting break: a second Predict without a Correct leaves the
      // frozen cycle (DisarmSteadyState). Both halves of the dual link
      // disarm at the same step; the server filter's event lands first
      // because TickAll runs before the source loop.
      const double period = static_cast<double>(g.cold[lane].ss_period);
      DKF_TRACE(obs_sink_, g.step[lane], id, TraceEventKind::kFastPathDisarm,
                TraceActor::kServerFilter, period);
      DKF_TRACE(obs_sink_, g.step[lane], id, TraceEventKind::kFastPathDisarm,
                TraceActor::kSourceFilter, period);
      g.ss_mode[lane] = kSsTracking;
      g.cold[lane].ss_streak1 = 0;
      g.cold[lane].ss_streak2 = 0;
      g.cold[lane].ss_have_prev = 0;
      if (g.p_stale[lane]) {
        std::memcpy(&g.p[lane * n * n],
                    g.cold[lane].ss_prior_p[g.ss_idx[lane]].RowData(0),
                    n * n * sizeof(double));
        g.p_stale[lane] = 0;
      }
    }
    // Slow predict (KalmanFilter::Predict, tracking path): x <- phi x,
    // P <- phi P phi^T + Q, then Symmetrize — flat replicas of the
    // in-place kernels, including their zero-skip structure, so every
    // accumulation happens in the same order on the same values.
    const double* x = &g.x[lane * n];
    const double* p = &g.p[lane * n * n];
    double* sp1 = g.sp1.data();
    double* sp2 = g.sp2.data();
    for (size_t r = 0; r < n; ++r) {
      const double* phi_row = phi + r * n;
      double sum = 0.0;
      for (size_t c = 0; c < n; ++c) sum += phi_row[c] * x[c];
      sx[r] = sum;
    }
    // sp1 = phi P (MultiplyInto: skip zero phi entries, accumulate rows).
    std::memset(sp1, 0, n * n * sizeof(double));
    for (size_t r = 0; r < n; ++r) {
      const double* phi_row = phi + r * n;
      double* out_row = sp1 + r * n;
      for (size_t k = 0; k < n; ++k) {
        const double av = phi_row[k];
        if (av == 0.0) continue;
        const double* p_row = p + k * n;
        for (size_t c = 0; c < n; ++c) out_row[c] += av * p_row[c];
      }
    }
    // sp2 = sp1 phi^T (MultiplyTransposedInto: skip zero sp1 entries).
    for (size_t r = 0; r < n; ++r) {
      const double* a_row = sp1 + r * n;
      double* out_row = sp2 + r * n;
      for (size_t c = 0; c < n; ++c) {
        const double* b_row = phi + c * n;
        double sum = 0.0;
        for (size_t k = 0; k < n; ++k) {
          const double av = a_row[k];
          if (av == 0.0) continue;
          sum += av * b_row[k];
        }
        out_row[c] = sum;
      }
    }
    // P' = sp2 + Q (AddScaledInto with scale 1.0), then Symmetrize.
    const double* q = g.q.data();
    for (size_t i = 0; i < n * n; ++i) sp2[i] = sp2[i] + 1.0 * q[i];
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = r + 1; c < n; ++c) {
        const double avg = 0.5 * (sp2[r * n + c] + sp2[c * n + r]);
        sp2[r * n + c] = avg;
        sp2[c * n + r] = avg;
      }
    }
    for (size_t r = 0; r < n; ++r) {
      if (!std::isfinite(sx[r])) {
        return Status::Internal("filter state diverged to non-finite values");
      }
    }
    for (size_t i = 0; i < n * n; ++i) {
      if (!std::isfinite(sp2[i])) {
        return Status::Internal("filter state diverged to non-finite values");
      }
    }
    for (size_t r = 0; r < m; ++r) {
      const double* h_row = h + r * n;
      double sum = 0.0;
      for (size_t c = 0; c < n; ++c) sum += h_row[c] * sx[c];
      deviation = std::max(deviation, std::fabs(sum - (*z)[r]));
    }
    if (deviation > g.delta[lane]) {
      DKF_RETURN_IF_ERROR(SpillLane(group_index, lane, tick, z));
      *spilled = true;
      return Status::OK();
    }
    std::memcpy(&g.x[lane * n], sx, n * sizeof(double));
    std::memcpy(&g.p[lane * n * n], sp2, n * n * sizeof(double));
    ++g.step[lane];
    ++g.psc[lane];
    g.phase[lane] = kPhasePredicted;
  }

  // Suppressed-tick bookkeeping, exactly what ProcessReading accrues on
  // this path: one reading charge, one mirror filter step, one suppress
  // event carrying (deviation, delta).
  g.energy_sensing[lane] += energy_.instructions_per_reading;
  g.readings[lane] += 1;
  g.energy_compute[lane] += energy_.instructions_per_filter_step;
  DKF_TRACE(obs_sink_, tick, id, TraceEventKind::kSuppress,
            TraceActor::kSource, deviation, g.delta[lane]);
  return Status::OK();
}

Status FleetEngine::TickGroupLanes(int group_index, int64_t tick) {
  Group& g = *groups_[group_index];
  const size_t n = g.n;
  const size_t m = g.m;
  const double* phi = g.phi.data();
  const double* h = g.h.data();
  double* sx = g.sx.data();
  double* sp1 = g.sp1.data();
  double* sp2 = g.sp2.data();
  const double* q = g.q.data();
  const int64_t hb_interval = protocol_.heartbeat_interval;

  size_t lane = 0;
  while (lane < g.ids.size()) {
    // The two hot cases, replicated from TickLane: no heartbeat due,
    // and either the armed frozen-gain predict (corrected last tick) or
    // the tracking-mode slow predict (the steady regime of a
    // long-suppressed lane, which disarms after two uncorrected
    // predicts and then predicts through the full covariance update).
    // Commit happens only when the prediction is finite and inside
    // delta; every exception falls back to TickLane, which recomputes
    // from the untouched lane state bit-exactly.
    if (!(hb_interval > 0 &&
          tick - g.last_send_tick[lane] >= hb_interval)) {
      const uint8_t mode = g.ss_mode[lane];
      if (mode == kSsArmed && g.phase[lane] == kPhaseCorrected) {
        const double* x = &g.x[lane * n];
        for (size_t r = 0; r < n; ++r) {
          const double* phi_row = phi + r * n;
          double sum = 0.0;
          for (size_t c = 0; c < n; ++c) sum += phi_row[c] * x[c];
          sx[r] = sum;
        }
        bool finite = true;
        for (size_t r = 0; r < n; ++r) {
          if (!std::isfinite(sx[r])) finite = false;
        }
        if (finite) {
          const Vector* z = g.value_ptrs[lane];
          double deviation = 0.0;
          for (size_t r = 0; r < m; ++r) {
            const double* h_row = h + r * n;
            double sum = 0.0;
            for (size_t c = 0; c < n; ++c) sum += h_row[c] * sx[c];
            deviation = std::max(deviation, std::fabs(sum - (*z)[r]));
          }
          if (deviation <= g.delta[lane]) {
            std::memcpy(&g.x[lane * n], sx, n * sizeof(double));
            const int32_t next_idx = g.ss_idx[lane] + 1;
            g.ss_idx[lane] = next_idx == g.ss_period[lane] ? 0 : next_idx;
            g.p_stale[lane] = 1;
            ++g.step[lane];
            ++g.psc[lane];
            g.phase[lane] = kPhasePredicted;
            g.energy_sensing[lane] += energy_.instructions_per_reading;
            g.readings[lane] += 1;
            g.energy_compute[lane] += energy_.instructions_per_filter_step;
            DKF_TRACE(obs_sink_, tick, g.ids[lane],
                      TraceEventKind::kSuppress, TraceActor::kSource,
                      deviation, g.delta[lane]);
            ++lane;
            continue;
          }
        }
      } else if (mode == kSsTracking && !g.p_stale[lane]) {
        // Slow predict, identical flat kernels to TickLane's tracking
        // branch (zero-skip structure and accumulation order included).
        const double* x = &g.x[lane * n];
        const double* p = &g.p[lane * n * n];
        for (size_t r = 0; r < n; ++r) {
          const double* phi_row = phi + r * n;
          double sum = 0.0;
          for (size_t c = 0; c < n; ++c) sum += phi_row[c] * x[c];
          sx[r] = sum;
        }
        std::memset(sp1, 0, n * n * sizeof(double));
        for (size_t r = 0; r < n; ++r) {
          const double* phi_row = phi + r * n;
          double* out_row = sp1 + r * n;
          for (size_t k = 0; k < n; ++k) {
            const double av = phi_row[k];
            if (av == 0.0) continue;
            const double* p_row = p + k * n;
            for (size_t c = 0; c < n; ++c) out_row[c] += av * p_row[c];
          }
        }
        for (size_t r = 0; r < n; ++r) {
          const double* a_row = sp1 + r * n;
          double* out_row = sp2 + r * n;
          for (size_t c = 0; c < n; ++c) {
            const double* b_row = phi + c * n;
            double sum = 0.0;
            for (size_t k = 0; k < n; ++k) {
              const double av = a_row[k];
              if (av == 0.0) continue;
              sum += av * b_row[k];
            }
            out_row[c] = sum;
          }
        }
        for (size_t i = 0; i < n * n; ++i) sp2[i] = sp2[i] + 1.0 * q[i];
        for (size_t r = 0; r < n; ++r) {
          for (size_t c = r + 1; c < n; ++c) {
            const double avg = 0.5 * (sp2[r * n + c] + sp2[c * n + r]);
            sp2[r * n + c] = avg;
            sp2[c * n + r] = avg;
          }
        }
        bool finite = true;
        for (size_t r = 0; r < n; ++r) {
          if (!std::isfinite(sx[r])) finite = false;
        }
        for (size_t i = 0; i < n * n; ++i) {
          if (!std::isfinite(sp2[i])) finite = false;
        }
        if (finite) {
          const Vector* z = g.value_ptrs[lane];
          double deviation = 0.0;
          for (size_t r = 0; r < m; ++r) {
            const double* h_row = h + r * n;
            double sum = 0.0;
            for (size_t c = 0; c < n; ++c) sum += h_row[c] * sx[c];
            deviation = std::max(deviation, std::fabs(sum - (*z)[r]));
          }
          if (deviation <= g.delta[lane]) {
            std::memcpy(&g.x[lane * n], sx, n * sizeof(double));
            std::memcpy(&g.p[lane * n * n], sp2, n * n * sizeof(double));
            ++g.step[lane];
            ++g.psc[lane];
            g.phase[lane] = kPhasePredicted;
            g.energy_sensing[lane] += energy_.instructions_per_reading;
            g.readings[lane] += 1;
            g.energy_compute[lane] += energy_.instructions_per_filter_step;
            DKF_TRACE(obs_sink_, tick, g.ids[lane],
                      TraceEventKind::kSuppress, TraceActor::kSource,
                      deviation, g.delta[lane]);
            ++lane;
            continue;
          }
        }
      }
    }
    bool spilled = false;
    DKF_RETURN_IF_ERROR(TickLane(group_index, lane, tick, &spilled));
    // A spill swap-removed this lane; the moved lane (if any) now sits
    // at the same index and still needs its tick.
    if (!spilled) ++lane;
  }
  return Status::OK();
}

Status FleetEngine::TryAbsorbAll() {
  if (spilled_.empty()) return Status::OK();
  // One channel pass for the whole scan: probing has_residual_for per
  // spilled source walks the in-flight queue each time, which turns a
  // convergence-phase fleet (everything spilled, everything in flight)
  // into a quadratic stall.
  residual_scratch_.clear();
  channel_->AppendResidualSources(&residual_scratch_);
  std::unordered_set<int> busy(residual_scratch_.begin(),
                               residual_scratch_.end());
  for (auto it = spilled_.begin(); it != spilled_.end();) {
    const int id = *it;
    const int group_index = eligible_group_.at(id);
    if (group_index < 0) {
      ++it;
      continue;
    }
    SourceNode* node = nodes_.at(id);
    // Cheap prechecks before the full export: a pending resync or any
    // channel residue (an in-flight message or an uncollected deferred
    // ACK) can still mutate this link asymmetrically.
    if (node->resync_pending() || busy.contains(id)) {
      ++it;
      continue;
    }
    auto state_or = node->ExportCheckpoint();
    if (!state_or.ok()) return state_or.status();
    const SourceNode::CheckpointState& state = state_or.value();
    if (state.pending || state.resync_attempts != 0 ||
        state.first_resync_sequence != 0 ||
        state.smoothing_factor.has_value()) {
      ++it;
      continue;
    }
    auto link_or = server_->ExportLink(id);
    if (!link_or.ok()) return link_or.status();
    const ServerNode::LinkSnapshot& link = link_or.value();
    int target_index = group_index;
    const NoiseAdapter& adapter = node->noise_adapter();
    if (adapter.enabled()) {
      // Adaptive links only fold once the servo has locked (the scales
      // stopped moving) AND both ends' servo state is bit-identical —
      // otherwise the next correction would move noise matrices a lane
      // cannot represent, and convergence gating also keeps the number
      // of per-(Q,R) groups bounded by the number of settled regimes.
      if (!adapter.Converged() || !BitEqual(state.adapt, link.adapt)) {
        ++it;
        continue;
      }
      if (!BitEqual(groups_[group_index]->q, state.mirror.process_noise) ||
          !BitEqual(groups_[group_index]->r,
                    state.mirror.measurement_noise)) {
        // The servo moved this source off its nominal noise: fold into a
        // group keyed by the adapted (Q, R) instead. eligible_group_
        // keeps pointing at the nominal group so spills re-register the
        // nominal model.
        StateModel adapted = groups_[group_index]->model;
        adapted.options.process_noise = state.mirror.process_noise;
        adapted.options.measurement_noise = state.mirror.measurement_noise;
        auto adapted_or = GroupFor(adapted);
        if (!adapted_or.ok()) return adapted_or.status();
        target_index = adapted_or.value();
        if (target_index < 0) {
          ++it;
          continue;
        }
      }
    }
    Group& g = *groups_[target_index];
    // The equivalence contract: fold only when mirror and predictor are
    // the same filter bit-for-bit AND still running the group's cached
    // coefficients (a reconfigured Q/R would diverge from the flats).
    if (!FullStateBitEqual(state.mirror, link.predictor) ||
        !BitEqual(g.q, state.mirror.process_noise) ||
        !BitEqual(g.r, state.mirror.measurement_noise)) {
      ++it;
      continue;
    }
    const size_t lane = AddLane(g, id, state, link);
    DKF_RETURN_IF_ERROR(server_->UnregisterSource(id));
    resident_[id] = LaneRef{target_index, lane};
    order_dirty_ = true;
    it = spilled_.erase(it);
  }
  return Status::OK();
}

Status FleetEngine::ProcessTickImpl(int64_t tick,
                                    const std::map<int, Vector>* readings,
                                    const ReadingBatch* batch) {
  DKF_RETURN_IF_ERROR(ResolveReadings(readings, batch));
  // Same phase order as RunSourceTick: degraded accounting for the
  // completed tick (lanes here, spilled links inside TickAll), server
  // predicts, channel drain, then the sources — spilled first through the
  // verbatim path, lanes through the flat kernel.
  AccountDegradedLanes();
  DKF_RETURN_IF_ERROR(server_->TickAll());
  DKF_RETURN_IF_ERROR(channel_->BeginTick(tick));
  for (auto& [node, reading] : staged_spilled_) {
    auto step_or = node->ProcessReading(tick, *reading, channel_);
    if (!step_or.ok()) return step_or.status();
  }
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    DKF_RETURN_IF_ERROR(TickGroupLanes(static_cast<int>(gi), tick));
  }
  return TryAbsorbAll();
}

Status FleetEngine::ProcessTick(int64_t tick,
                                const std::map<int, Vector>& readings) {
  return ProcessTickImpl(tick, &readings, nullptr);
}

Status FleetEngine::ProcessTick(int64_t tick, const ReadingBatch& batch) {
  if (batch.ids.size() != batch.values.size()) {
    return Status::InvalidArgument(
        StrFormat("reading batch has %zu ids but %zu values",
                  batch.ids.size(), batch.values.size()));
  }
  return ProcessTickImpl(tick, nullptr, &batch);
}

Result<Vector> FleetEngine::Answer(int source_id) const {
  auto it = resident_.find(source_id);
  if (it == resident_.end()) {
    return Status::NotFound(
        StrFormat("source %d not registered", source_id));
  }
  const Group& g = *groups_[it->second.group];
  DKF_RETURN_IF_ERROR(
      g.loaner->ImportFullState(LaneFullState(g, it->second.lane)));
  return g.loaner->Predicted();
}

Result<ServerNode::ConfidentAnswer> FleetEngine::AnswerWithConfidence(
    int source_id) const {
  auto it = resident_.find(source_id);
  if (it == resident_.end()) {
    return Status::NotFound(
        StrFormat("source %d not registered", source_id));
  }
  const Group& g = *groups_[it->second.group];
  const size_t lane = it->second.lane;
  DKF_RETURN_IF_ERROR(g.loaner->ImportFullState(LaneFullState(g, lane)));
  ServerNode::ConfidentAnswer answer;
  answer.value = g.loaner->Predicted();
  answer.covariance = g.loaner->PredictedCovariance();
  // Degraded test + inflation from the lane's link scalars, replicating
  // ServerNode::IsDegraded / OverdueTicks / AnswerWithConfidence.
  const int64_t ticks_done = server_->ticks();
  if (ticks_done > 0) {
    const int64_t now = ticks_done - 1;
    const bool degraded =
        g.link_last_resync_tick[lane] == now ||
        (protocol_.staleness_budget > 0 &&
         now - g.link_last_valid_tick[lane] >= protocol_.staleness_budget);
    if (degraded) {
      answer.degraded = true;
      if (answer.covariance.has_value()) {
        int64_t overdue = 0;
        if (protocol_.staleness_budget > 0) {
          overdue = now - g.link_last_valid_tick[lane] -
                    protocol_.staleness_budget + 1;
        }
        if (g.link_last_resync_tick[lane] == now) {
          overdue = std::max<int64_t>(overdue, 1);
        }
        overdue = std::max<int64_t>(overdue, 0);
        const double scale = 1.0 + protocol_.degraded_inflation *
                                       static_cast<double>(overdue);
        Matrix& covariance = *answer.covariance;
        for (size_t r = 0; r < covariance.rows(); ++r) {
          for (size_t c = 0; c < covariance.cols(); ++c) {
            covariance(r, c) *= scale;
          }
        }
      }
    }
  }
  return answer;
}

Result<bool> FleetEngine::answer_degraded(int source_id) const {
  auto it = resident_.find(source_id);
  if (it == resident_.end()) {
    return Status::NotFound(
        StrFormat("source %d not registered", source_id));
  }
  const Group& g = *groups_[it->second.group];
  const size_t lane = it->second.lane;
  const int64_t ticks_done = server_->ticks();
  if (ticks_done <= 0) return false;
  const int64_t now = ticks_done - 1;
  if (g.link_last_resync_tick[lane] == now) return true;
  return protocol_.staleness_budget > 0 &&
         now - g.link_last_valid_tick[lane] >= protocol_.staleness_budget;
}

Result<SourceNode::CheckpointState> FleetEngine::SynthesizeSourceState(
    int source_id) const {
  auto it = resident_.find(source_id);
  if (it == resident_.end()) {
    return Status::NotFound(
        StrFormat("source %d not resident", source_id));
  }
  return SynthesizeForLane(*groups_[it->second.group], it->second.lane);
}

Result<ServerNode::LinkSnapshot> FleetEngine::SynthesizeLinkState(
    int source_id) const {
  auto it = resident_.find(source_id);
  if (it == resident_.end()) {
    return Status::NotFound(
        StrFormat("source %d not resident", source_id));
  }
  return SynthesizeLinkForLane(*groups_[it->second.group], it->second.lane);
}

}  // namespace dkf
