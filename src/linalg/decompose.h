#ifndef DKF_LINALG_DECOMPOSE_H_
#define DKF_LINALG_DECOMPOSE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace dkf {

/// LU factorization with partial pivoting of a square matrix. Errors when
/// the matrix is (numerically) singular.
class LuDecomposition {
 public:
  /// Factors `a`. Returns InvalidArgument for a non-square input and
  /// FailedPrecondition for a singular one.
  static Result<LuDecomposition> Compute(const Matrix& a);

  /// Solves A x = b.
  Result<Vector> Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Result<Matrix> Solve(const Matrix& b) const;

  /// A^{-1}.
  Result<Matrix> Inverse() const;

  /// det(A), including the pivot-permutation sign.
  double Determinant() const;

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> pivots, int pivot_sign)
      : lu_(std::move(lu)), pivots_(std::move(pivots)),
        pivot_sign_(pivot_sign) {}

  Matrix lu_;                   // packed L (unit diagonal) and U
  std::vector<size_t> pivots_;  // row permutation
  int pivot_sign_;
};

/// Cholesky (LL^T) factorization of a symmetric positive-definite matrix.
/// Errors when the matrix is not SPD — the canonical "covariance went bad"
/// detector for the filter layer.
class CholeskyDecomposition {
 public:
  static Result<CholeskyDecomposition> Compute(const Matrix& a);

  /// Solves A x = b using the factor.
  Result<Vector> Solve(const Vector& b) const;

  /// A^{-1}.
  Result<Matrix> Inverse() const;

  /// The lower-triangular factor L with A = L L^T.
  const Matrix& L() const { return l_; }

  /// log(det(A)) = 2 * sum(log(L_ii)); cheaper and more stable than det.
  double LogDeterminant() const;

 private:
  explicit CholeskyDecomposition(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Workspace-based LU primitives for allocation-free hot paths. These are
/// the kernels LuDecomposition is built on; filters call them directly
/// against preallocated scratch so a factor-and-solve costs zero heap
/// allocations once the workspace is warm (see docs/perf.md).
///
/// Factors `a` in place into packed LU form (unit-diagonal L below, U on
/// and above the diagonal) with partial pivoting, recording the row
/// permutation in `pivots` (resized to n, reusing capacity) and the
/// permutation sign in `pivot_sign` when non-null. Bit-identical to
/// LuDecomposition::Compute. Errors leave `a` in an unspecified state.
Status LuFactorInPlace(Matrix* a, std::vector<size_t>* pivots,
                       int* pivot_sign = nullptr);

/// Solves A x = b from the packed factor produced by LuFactorInPlace,
/// writing the solution into `x` (reshaped, capacity reused). `x` must not
/// alias `b`. Bit-identical to LuDecomposition::Solve.
Status LuSolveInto(const Matrix& lu, const std::vector<size_t>& pivots,
                   const Vector& b, Vector* x);

/// Solves the linear least-squares problem min ||A x - b||_2 via Householder
/// QR. Requires rows >= cols and full column rank.
Result<Vector> SolveLeastSquares(const Matrix& a, const Vector& b);

/// Convenience: A^{-1} via LU.
Result<Matrix> Inverse(const Matrix& a);

/// Convenience: solve A x = b via LU.
Result<Vector> SolveLinear(const Matrix& a, const Vector& b);

}  // namespace dkf

#endif  // DKF_LINALG_DECOMPOSE_H_
