#include "linalg/matrix.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace dkf {

Vector Vector::operator+(const Vector& other) const {
  assert(size() == other.size());
  Vector out(*this);
  out += other;
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  assert(size() == other.size());
  Vector out(*this);
  out -= other;
  return out;
}

Vector Vector::operator*(double scalar) const {
  Vector out(*this);
  for (auto& x : out.data_) x *= scalar;
  return out;
}

Vector& Vector::operator+=(const Vector& other) {
  assert(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  assert(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

double Vector::Dot(const Vector& other) const {
  assert(size() == other.size());
  double sum = 0.0;
  for (size_t i = 0; i < size(); ++i) sum += data_[i] * other.data_[i];
  return sum;
}

double Vector::Norm() const { return std::sqrt(Dot(*this)); }

double Vector::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

Matrix Vector::Outer(const Vector& other) const {
  Matrix out(size(), other.size());
  for (size_t r = 0; r < size(); ++r) {
    for (size_t c = 0; c < other.size(); ++c) {
      out(r, c) = data_[r] * other.data_[c];
    }
  }
  return out;
}

bool Vector::IsFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Vector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6g", data_[i]);
  }
  out += "]";
  return out;
}

Vector operator*(double scalar, const Vector& v) { return v * scalar; }

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.Assign(rows_ * cols_, 0.0);
  size_t i = 0;
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    for (double v : row) data_[i++] = v;
  }
}

Matrix Matrix::Identity(size_t n) { return ScaledIdentity(n, 1.0); }

Matrix Matrix::Diagonal(const Vector& diagonal) {
  Matrix out(diagonal.size(), diagonal.size());
  for (size_t i = 0; i < diagonal.size(); ++i) out(i, i) = diagonal[i];
  return out;
}

Matrix Matrix::ScaledIdentity(size_t n, double value) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = value;
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(*this);
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(*this);
  out -= other;
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(*this);
  for (auto& x : out.data_) x *= scalar;
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Vector Matrix::Row(size_t r) const {
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(size_t c) const {
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::Trace() const {
  assert(rows_ == cols_);
  double sum = 0.0;
  for (size_t i = 0; i < rows_; ++i) sum += (*this)(i, i);
  return sum;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

void Matrix::Symmetrize() {
  assert(rows_ == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

bool Matrix::IsFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::string out = "[";
  for (size_t r = 0; r < rows_; ++r) {
    if (r > 0) out += ", ";
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += StrFormat("%.6g", (*this)(r, c));
    }
    out += "]";
  }
  out += "]";
  return out;
}

Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

}  // namespace dkf
