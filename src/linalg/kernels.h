#ifndef DKF_LINALG_KERNELS_H_
#define DKF_LINALG_KERNELS_H_

#include "linalg/matrix.h"

namespace dkf {

/// In-place fused kernels for the per-tick filter hot loop.
///
/// Each kernel writes its result into a caller-owned output object,
/// reshaping it with AssignZero (which reuses capacity), so a scratch
/// Vector/Matrix recycled across ticks never touches the allocator once
/// warm — and for the library's small dimensions (n <= 6) never touches
/// it at all thanks to the inline storage in Vector/Matrix.
///
/// Determinism contract: every kernel performs the exact same
/// floating-point operations in the exact same order as the operator
/// expression it replaces (including the zero-skip in matrix multiply),
/// so `MultiplyInto(a, b, &out)` produces bit-identical entries to
/// `out = a * b`, etc. The golden tests in tests/linalg/kernels_test.cc
/// pin this with exact `==` comparisons for all dims 1-6.
///
/// Aliasing: the multiply kernels require `out` to be distinct from both
/// inputs (checked by assert). The elementwise kernels (AddScaledInto,
/// SymmetrizeInto) allow `out` to alias either input.

/// out = a * b. Bit-identical to `a * b`.
void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * v. Bit-identical to `a * v`.
void MultiplyInto(const Matrix& a, const Vector& v, Vector* out);

/// out = a * b^T without materializing the transpose. Bit-identical to
/// `a * b.Transpose()`.
void MultiplyTransposedInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a + scale * b, elementwise. With scale +1/-1 this is
/// bit-identical to `a + b` / `a - b` (negation is exact in IEEE-754).
/// `out` may alias `a` or `b`.
void AddScaledInto(const Matrix& a, const Matrix& b, double scale,
                   Matrix* out);

/// Vector overload of AddScaledInto; `out` may alias `a` or `b`.
void AddScaledInto(const Vector& a, const Vector& b, double scale,
                   Vector* out);

/// out = (a + a^T) / 2. Bit-identical to `{ out = a; out.Symmetrize(); }`.
/// `out` may alias `a`.
void SymmetrizeInto(const Matrix& a, Matrix* out);

}  // namespace dkf

#endif  // DKF_LINALG_KERNELS_H_
