#include "linalg/kernels.h"

#include <cassert>
#include <cstddef>

namespace dkf {

void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(out != &a && out != &b);
  assert(a.cols() == b.rows());
  out->AssignZero(a.rows(), b.cols());
  const size_t inner = a.cols();
  const size_t cols = b.cols();
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* a_row = a.RowData(r);
    double* out_row = out->MutableRowData(r);
    for (size_t k = 0; k < inner; ++k) {
      const double av = a_row[k];
      if (av == 0.0) continue;
      const double* b_row = b.RowData(k);
      for (size_t c = 0; c < cols; ++c) out_row[c] += av * b_row[c];
    }
  }
}

void MultiplyInto(const Matrix& a, const Vector& v, Vector* out) {
  assert(out != &v);
  assert(a.cols() == v.size());
  out->AssignZero(a.rows());
  const size_t cols = a.cols();
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* a_row = a.RowData(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols; ++c) sum += a_row[c] * v[c];
    (*out)[r] = sum;
  }
}

void MultiplyTransposedInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(out != &a && out != &b);
  assert(a.cols() == b.cols());
  out->AssignZero(a.rows(), b.rows());
  const size_t inner = a.cols();
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* a_row = a.RowData(r);
    double* out_row = out->MutableRowData(r);
    for (size_t c = 0; c < b.rows(); ++c) {
      const double* b_row = b.RowData(c);
      // Same accumulation order (and zero-skip) as `a * b.Transpose()`.
      double sum = 0.0;
      for (size_t k = 0; k < inner; ++k) {
        const double av = a_row[k];
        if (av == 0.0) continue;
        sum += av * b_row[k];
      }
      out_row[c] = sum;
    }
  }
}

void AddScaledInto(const Matrix& a, const Matrix& b, double scale,
                   Matrix* out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (out != &a && out != &b) out->AssignZero(a.rows(), a.cols());
  const size_t n = a.rows() * a.cols();
  const double* pa = a.RowData(0);
  const double* pb = b.RowData(0);
  double* po = out->MutableRowData(0);
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] + scale * pb[i];
}

void AddScaledInto(const Vector& a, const Vector& b, double scale,
                   Vector* out) {
  assert(a.size() == b.size());
  if (out != &a && out != &b) out->AssignZero(a.size());
  const size_t n = a.size();
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] + scale * pb[i];
}

void SymmetrizeInto(const Matrix& a, Matrix* out) {
  assert(a.rows() == a.cols());
  if (out != &a) *out = a;
  out->Symmetrize();
}

}  // namespace dkf
