#ifndef DKF_LINALG_MATRIX_H_
#define DKF_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace dkf {

class Matrix;

/// A dense column vector of doubles. Kalman-filter state dimensions in this
/// library are tiny (n <= 6), so all storage is heap-backed row-major dense
/// with no blocking — the same regime the paper's JAMA-based implementation
/// operated in.
class Vector {
 public:
  Vector() = default;
  /// A vector of `n` zeros.
  explicit Vector(size_t n) : data_(n, 0.0) {}
  /// From explicit entries, e.g. Vector({1.0, 2.0}).
  Vector(std::initializer_list<double> entries) : data_(entries) {}
  /// From a std::vector.
  explicit Vector(std::vector<double> entries) : data_(std::move(entries)) {}

  size_t size() const { return data_.size(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  const std::vector<double>& data() const { return data_; }

  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double scalar) const;
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);

  /// Dot product; dimensions must match.
  double Dot(const Vector& other) const;

  /// Euclidean norm.
  double Norm() const;

  /// Largest absolute entry (infinity norm); 0 for an empty vector.
  double MaxAbs() const;

  /// Outer product: this * other^T, an (size x other.size) matrix.
  Matrix Outer(const Vector& other) const;

  /// True when every entry is finite.
  bool IsFinite() const;

  /// "[a, b, c]" with %.6g entries.
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

Vector operator*(double scalar, const Vector& v);

/// A dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// An (rows x cols) matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// From nested initializer lists: Matrix({{1, 2}, {3, 4}}). All rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The (n x n) identity.
  static Matrix Identity(size_t n);
  /// A square matrix with `diagonal` on the diagonal.
  static Matrix Diagonal(const Vector& diagonal);
  /// A square matrix with `value` repeated on the diagonal.
  static Matrix ScaledIdentity(size_t n, double value);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double scalar) const;
  Vector operator*(const Vector& v) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  Matrix Transpose() const;

  /// Row `r` as a vector.
  Vector Row(size_t r) const;
  /// Column `c` as a vector.
  Vector Col(size_t c) const;

  /// Sum of diagonal entries; requires a square matrix.
  double Trace() const;

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Largest |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// Replaces the matrix with (M + M^T) / 2 — used after covariance updates
  /// to wash out floating-point asymmetry.
  void Symmetrize();

  /// True when every entry is finite.
  bool IsFinite() const;

  /// Multi-line "[[a, b], [c, d]]"-style rendering with %.6g entries.
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(double scalar, const Matrix& m);

}  // namespace dkf

#endif  // DKF_LINALG_MATRIX_H_
