#ifndef DKF_LINALG_MATRIX_H_
#define DKF_LINALG_MATRIX_H_

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace dkf {

namespace internal {

/// Small-buffer storage for the linalg types: entries live in a fixed
/// inline array until the element count exceeds `InlineCapacity`, after
/// which they move to a heap block. Kalman-filter state dimensions in this
/// library are tiny (n <= 6), so in practice vectors and matrices never
/// touch the allocator — which is what makes the per-tick filter hot loop
/// allocation-free (see docs/perf.md). Capacity never shrinks: once a
/// buffer has grown (inline or heap), re-assigning a smaller size reuses
/// the existing storage, so scratch objects can be recycled across ticks.
template <size_t InlineCapacity>
class InlineBuffer {
 public:
  InlineBuffer() = default;
  InlineBuffer(size_t n, double value) { Assign(n, value); }
  InlineBuffer(const InlineBuffer& other) { *this = other; }
  InlineBuffer(InlineBuffer&& other) noexcept { *this = std::move(other); }
  ~InlineBuffer() { delete[] heap_; }

  InlineBuffer& operator=(const InlineBuffer& other) {
    if (this == &other) return *this;
    GrowDiscard(other.size_);
    size_ = other.size_;
    if (size_ > 0) std::memcpy(data(), other.data(), size_ * sizeof(double));
    return *this;
  }

  InlineBuffer& operator=(InlineBuffer&& other) noexcept {
    if (this == &other) return *this;
    if (other.heap_ != nullptr) {
      delete[] heap_;
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = InlineCapacity;
      other.size_ = 0;
    } else {
      // Inline contents cannot be stolen; copy them (size <= InlineCapacity,
      // so this never allocates).
      GrowDiscard(other.size_);
      size_ = other.size_;
      if (size_ > 0) {
        std::memcpy(data(), other.inline_, size_ * sizeof(double));
      }
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  double* data() { return heap_ != nullptr ? heap_ : inline_; }
  const double* data() const { return heap_ != nullptr ? heap_ : inline_; }

  double operator[](size_t i) const { return data()[i]; }
  double& operator[](size_t i) { return data()[i]; }

  double* begin() { return data(); }
  double* end() { return data() + size_; }
  const double* begin() const { return data(); }
  const double* end() const { return data() + size_; }

  /// Resizes to `n` entries, all set to `value`, reusing capacity.
  void Assign(size_t n, double value) {
    GrowDiscard(n);
    size_ = n;
    for (size_t i = 0; i < n; ++i) data()[i] = value;
  }

  /// Resizes to `n` entries copied from `src` (must not alias this
  /// buffer's storage), reusing capacity.
  void AssignCopy(size_t n, const double* src) {
    GrowDiscard(n);
    size_ = n;
    if (n > 0) std::memcpy(data(), src, n * sizeof(double));
  }

 private:
  /// Ensures capacity for `n` entries; contents are unspecified afterwards.
  void GrowDiscard(size_t n) {
    if (n <= capacity_) return;
    delete[] heap_;
    heap_ = new double[n];
    capacity_ = n;
  }

  double inline_[InlineCapacity];
  double* heap_ = nullptr;
  size_t capacity_ = InlineCapacity;
  size_t size_ = 0;
};

}  // namespace internal

/// Inline capacities sized for the library's regime (state dim n <= 6,
/// measurement dim m <= n): a vector holds up to a 6-state, a matrix up to
/// a 6x6 block, before falling back to the heap.
inline constexpr size_t kVectorInlineCapacity = 6;
inline constexpr size_t kMatrixInlineCapacity = 36;

class Matrix;

/// A dense column vector of doubles with inline small-size storage
/// (n <= 6 never allocates; larger sizes fall back to the heap).
class Vector {
 public:
  Vector() = default;
  /// A vector of `n` zeros.
  explicit Vector(size_t n) : data_(n, 0.0) {}
  /// From explicit entries, e.g. Vector({1.0, 2.0}).
  Vector(std::initializer_list<double> entries) {
    data_.AssignCopy(entries.size(), entries.begin());
  }
  /// From a std::vector (copies the entries).
  explicit Vector(const std::vector<double>& entries) {
    data_.AssignCopy(entries.size(), entries.data());
  }

  size_t size() const { return data_.size(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  /// Contiguous entry storage.
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// The entries copied into a std::vector (allocates; not for hot paths).
  std::vector<double> ToStdVector() const {
    return std::vector<double>(data_.begin(), data_.end());
  }

  /// Resizes to `n` entries, all zero, reusing existing capacity (the
  /// scratch-recycling primitive used by the in-place kernels).
  void AssignZero(size_t n) { data_.Assign(n, 0.0); }

  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double scalar) const;
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);

  /// Dot product; dimensions must match.
  double Dot(const Vector& other) const;

  /// Euclidean norm.
  double Norm() const;

  /// Largest absolute entry (infinity norm); 0 for an empty vector.
  double MaxAbs() const;

  /// Outer product: this * other^T, an (size x other.size) matrix.
  Matrix Outer(const Vector& other) const;

  /// True when every entry is finite.
  bool IsFinite() const;

  /// "[a, b, c]" with %.6g entries.
  std::string ToString() const;

 private:
  internal::InlineBuffer<kVectorInlineCapacity> data_;
};

Vector operator*(double scalar, const Vector& v);

/// A dense row-major matrix of doubles with inline small-size storage
/// (up to 6x6 never allocates; larger shapes fall back to the heap).
class Matrix {
 public:
  Matrix() = default;
  /// An (rows x cols) matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// From nested initializer lists: Matrix({{1, 2}, {3, 4}}). All rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The (n x n) identity.
  static Matrix Identity(size_t n);
  /// A square matrix with `diagonal` on the diagonal.
  static Matrix Diagonal(const Vector& diagonal);
  /// A square matrix with `value` repeated on the diagonal.
  static Matrix ScaledIdentity(size_t n, double value);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  /// Row `r` as a contiguous span of cols() doubles (row-major storage).
  const double* RowData(size_t r) const { return data_.data() + r * cols_; }
  double* MutableRowData(size_t r) { return data_.data() + r * cols_; }

  /// Reshapes to (rows x cols) with every entry zero, reusing existing
  /// capacity (the scratch-recycling primitive used by the in-place
  /// kernels).
  void AssignZero(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.Assign(rows * cols, 0.0);
  }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double scalar) const;
  Vector operator*(const Vector& v) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  Matrix Transpose() const;

  /// Row `r` as a vector.
  Vector Row(size_t r) const;
  /// Column `c` as a vector.
  Vector Col(size_t c) const;

  /// Sum of diagonal entries; requires a square matrix.
  double Trace() const;

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Largest |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// Replaces the matrix with (M + M^T) / 2 — used after covariance updates
  /// to wash out floating-point asymmetry.
  void Symmetrize();

  /// True when every entry is finite.
  bool IsFinite() const;

  /// Multi-line "[[a, b], [c, d]]"-style rendering with %.6g entries.
  std::string ToString() const;

 private:
  friend void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* out);
  friend void MultiplyTransposedInto(const Matrix& a, const Matrix& b,
                                     Matrix* out);

  size_t rows_ = 0;
  size_t cols_ = 0;
  internal::InlineBuffer<kMatrixInlineCapacity> data_;
};

Matrix operator*(double scalar, const Matrix& m);

}  // namespace dkf

#endif  // DKF_LINALG_MATRIX_H_
