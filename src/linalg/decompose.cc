#include "linalg/decompose.h"

#include <cmath>

#include "common/string_util.h"

namespace dkf {

namespace {

// Pivots below this magnitude are treated as singular. The library's
// matrices are tiny and well-scaled (covariances near unity), so an
// absolute threshold is adequate.
constexpr double kSingularTolerance = 1e-13;

}  // namespace

Status LuFactorInPlace(Matrix* a, std::vector<size_t>* pivots,
                       int* pivot_sign) {
  if (a->rows() != a->cols()) {
    return Status::InvalidArgument(
        StrFormat("LU of non-square %zux%zu matrix", a->rows(), a->cols()));
  }
  Matrix& lu = *a;
  const size_t n = lu.rows();
  pivots->resize(n);
  int sign = 1;
  for (size_t i = 0; i < n; ++i) (*pivots)[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude entry on/below the diagonal.
    size_t pivot_row = col;
    double pivot_mag = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < kSingularTolerance) {
      return Status::FailedPrecondition("matrix is numerically singular");
    }
    if (pivot_row != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(lu(pivot_row, c), lu(col, c));
      }
      std::swap((*pivots)[pivot_row], (*pivots)[col]);
      sign = -sign;
    }
    const double pivot = lu(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / pivot;
      lu(r, col) = factor;
      for (size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
    }
  }
  if (pivot_sign != nullptr) *pivot_sign = sign;
  return Status::OK();
}

Status LuSolveInto(const Matrix& lu, const std::vector<size_t>& pivots,
                   const Vector& b, Vector* x) {
  const size_t n = lu.rows();
  if (b.size() != n) {
    return Status::InvalidArgument(
        StrFormat("rhs size %zu, matrix order %zu", b.size(), n));
  }
  // Apply permutation, then forward/back substitution.
  x->AssignZero(n);
  for (size_t i = 0; i < n; ++i) (*x)[i] = b[pivots[i]];
  for (size_t i = 1; i < n; ++i) {
    double sum = (*x)[i];
    for (size_t j = 0; j < i; ++j) sum -= lu(i, j) * (*x)[j];
    (*x)[i] = sum;
  }
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = (*x)[i];
    for (size_t j = i + 1; j < n; ++j) sum -= lu(i, j) * (*x)[j];
    (*x)[i] = sum / lu(i, i);
  }
  return Status::OK();
}

Result<LuDecomposition> LuDecomposition::Compute(const Matrix& a) {
  Matrix lu = a;
  std::vector<size_t> pivots;
  int pivot_sign = 1;
  DKF_RETURN_IF_ERROR(LuFactorInPlace(&lu, &pivots, &pivot_sign));
  return LuDecomposition(std::move(lu), std::move(pivots), pivot_sign);
}

Result<Vector> LuDecomposition::Solve(const Vector& b) const {
  Vector x;
  DKF_RETURN_IF_ERROR(LuSolveInto(lu_, pivots_, b, &x));
  return x;
}

Result<Matrix> LuDecomposition::Solve(const Matrix& b) const {
  const size_t n = lu_.rows();
  if (b.rows() != n) {
    return Status::InvalidArgument(
        StrFormat("rhs has %zu rows, matrix order %zu", b.rows(), n));
  }
  Matrix x(n, b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    auto col_or = Solve(b.Col(c));
    if (!col_or.ok()) return col_or.status();
    const Vector& col = col_or.value();
    for (size_t r = 0; r < n; ++r) x(r, c) = col[r];
  }
  return x;
}

Result<Matrix> LuDecomposition::Inverse() const {
  return Solve(Matrix::Identity(lu_.rows()));
}

double LuDecomposition::Determinant() const {
  double det = pivot_sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Result<CholeskyDecomposition> CholeskyDecomposition::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("Cholesky of non-square %zux%zu matrix", a.rows(),
                  a.cols()));
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c <= r; ++c) {
      double sum = a(r, c);
      for (size_t k = 0; k < c; ++k) sum -= l(r, k) * l(c, k);
      if (r == c) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        l(r, c) = std::sqrt(sum);
      } else {
        l(r, c) = sum / l(c, c);
      }
    }
  }
  return CholeskyDecomposition(std::move(l));
}

Result<Vector> CholeskyDecomposition::Solve(const Vector& b) const {
  const size_t n = l_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument(
        StrFormat("rhs size %zu, matrix order %zu", b.size(), n));
  }
  // L y = b, then L^T x = y.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t j = 0; j < i; ++j) sum -= l_(i, j) * y[j];
    y[i] = sum / l_(i, i);
  }
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t j = i + 1; j < n; ++j) sum -= l_(j, i) * x[j];
    x[i] = sum / l_(i, i);
  }
  return x;
}

Result<Matrix> CholeskyDecomposition::Inverse() const {
  const size_t n = l_.rows();
  Matrix inv(n, n);
  const Matrix identity = Matrix::Identity(n);
  for (size_t c = 0; c < n; ++c) {
    auto col_or = Solve(identity.Col(c));
    if (!col_or.ok()) return col_or.status();
    const Vector& col = col_or.value();
    for (size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

double CholeskyDecomposition::LogDeterminant() const {
  double sum = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

Result<Vector> SolveLeastSquares(const Matrix& a, const Vector& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        StrFormat("least squares needs rows >= cols, got %zux%zu", m, n));
  }
  if (b.size() != m) {
    return Status::InvalidArgument(
        StrFormat("rhs size %zu, expected %zu", b.size(), m));
  }

  // Householder QR, applying reflections to a copy of b as we go.
  Matrix r = a;
  Vector rhs = b;
  for (size_t col = 0; col < n; ++col) {
    // Build the Householder vector for column `col`.
    double norm = 0.0;
    for (size_t i = col; i < m; ++i) norm += r(i, col) * r(i, col);
    norm = std::sqrt(norm);
    if (norm < kSingularTolerance) {
      return Status::FailedPrecondition("matrix is column-rank deficient");
    }
    const double alpha = r(col, col) >= 0.0 ? -norm : norm;
    Vector v(m);
    v[col] = r(col, col) - alpha;
    for (size_t i = col + 1; i < m; ++i) v[i] = r(i, col);
    double v_dot = 0.0;
    for (size_t i = col; i < m; ++i) v_dot += v[i] * v[i];
    if (v_dot < kSingularTolerance * kSingularTolerance) continue;

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (size_t c = col; c < n; ++c) {
      double dot = 0.0;
      for (size_t i = col; i < m; ++i) dot += v[i] * r(i, c);
      const double scale = 2.0 * dot / v_dot;
      for (size_t i = col; i < m; ++i) r(i, c) -= scale * v[i];
    }
    double dot = 0.0;
    for (size_t i = col; i < m; ++i) dot += v[i] * rhs[i];
    const double scale = 2.0 * dot / v_dot;
    for (size_t i = col; i < m; ++i) rhs[i] -= scale * v[i];
  }

  // Back substitution on the upper-triangular leading block.
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = rhs[i];
    for (size_t j = i + 1; j < n; ++j) sum -= r(i, j) * x[j];
    if (std::fabs(r(i, i)) < kSingularTolerance) {
      return Status::FailedPrecondition("matrix is column-rank deficient");
    }
    x[i] = sum / r(i, i);
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  auto lu_or = LuDecomposition::Compute(a);
  if (!lu_or.ok()) return lu_or.status();
  return lu_or.value().Inverse();
}

Result<Vector> SolveLinear(const Matrix& a, const Vector& b) {
  auto lu_or = LuDecomposition::Compute(a);
  if (!lu_or.ok()) return lu_or.status();
  return lu_or.value().Solve(b);
}

}  // namespace dkf
