#ifndef DKF_CORE_MOVING_AVERAGE_H_
#define DKF_CORE_MOVING_AVERAGE_H_

#include <cstddef>
#include <deque>

#include "common/result.h"
#include "common/time_series.h"

namespace dkf {

/// Sliding-window moving average — the conventional smoothing baseline the
/// paper compares KF_c against (§5.3, Fig 10). Requires O(window) memory
/// per stream, which is exactly the cost the Kalman smoother avoids.
class MovingAverage {
 public:
  /// Window of `window` >= 1 most recent readings.
  static Result<MovingAverage> Create(size_t window);

  /// Consumes one reading, returns the average over the (partial) window.
  double Push(double raw);

  size_t window() const { return window_; }

 private:
  explicit MovingAverage(size_t window) : window_(window) {}

  size_t window_;
  std::deque<double> buffer_;
  double sum_ = 0.0;
};

/// Smooths an entire width-1 series through a fresh MovingAverage.
Result<TimeSeries> SmoothSeriesMovingAverage(const TimeSeries& series,
                                             size_t window);

}  // namespace dkf

#endif  // DKF_CORE_MOVING_AVERAGE_H_
