#include "core/adaptive_sampling.h"

#include <algorithm>

namespace dkf {

Result<AdaptiveSamplingLink> AdaptiveSamplingLink::Create(
    const Predictor& prototype, const AdaptiveSamplingOptions& options) {
  if (options.min_stride == 0 || options.max_stride < options.min_stride) {
    return Status::InvalidArgument(
        "need 1 <= min_stride <= max_stride");
  }
  if (options.quiet_threshold == 0) {
    return Status::InvalidArgument("quiet_threshold must be >= 1");
  }
  if (options.guard_fraction <= 0.0 || options.guard_fraction > 1.0) {
    return Status::InvalidArgument("guard_fraction must be in (0, 1]");
  }
  auto link_or = DualLink::Create(prototype, options.link);
  if (!link_or.ok()) return link_or.status();
  return AdaptiveSamplingLink(std::move(link_or).value(), options);
}

Result<AdaptiveStepResult> AdaptiveSamplingLink::Step(const Vector& reading) {
  AdaptiveStepResult result;
  ++stats_.ticks;

  if (ticks_until_sample_ > 0) {
    // Skip the sensor this tick; both filters still advance so the server
    // keeps extrapolating (and the mirror stays in lock-step).
    --ticks_until_sample_;
    auto coast_or = link_.Coast();
    if (!coast_or.ok()) return coast_or.status();
    result.server_value = coast_or.value().server_value;
    result.stride = stride_;
    return result;
  }

  // Take a real reading.
  result.sampled = true;
  ++stats_.samples_taken;
  auto step_or = link_.Step(reading);
  if (!step_or.ok()) return step_or.status();
  const LinkStepResult& step = step_or.value();
  result.sent = step.sent;
  result.server_value = step.server_value;
  if (step.sent) ++stats_.updates_sent;

  // Adapt the stride from the innovation magnitude.
  const double guard = options_.guard_fraction * options_.link.delta;
  if (step.sent) {
    stride_ = options_.min_stride;
    quiet_run_ = 0;
  } else if (step.deviation > guard) {
    stride_ = std::max(options_.min_stride, stride_ / 2);
    quiet_run_ = 0;
  } else {
    ++quiet_run_;
    if (quiet_run_ >= options_.quiet_threshold) {
      stride_ = std::min(options_.max_stride, stride_ * 2);
      quiet_run_ = 0;
    }
  }
  ticks_until_sample_ = stride_ - 1;
  result.stride = stride_;
  return result;
}

}  // namespace dkf
