#include "core/smoothing.h"

#include "models/model_factory.h"

namespace dkf {

Result<KalmanSmoother> KalmanSmoother::Create(double smoothing_factor,
                                              double measurement_variance) {
  auto model_or = MakeSmoothingModel(smoothing_factor, measurement_variance);
  if (!model_or.ok()) return model_or.status();
  auto filter_or = model_or.value().MakeFilter();
  if (!filter_or.ok()) return filter_or.status();
  return KalmanSmoother(smoothing_factor, std::move(filter_or).value());
}

Result<double> KalmanSmoother::Push(double raw) {
  DKF_RETURN_IF_ERROR(filter_.Predict());
  DKF_RETURN_IF_ERROR(filter_.Correct(Vector{raw}));
  ++count_;
  return filter_.state()[0];
}

Result<TimeSeries> SmoothSeriesKalman(const TimeSeries& series,
                                      double smoothing_factor,
                                      double measurement_variance) {
  if (series.width() != 1) {
    return Status::InvalidArgument("KF smoothing expects a width-1 series");
  }
  auto smoother_or = KalmanSmoother::Create(smoothing_factor,
                                            measurement_variance);
  if (!smoother_or.ok()) return smoother_or.status();
  KalmanSmoother smoother = std::move(smoother_or).value();

  TimeSeries out(1);
  out.Reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    auto smoothed_or = smoother.Push(series.value(i));
    if (!smoothed_or.ok()) return smoothed_or.status();
    DKF_RETURN_IF_ERROR(out.Append(series.timestamp(i), smoothed_or.value()));
  }
  return out;
}

double SmoothingFactorForWindow(size_t window, double measurement_variance) {
  const double n = static_cast<double>(window == 0 ? 1 : window);
  const double alpha = 2.0 / (n + 1.0);
  return measurement_variance * alpha * alpha / (1.0 - alpha);
}

}  // namespace dkf
