#ifndef DKF_CORE_EKF_PREDICTOR_H_
#define DKF_CORE_EKF_PREDICTOR_H_

#include <memory>
#include <string>

#include "core/predictor.h"
#include "filter/extended_kalman_filter.h"
#include "filter/steady_state.h"
#include "filter/unscented_kalman_filter.h"

namespace dkf {

/// Extended-Kalman-filter predictor: runs the DKF protocol over a
/// *nonlinear* state model (§3.2 cases 2-3 and the §6 future-work item
/// "developing models for non-linear systems"). The mirror-consistency
/// argument is unchanged: the EKF is deterministic, so identical inputs
/// keep KF_s and KF_m in lock-step; linearization error affects accuracy,
/// never consistency.
class EkfPredictor : public Predictor {
 public:
  /// `measurement_dim` must match what options.measurement produces.
  static Result<EkfPredictor> Create(
      std::string name, const ExtendedKalmanFilterOptions& options,
      size_t measurement_dim);

  std::string name() const override { return name_; }
  size_t dim() const override { return measurement_dim_; }
  Status Tick() override { return filter_.Predict(); }
  Vector Predicted() const override { return filter_.PredictedMeasurement(); }
  Status Update(const Vector& value) override {
    return filter_.Correct(value);
  }
  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<EkfPredictor>(*this);
  }
  bool StateEquals(const Predictor& other) const override;

  const ExtendedKalmanFilter& filter() const { return filter_; }

 private:
  EkfPredictor(std::string name, ExtendedKalmanFilter filter,
               size_t measurement_dim)
      : name_(std::move(name)), filter_(std::move(filter)),
        measurement_dim_(measurement_dim) {}

  std::string name_;
  ExtendedKalmanFilter filter_;
  size_t measurement_dim_;
};

/// Steady-state (precomputed Riccati gain) predictor: the §3.2 case-5
/// runtime optimization. Per tick it costs a single matrix-vector product
/// with no covariance arithmetic — attractive for the battery-powered
/// source side when the noise processes are stationary.
///
/// Caveat found empirically (see bench_abl_filter_cost and the predictor
/// tests): the Riccati gain assumes a correction *every* tick. Under
/// suppression the full filter's covariance inflates during silent runs,
/// so its next correction snaps hard onto the reading, while the fixed
/// gain resyncs sluggishly and pays extra updates after each maneuver.
/// Use it where corrections are dense (e.g. the KF_c smoothing stage),
/// and prefer the full KalmanPredictor for sparsely-corrected links.
class SteadyStatePredictor : public Predictor {
 public:
  /// Solves the Riccati equation for the model's (constant) matrices.
  static Result<SteadyStatePredictor> Create(const StateModel& model);

  std::string name() const override { return name_; }
  size_t dim() const override { return filter_.measurement_dim(); }
  Status Tick() override {
    filter_.Predict();
    return Status::OK();
  }
  Vector Predicted() const override { return filter_.PredictedMeasurement(); }
  Status Update(const Vector& value) override {
    return filter_.Correct(value);
  }
  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<SteadyStatePredictor>(*this);
  }
  bool StateEquals(const Predictor& other) const override;

  const SteadyStateKalmanFilter& filter() const { return filter_; }

 private:
  SteadyStatePredictor(std::string name, SteadyStateKalmanFilter filter)
      : name_(std::move(name)), filter_(std::move(filter)) {}

  std::string name_;
  SteadyStateKalmanFilter filter_;
};

/// Unscented-Kalman-filter predictor: the derivative-free nonlinear DKF
/// variant. Same protocol contract as EkfPredictor; exact on linear
/// systems and more accurate than linearization on strong curvature.
class UkfPredictor : public Predictor {
 public:
  static Result<UkfPredictor> Create(
      std::string name, const UnscentedKalmanFilterOptions& options,
      size_t measurement_dim);

  std::string name() const override { return name_; }
  size_t dim() const override { return measurement_dim_; }
  Status Tick() override { return filter_.Predict(); }
  Vector Predicted() const override { return filter_.PredictedMeasurement(); }
  Status Update(const Vector& value) override {
    return filter_.Correct(value);
  }
  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<UkfPredictor>(*this);
  }
  bool StateEquals(const Predictor& other) const override;

  const UnscentedKalmanFilter& filter() const { return filter_; }

 private:
  UkfPredictor(std::string name, UnscentedKalmanFilter filter,
               size_t measurement_dim)
      : name_(std::move(name)), filter_(std::move(filter)),
        measurement_dim_(measurement_dim) {}

  std::string name_;
  UnscentedKalmanFilter filter_;
  size_t measurement_dim_;
};

}  // namespace dkf

#endif  // DKF_CORE_EKF_PREDICTOR_H_
