#include "core/dual_link.h"

#include "common/string_util.h"

namespace dkf {

Result<DualLink> DualLink::Create(const Predictor& prototype,
                                  const DualLinkOptions& options) {
  if (!options.component_deltas.empty()) {
    if (options.component_deltas.size() != prototype.dim()) {
      return Status::InvalidArgument(
          StrFormat("%zu component deltas for a %zu-wide predictor",
                    options.component_deltas.size(), prototype.dim()));
    }
    for (double delta : options.component_deltas) {
      if (delta <= 0.0) {
        return Status::InvalidArgument(
            "component deltas must be positive");
      }
    }
  } else if (options.delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  return DualLink(prototype.Clone(), prototype.Clone(), options);
}

Result<LinkStepResult> DualLink::Step(const Vector& reading) {
  if (reading.size() != server_->dim()) {
    return Status::InvalidArgument(
        StrFormat("reading width %zu, predictor expects %zu", reading.size(),
                  server_->dim()));
  }

  // Both endpoints advance their (identical) models.
  DKF_RETURN_IF_ERROR(server_->Tick());
  DKF_RETURN_IF_ERROR(mirror_->Tick());

  LinkStepResult result;
  // The mirror knows exactly what the server predicts — that is the whole
  // point of the dual architecture.
  result.predicted = mirror_->Predicted();
  result.deviation = Deviation(result.predicted, reading, options_.norm);
  if (options_.component_deltas.empty()) {
    result.sent = result.deviation > options_.delta;
  } else {
    result.sent = ShouldTransmitPerComponent(
        result.predicted, reading, Vector(options_.component_deltas));
  }

  if (result.sent) {
    DKF_RETURN_IF_ERROR(mirror_->Update(reading));
    DKF_RETURN_IF_ERROR(server_->Update(reading));
    ++stats_.updates_sent;
  }
  ++stats_.ticks;

  result.server_value = server_->Predicted();

  if (options_.check_mirror_consistency &&
      !mirror_->StateEquals(*server_)) {
    return Status::Internal(
        StrFormat("mirror-consistency violated at tick %lld",
                  static_cast<long long>(stats_.ticks)));
  }
  return result;
}

Result<LinkStepResult> DualLink::Coast() {
  DKF_RETURN_IF_ERROR(server_->Tick());
  DKF_RETURN_IF_ERROR(mirror_->Tick());
  ++stats_.ticks;

  LinkStepResult result;
  result.predicted = mirror_->Predicted();
  result.server_value = server_->Predicted();

  if (options_.check_mirror_consistency && !mirror_->StateEquals(*server_)) {
    return Status::Internal(
        StrFormat("mirror-consistency violated at tick %lld",
                  static_cast<long long>(stats_.ticks)));
  }
  return result;
}

}  // namespace dkf
