#include "core/suppression.h"

#include <cassert>
#include <cmath>

namespace dkf {

double Deviation(const Vector& predicted, const Vector& actual,
                 DeviationNorm norm) {
  assert(predicted.size() == actual.size());
  switch (norm) {
    case DeviationNorm::kMaxAbs: {
      double best = 0.0;
      for (size_t i = 0; i < predicted.size(); ++i) {
        best = std::max(best, std::fabs(predicted[i] - actual[i]));
      }
      return best;
    }
    case DeviationNorm::kL2: {
      double sum = 0.0;
      for (size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - actual[i];
        sum += d * d;
      }
      return std::sqrt(sum);
    }
    case DeviationNorm::kL1: {
      double sum = 0.0;
      for (size_t i = 0; i < predicted.size(); ++i) {
        sum += std::fabs(predicted[i] - actual[i]);
      }
      return sum;
    }
  }
  return 0.0;
}

bool ShouldTransmitPerComponent(const Vector& predicted,
                                const Vector& actual, const Vector& deltas) {
  assert(predicted.size() == actual.size());
  assert(predicted.size() == deltas.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (std::fabs(predicted[i] - actual[i]) > deltas[i]) return true;
  }
  return false;
}

}  // namespace dkf
