#include "core/model_switching.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/suppression.h"

namespace dkf {

Result<ModelSwitchingLink> ModelSwitchingLink::Create(
    std::vector<StateModel> bank, size_t initial,
    const ModelSwitchingOptions& options) {
  if (bank.empty()) return Status::InvalidArgument("empty model bank");
  if (initial >= bank.size()) {
    return Status::InvalidArgument("initial model index out of range");
  }
  const size_t dim = bank[0].measurement_dim;
  for (const StateModel& model : bank) {
    if (model.measurement_dim != dim) {
      return Status::InvalidArgument(
          "all bank models must share the measurement width");
    }
  }
  if (options.evaluation_window == 0 || options.check_interval == 0) {
    return Status::InvalidArgument(
        "evaluation_window and check_interval must be >= 1");
  }
  if (options.improvement_threshold <= 0.0 ||
      options.improvement_threshold >= 1.0) {
    return Status::InvalidArgument(
        "improvement_threshold must be in (0, 1)");
  }

  auto active_predictor_or = KalmanPredictor::Create(bank[initial]);
  if (!active_predictor_or.ok()) return active_predictor_or.status();
  auto link_or = DualLink::Create(active_predictor_or.value(), options.link);
  if (!link_or.ok()) return link_or.status();

  std::vector<std::unique_ptr<Predictor>> evaluators;
  evaluators.reserve(bank.size());
  for (const StateModel& model : bank) {
    auto eval_or = KalmanPredictor::Create(model);
    if (!eval_or.ok()) return eval_or.status();
    evaluators.push_back(
        std::make_unique<KalmanPredictor>(std::move(eval_or).value()));
  }
  return ModelSwitchingLink(std::move(bank), initial,
                            std::move(link_or).value(), std::move(evaluators),
                            options);
}

Result<SwitchStepResult> ModelSwitchingLink::Step(const Vector& reading) {
  // Update every candidate's rolling one-step error (they are always
  // corrected, measuring pure model quality independent of suppression).
  const double alpha =
      2.0 / (static_cast<double>(options_.evaluation_window) + 1.0);
  for (size_t i = 0; i < evaluators_.size(); ++i) {
    DKF_RETURN_IF_ERROR(evaluators_[i]->Tick());
    const double err =
        Deviation(evaluators_[i]->Predicted(), reading, options_.link.norm);
    candidate_error_[i] = (1.0 - alpha) * candidate_error_[i] + alpha * err;
    DKF_RETURN_IF_ERROR(evaluators_[i]->Update(reading));
  }

  auto step_or = link_.Step(reading);
  if (!step_or.ok()) return step_or.status();
  const LinkStepResult& step = step_or.value();

  SwitchStepResult result;
  result.sent = step.sent;
  result.server_value = step.server_value;
  if (step.sent) ++stats_.updates_sent;
  ++stats_.ticks;

  // Periodic switch decision.
  const auto tick = static_cast<size_t>(stats_.ticks);
  if (tick >= options_.warmup && tick % options_.check_interval == 0) {
    size_t best = active_;
    for (size_t i = 0; i < candidate_error_.size(); ++i) {
      if (candidate_error_[i] < candidate_error_[best]) best = i;
    }
    if (best != active_ &&
        candidate_error_[best] <
            options_.improvement_threshold * candidate_error_[active_]) {
      // Transmit the switch: both endpoints swap in the winning model,
      // initialized with the current reading so the new filter starts
      // anchored to the stream. A time-varying model must keep *global*
      // time — a fresh filter restarts its step counter at 0, which would
      // shift e.g. the sinusoidal model's phase by the elapsed ticks — so
      // the transition function is rebased onto the current tick. (The
      // offset is part of the switch message, so the server stays in
      // lock-step.)
      StateModel rebased = bank_[best];
      if (rebased.options.transition_fn) {
        const int64_t offset = stats_.ticks - 1;  // this reading's index
        auto original = rebased.options.transition_fn;
        rebased.options.transition_fn = [original, offset](int64_t k) {
          return original(k + offset);
        };
      }
      auto predictor_or = KalmanPredictor::Create(rebased);
      if (!predictor_or.ok()) return predictor_or.status();
      auto new_link_or =
          DualLink::Create(predictor_or.value(), options_.link);
      if (!new_link_or.ok()) return new_link_or.status();
      link_ = std::move(new_link_or).value();
      // Prime the fresh link with the current reading (part of the switch
      // message payload, not an extra update).
      auto prime_or = link_.Step(reading);
      if (!prime_or.ok()) return prime_or.status();
      result.server_value = prime_or.value().server_value;

      active_ = best;
      result.switched = true;
      ++stats_.switches;
    }
  }
  result.active_model = active_;
  return result;
}

}  // namespace dkf
