#ifndef DKF_CORE_ADAPTIVE_SAMPLING_H_
#define DKF_CORE_ADAPTIVE_SAMPLING_H_

#include <cstdint>

#include "common/result.h"
#include "core/dual_link.h"

namespace dkf {

/// Configuration of innovation-driven adaptive sampling (§3.1 advantage 5
/// and the §6 future-work item "adaptively adjusting the sampling rate
/// based on the innovation sequence").
///
/// The source does not have to *read* its sensor every tick: while the
/// innovation stays small relative to delta the model is tracking well and
/// the sensing rate can be backed off geometrically; any update (or a
/// near-threshold innovation) snaps the rate back to full. Sensing costs
/// energy too, so skipped readings are a second resource saving on top of
/// suppressed transmissions.
struct AdaptiveSamplingOptions {
  DualLinkOptions link;

  size_t min_stride = 1;   ///< ticks between readings at full rate
  size_t max_stride = 32;  ///< back-off cap

  /// Consecutive suppressed (quiet) readings before the stride doubles.
  size_t quiet_threshold = 4;

  /// When a reading's deviation exceeds guard_fraction * delta — even if
  /// still suppressed — the stride halves pre-emptively.
  double guard_fraction = 0.5;
};

/// Outcome of one tick of the adaptive-sampling link.
struct AdaptiveStepResult {
  bool sampled = false;  ///< did the source read the sensor this tick
  bool sent = false;     ///< was the reading transmitted
  Vector server_value;   ///< value the server answers this tick
  size_t stride = 1;     ///< sampling stride after this tick
};

/// Running totals.
struct AdaptiveSamplingStats {
  int64_t ticks = 0;
  int64_t samples_taken = 0;
  int64_t updates_sent = 0;
};

/// A DualLink whose source additionally modulates its own sensing rate
/// from the innovation sequence. Both filters still tick every tick, so
/// the mirror invariant is untouched; only the frequency of suppression
/// *evaluations* adapts.
class AdaptiveSamplingLink {
 public:
  static Result<AdaptiveSamplingLink> Create(
      const Predictor& prototype, const AdaptiveSamplingOptions& options);

  AdaptiveSamplingLink(AdaptiveSamplingLink&&) = default;
  AdaptiveSamplingLink& operator=(AdaptiveSamplingLink&&) = default;

  /// Advances one tick. `reading` is the value the sensor *would* observe;
  /// the link decides whether the source actually samples it.
  Result<AdaptiveStepResult> Step(const Vector& reading);

  const AdaptiveSamplingStats& stats() const { return stats_; }
  const DualLink& link() const { return link_; }

 private:
  AdaptiveSamplingLink(DualLink link, const AdaptiveSamplingOptions& options)
      : link_(std::move(link)), options_(options),
        stride_(options.min_stride) {}

  DualLink link_;
  AdaptiveSamplingOptions options_;
  size_t stride_;
  size_t ticks_until_sample_ = 0;
  size_t quiet_run_ = 0;
  AdaptiveSamplingStats stats_;
};

}  // namespace dkf

#endif  // DKF_CORE_ADAPTIVE_SAMPLING_H_
