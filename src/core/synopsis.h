#ifndef DKF_CORE_SYNOPSIS_H_
#define DKF_CORE_SYNOPSIS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "core/suppression.h"
#include "models/state_model.h"

namespace dkf {

/// Configuration of a Kalman-filter stream synopsis (§6 future-work item:
/// "storing stream summaries/synopses under the constraint of specified
/// reconstruction error tolerance").
struct SynopsisOptions {
  /// Maximum allowed per-sample reconstruction deviation.
  double tolerance = 1.0;
  DeviationNorm norm = DeviationNorm::kMaxAbs;
};

/// One stored sample: the tick index and the exact reading at that tick.
struct SynopsisEntry {
  size_t index = 0;
  Vector value;
};

/// A lossy compressed representation of a time series: the state model
/// plus only those readings the model could not predict within the
/// tolerance. Reconstruction replays the *identical deterministic
/// predictor* the compressor used, so by construction every reconstructed
/// sample deviates from the original by at most `tolerance`.
///
/// This is the storage dual of the communication problem: the suppression
/// ratio of the DKF link becomes a compression ratio.
class KfSynopsis {
 public:
  /// Compresses `series` under `model`. The series width must match the
  /// model's measurement width.
  static Result<KfSynopsis> Build(const TimeSeries& series,
                                  const StateModel& model,
                                  const SynopsisOptions& options);

  /// Replays the synopsis into a full-length series with the same online
  /// filter the compressor used; every sample is within `tolerance` of the
  /// original by construction.
  Result<TimeSeries> Reconstruct() const;

  /// Offline (archive-quality) reconstruction: a fixed-interval RTS
  /// smoothing pass over the stored readings propagates information from
  /// later updates backward into the coasted gaps, typically reducing the
  /// average reconstruction error well below Reconstruct()'s. The
  /// per-sample tolerance bound holds only for Reconstruct(); smoothing
  /// trades the pointwise guarantee for accuracy.
  Result<TimeSeries> ReconstructSmoothed() const;

  /// Rebuilds a synopsis from its serialized parts (see synopsis_io.h).
  /// Validates entry ordering, index range, and payload widths.
  static Result<KfSynopsis> FromParts(StateModel model,
                                      const SynopsisOptions& options,
                                      std::vector<double> timestamps,
                                      std::vector<SynopsisEntry> entries);

  const std::vector<SynopsisEntry>& entries() const { return entries_; }
  const StateModel& model() const { return model_; }
  const std::vector<double>& timestamps() const { return timestamps_; }
  size_t original_size() const { return timestamps_.size(); }

  /// Stored samples / original samples (lower is better).
  double CompressionRatio() const {
    return original_size() == 0
               ? 0.0
               : static_cast<double>(entries_.size()) /
                     static_cast<double>(original_size());
  }

  /// Approximate storage footprint: stored entries only (index + payload
  /// doubles), excluding the model constants shared by all synopses.
  size_t StorageBytes() const;

  const SynopsisOptions& options() const { return options_; }

 private:
  KfSynopsis(StateModel model, SynopsisOptions options,
             std::vector<double> timestamps, std::vector<SynopsisEntry> entries)
      : model_(std::move(model)), options_(options),
        timestamps_(std::move(timestamps)), entries_(std::move(entries)) {}

  StateModel model_;
  SynopsisOptions options_;
  /// Original timestamps (needed to rebuild the series' time axis).
  std::vector<double> timestamps_;
  std::vector<SynopsisEntry> entries_;
};

}  // namespace dkf

#endif  // DKF_CORE_SYNOPSIS_H_
