#include "core/predictor.h"

#include "common/string_util.h"

namespace dkf {

Result<KalmanPredictor> KalmanPredictor::Create(const StateModel& model) {
  auto filter_or = model.MakeFilter();
  if (!filter_or.ok()) return filter_or.status();
  return KalmanPredictor(model.name, std::move(filter_or).value());
}

std::optional<Matrix> KalmanPredictor::PredictedCovariance() const {
  // State uncertainty projected into measurement space: H P H^T,
  // computed as the innovation covariance minus R. (Deliberately excludes
  // R: this is the uncertainty of the *answer*, not of a hypothetical new
  // sensor reading.)
  Matrix projected = filter_.InnovationCovariance();
  projected -= filter_.measurement_noise();
  projected.Symmetrize();
  return projected;
}

bool KalmanPredictor::StateEquals(const Predictor& other) const {
  const auto* peer = dynamic_cast<const KalmanPredictor*>(&other);
  return peer != nullptr && filter_.StateEquals(peer->filter_);
}

Result<CachedValuePredictor> CachedValuePredictor::Create(size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  return CachedValuePredictor(dim);
}

Status CachedValuePredictor::Update(const Vector& value) {
  if (value.size() != cached_.size()) {
    return Status::InvalidArgument(
        StrFormat("value size %zu, expected %zu", value.size(),
                  cached_.size()));
  }
  cached_ = value;
  return Status::OK();
}

bool CachedValuePredictor::StateEquals(const Predictor& other) const {
  const auto* peer = dynamic_cast<const CachedValuePredictor*>(&other);
  if (peer == nullptr || peer->cached_.size() != cached_.size()) return false;
  for (size_t i = 0; i < cached_.size(); ++i) {
    if (cached_[i] != peer->cached_[i]) return false;
  }
  return true;
}

}  // namespace dkf
