#ifndef DKF_CORE_SYNOPSIS_IO_H_
#define DKF_CORE_SYNOPSIS_IO_H_

#include <string>

#include "common/result.h"
#include "core/synopsis.h"

namespace dkf {

/// Persists a synopsis — the state-model matrices plus the stored
/// exceptional readings — to a CSV-structured file, completing the §6
/// storage story: a stream archive IS a model plus its violations.
///
/// Only constant-transition models serialize (a time-varying transition
/// is an arbitrary function); Build()ing with one and saving returns
/// Unimplemented.
Status SaveSynopsis(const KfSynopsis& synopsis, const std::string& path);

/// Loads a synopsis written by SaveSynopsis. The reconstructed object
/// replays identically to the original (same model, same entries).
Result<KfSynopsis> LoadSynopsis(const std::string& path);

/// InvalidArgument (naming `what`) when any element of the container is
/// NaN or infinite, OK otherwise. Shared validation between the synopsis
/// codec and the checkpoint snapshot codec (src/checkpoint/): model
/// recipes and filter states must be finite on both the save and the
/// load path, so a corrupted file can never smuggle a non-finite value
/// into a running filter.
Status RequireFinite(const Vector& v, const std::string& what);
Status RequireFinite(const Matrix& m, const std::string& what);

}  // namespace dkf

#endif  // DKF_CORE_SYNOPSIS_IO_H_
