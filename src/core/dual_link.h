#ifndef DKF_CORE_DUAL_LINK_H_
#define DKF_CORE_DUAL_LINK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/predictor.h"
#include "core/suppression.h"

namespace dkf {

/// Configuration of one source->server dual-prediction link.
struct DualLinkOptions {
  /// Precision width delta: transmit when the prediction deviates from the
  /// reading by more than this.
  double delta = 1.0;

  /// Deviation norm for the suppression test.
  DeviationNorm norm = DeviationNorm::kMaxAbs;

  /// When non-empty, overrides `delta`/`norm` with a per-attribute rule:
  /// transmit when ANY component deviates beyond its own width (§6
  /// "multiple queries with multiple attributes" — e.g. a tracking query
  /// that needs X within 1 unit but tolerates Y within 10). Must match
  /// the predictor's dimension; all entries must be positive.
  std::vector<double> component_deltas;

  /// When true, every step asserts the mirror-consistency invariant
  /// (source mirror state == server state) and fails with Internal if it
  /// is ever violated. Costs one state comparison per tick; meant for
  /// tests and debugging.
  bool check_mirror_consistency = false;
};

/// Outcome of feeding one reading through a link.
struct LinkStepResult {
  bool sent = false;      ///< was the reading transmitted to the server
  Vector predicted;       ///< server prediction before any update
  Vector server_value;    ///< value the server answers after this tick
  double deviation = 0.0; ///< deviation of `predicted` from the reading
};

/// Running totals of a link.
struct LinkStats {
  int64_t ticks = 0;
  int64_t updates_sent = 0;

  /// updates_sent / ticks * 100 — the paper's "percentage of updates".
  double UpdatePercentage() const {
    return ticks == 0 ? 0.0
                      : 100.0 * static_cast<double>(updates_sent) /
                            static_cast<double>(ticks);
  }
};

/// One instance of the DKF architecture (Figure 2) for a single source:
/// the server-side predictor KF_s and its source-side mirror KF_m, plus
/// the suppression rule that decides per tick whether the reading is
/// transmitted.
///
/// The class simulates both endpoints in one object; the dsms layer splits
/// the same logic across SourceNode/ServerNode with explicit messages.
/// Works with any Predictor, so the cached-value baseline runs through the
/// identical protocol for an apples-to-apples comparison.
class DualLink {
 public:
  /// Clones `prototype` into the server and mirror instances.
  static Result<DualLink> Create(const Predictor& prototype,
                                 const DualLinkOptions& options);

  DualLink(DualLink&&) = default;
  DualLink& operator=(DualLink&&) = default;

  /// Feeds the reading for the current tick through the protocol:
  /// both predictors tick, the mirror evaluates the suppression rule, and
  /// on transmission both predictors are corrected with the reading.
  Result<LinkStepResult> Step(const Vector& reading);

  /// Advances both predictors one tick *without* a reading (the source did
  /// not sample its sensor). Nothing can be transmitted; the server keeps
  /// extrapolating. Used by adaptive sampling.
  Result<LinkStepResult> Coast();

  const LinkStats& stats() const { return stats_; }

  /// The server-side predictor (for inspecting filter internals).
  const Predictor& server() const { return *server_; }

  /// The source-side mirror.
  const Predictor& mirror() const { return *mirror_; }

  const DualLinkOptions& options() const { return options_; }

 private:
  DualLink(std::unique_ptr<Predictor> server, std::unique_ptr<Predictor> mirror,
           const DualLinkOptions& options)
      : server_(std::move(server)), mirror_(std::move(mirror)),
        options_(options) {}

  std::unique_ptr<Predictor> server_;
  std::unique_ptr<Predictor> mirror_;
  DualLinkOptions options_;
  LinkStats stats_;
};

}  // namespace dkf

#endif  // DKF_CORE_DUAL_LINK_H_
