#ifndef DKF_CORE_OUTLIER_GUARD_H_
#define DKF_CORE_OUTLIER_GUARD_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/result.h"
#include "core/predictor.h"
#include "core/suppression.h"

namespace dkf {

/// Configuration of the innovation-based outlier guard (§3.1 advantage 5:
/// "the innovation sequence helps in detecting outliers").
struct OutlierGuardOptions {
  double delta = 1.0;
  DeviationNorm norm = DeviationNorm::kMaxAbs;

  /// A reading whose normalized innovation squared (NIS) exceeds this is
  /// suspected to be an outlier. NIS is chi-squared with m degrees of
  /// freedom for a consistent filter; 13.8 is the 99.98% quantile for
  /// m = 1.
  ///
  /// The statistic is computed against the *steady-state* innovation
  /// covariance (solved once from the Riccati equation at Create) rather
  /// than the filter's instantaneous one: during long suppression runs
  /// the coasted covariance inflates so much that even wild spikes look
  /// statistically plausible, which would blind the guard exactly when it
  /// is most needed. Models with a time-varying transition fall back to
  /// the instantaneous covariance.
  double nis_threshold = 13.8;

  /// Consecutive suspicious readings before the guard concedes the stream
  /// really changed and transmits. A lone spike is simply dropped; a
  /// genuine maneuver produces a *sustained* run of large innovations and
  /// gets through after this short confirmation delay.
  int64_t confirmations = 2;
};

/// Outcome of one guarded tick.
struct GuardedStepResult {
  bool sent = false;
  bool dropped_as_outlier = false;
  Vector server_value;
  double nis = 0.0;
};

/// Running totals.
struct OutlierGuardStats {
  int64_t ticks = 0;
  int64_t updates_sent = 0;
  int64_t outliers_dropped = 0;
};

/// A dual-prediction link whose source discards isolated outlier readings
/// instead of transmitting them. Without the guard, every spike that
/// exceeds delta costs an update *and* corrupts both filters' state; with
/// it, spikes are absorbed and only persistent deviations are treated as
/// signal.
///
/// Works with Kalman predictors only (the NIS test needs the filter's
/// innovation covariance).
class OutlierFilteredLink {
 public:
  static Result<OutlierFilteredLink> Create(
      const KalmanPredictor& prototype, const OutlierGuardOptions& options);

  OutlierFilteredLink(OutlierFilteredLink&&) = default;
  OutlierFilteredLink& operator=(OutlierFilteredLink&&) = default;

  Result<GuardedStepResult> Step(const Vector& reading);

  const OutlierGuardStats& stats() const { return stats_; }

  /// Mirror-consistency check (for tests).
  bool MirrorConsistent() const { return mirror_->StateEquals(*server_); }

 private:
  OutlierFilteredLink(std::unique_ptr<Predictor> server,
                      std::unique_ptr<Predictor> mirror,
                      const OutlierGuardOptions& options,
                      std::optional<Matrix> steady_innovation_inverse)
      : server_(std::move(server)), mirror_(std::move(mirror)),
        options_(options),
        steady_innovation_inverse_(std::move(steady_innovation_inverse)) {}

  std::unique_ptr<Predictor> server_;
  std::unique_ptr<Predictor> mirror_;
  OutlierGuardOptions options_;
  /// Inverse of the steady-state S = H P^- H^T + R; nullopt for
  /// time-varying models.
  std::optional<Matrix> steady_innovation_inverse_;
  int64_t suspicious_run_ = 0;
  OutlierGuardStats stats_;
};

}  // namespace dkf

#endif  // DKF_CORE_OUTLIER_GUARD_H_
