#ifndef DKF_CORE_SUPPRESSION_H_
#define DKF_CORE_SUPPRESSION_H_

#include "linalg/matrix.h"

namespace dkf {

/// How the deviation between the server-side prediction and the true
/// reading is reduced to a scalar for the `> delta` test.
enum class DeviationNorm {
  /// Largest per-component deviation: "updated to the server if error in
  /// either X or Y value is greater than delta" (§5.1). The default.
  kMaxAbs,
  /// Euclidean norm of the deviation vector.
  kL2,
  /// Sum of absolute component deviations (the paper's error *metric*,
  /// |dx| + |dy|, offered as a trigger variant too).
  kL1,
};

/// The scalar deviation between prediction and reading under `norm`.
double Deviation(const Vector& predicted, const Vector& actual,
                 DeviationNorm norm);

/// The suppression rule: transmit iff the deviation exceeds delta.
inline bool ShouldTransmit(const Vector& predicted, const Vector& actual,
                           double delta, DeviationNorm norm) {
  return Deviation(predicted, actual, norm) > delta;
}

/// Per-component variant (§6 "multiple queries with multiple attributes"):
/// each attribute carries its own precision width; transmit when ANY
/// component's deviation exceeds its delta. With all deltas equal this is
/// exactly the kMaxAbs rule. Sizes must match.
bool ShouldTransmitPerComponent(const Vector& predicted,
                                const Vector& actual, const Vector& deltas);

}  // namespace dkf

#endif  // DKF_CORE_SUPPRESSION_H_
