#include "core/outlier_guard.h"

#include "common/string_util.h"
#include "filter/steady_state.h"
#include "linalg/decompose.h"

namespace dkf {

Result<OutlierFilteredLink> OutlierFilteredLink::Create(
    const KalmanPredictor& prototype, const OutlierGuardOptions& options) {
  if (options.delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  if (options.nis_threshold <= 0.0) {
    return Status::InvalidArgument("nis threshold must be positive");
  }
  if (options.confirmations < 1) {
    return Status::InvalidArgument("confirmations must be >= 1");
  }

  // Precompute the steady-state innovation covariance so the outlier test
  // keeps its discrimination power during long suppression runs (see the
  // header). The covariance recursion is independent of measurement
  // *values*, so replaying predict/correct on a scratch filter (corrected
  // with its own prediction each tick) drives S to the always-corrected
  // Riccati fixed point. Models whose S never settles (time-varying phi)
  // simply fall back to the instantaneous NIS.
  std::optional<Matrix> steady_inverse;
  {
    KalmanPredictor scratch = prototype;
    KalmanFilter& filter = scratch.mutable_filter();
    Matrix previous = filter.InnovationCovariance();
    for (int i = 0; i < 10000; ++i) {
      if (!filter.Predict().ok()) break;
      const Matrix s = filter.InnovationCovariance();
      if (i > 2 && s.MaxAbsDiff(previous) < 1e-10) {
        auto inv_or = Inverse(s);
        if (inv_or.ok()) steady_inverse = inv_or.value();
        break;
      }
      previous = s;
      if (!filter.Correct(filter.PredictedMeasurement()).ok()) break;
    }
  }

  return OutlierFilteredLink(prototype.Clone(), prototype.Clone(), options,
                             std::move(steady_inverse));
}

Result<GuardedStepResult> OutlierFilteredLink::Step(const Vector& reading) {
  if (reading.size() != server_->dim()) {
    return Status::InvalidArgument(
        StrFormat("reading width %zu, predictor expects %zu", reading.size(),
                  server_->dim()));
  }
  DKF_RETURN_IF_ERROR(server_->Tick());
  DKF_RETURN_IF_ERROR(mirror_->Tick());
  ++stats_.ticks;

  GuardedStepResult result;
  const auto* mirror_kf = dynamic_cast<const KalmanPredictor*>(mirror_.get());
  if (mirror_kf == nullptr) {
    return Status::Internal("outlier guard requires a Kalman predictor");
  }
  const Vector innovation = reading - mirror_->Predicted();
  if (steady_innovation_inverse_.has_value()) {
    result.nis = innovation.Dot(*steady_innovation_inverse_ * innovation);
  } else {
    auto nis_or = mirror_kf->filter().Nis(reading);
    if (!nis_or.ok()) return nis_or.status();
    result.nis = nis_or.value();
  }

  const double deviation =
      Deviation(mirror_->Predicted(), reading, options_.norm);
  if (deviation > options_.delta) {
    const bool suspicious = result.nis > options_.nis_threshold;
    if (suspicious && suspicious_run_ + 1 < options_.confirmations) {
      // Probable outlier: neither transmit nor correct; wait to see
      // whether the deviation persists.
      ++suspicious_run_;
      result.dropped_as_outlier = true;
      ++stats_.outliers_dropped;
    } else {
      DKF_RETURN_IF_ERROR(mirror_->Update(reading));
      DKF_RETURN_IF_ERROR(server_->Update(reading));
      result.sent = true;
      ++stats_.updates_sent;
      suspicious_run_ = 0;
    }
  } else {
    suspicious_run_ = 0;
  }
  result.server_value = server_->Predicted();
  return result;
}

}  // namespace dkf
