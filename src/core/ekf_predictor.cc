#include "core/ekf_predictor.h"

namespace dkf {

Result<EkfPredictor> EkfPredictor::Create(
    std::string name, const ExtendedKalmanFilterOptions& options,
    size_t measurement_dim) {
  if (measurement_dim == 0) {
    return Status::InvalidArgument("measurement_dim must be positive");
  }
  if (options.measurement_noise.rows() != measurement_dim) {
    return Status::InvalidArgument(
        "measurement_dim does not match the measurement-noise shape");
  }
  auto filter_or = ExtendedKalmanFilter::Create(options);
  if (!filter_or.ok()) return filter_or.status();
  return EkfPredictor(std::move(name), std::move(filter_or).value(),
                      measurement_dim);
}

bool EkfPredictor::StateEquals(const Predictor& other) const {
  const auto* peer = dynamic_cast<const EkfPredictor*>(&other);
  return peer != nullptr && filter_.StateEquals(peer->filter_);
}

Result<SteadyStatePredictor> SteadyStatePredictor::Create(
    const StateModel& model) {
  auto filter_or = SteadyStateKalmanFilter::Create(model.options);
  if (!filter_or.ok()) return filter_or.status();
  return SteadyStatePredictor(model.name + "-ss",
                              std::move(filter_or).value());
}

bool SteadyStatePredictor::StateEquals(const Predictor& other) const {
  const auto* peer = dynamic_cast<const SteadyStatePredictor*>(&other);
  return peer != nullptr && filter_.StateEquals(peer->filter_);
}

Result<UkfPredictor> UkfPredictor::Create(
    std::string name, const UnscentedKalmanFilterOptions& options,
    size_t measurement_dim) {
  if (measurement_dim == 0) {
    return Status::InvalidArgument("measurement_dim must be positive");
  }
  if (options.measurement_noise.rows() != measurement_dim) {
    return Status::InvalidArgument(
        "measurement_dim does not match the measurement-noise shape");
  }
  auto filter_or = UnscentedKalmanFilter::Create(options);
  if (!filter_or.ok()) return filter_or.status();
  return UkfPredictor(std::move(name), std::move(filter_or).value(),
                      measurement_dim);
}

bool UkfPredictor::StateEquals(const Predictor& other) const {
  const auto* peer = dynamic_cast<const UkfPredictor*>(&other);
  return peer != nullptr && filter_.StateEquals(peer->filter_);
}

}  // namespace dkf
