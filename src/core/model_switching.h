#ifndef DKF_CORE_MODEL_SWITCHING_H_
#define DKF_CORE_MODEL_SWITCHING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/dual_link.h"
#include "core/predictor.h"
#include "models/state_model.h"

namespace dkf {

/// Configuration of online model selection (§6 future-work item
/// "investigating updating the state transition matrices online as the
/// streaming data trend changes"; enabled by §3.1 advantage 6, "it is
/// relatively simple to change the state equations dynamically").
struct ModelSwitchingOptions {
  DualLinkOptions link;

  /// Exponential window (in ticks) over which each candidate's one-step
  /// prediction error is averaged.
  size_t evaluation_window = 50;

  /// Ticks between switch decisions.
  size_t check_interval = 100;

  /// Switch only when the best candidate's windowed error is below this
  /// fraction of the active model's (hysteresis against thrashing).
  double improvement_threshold = 0.7;

  /// Don't evaluate a switch before this many ticks (filters still
  /// converging).
  size_t warmup = 50;
};

/// Outcome of one tick.
struct SwitchStepResult {
  bool sent = false;       ///< measurement transmitted
  bool switched = false;   ///< model-switch message transmitted
  size_t active_model = 0; ///< index into the bank after this tick
  Vector server_value;
};

/// Running totals. A switch costs one (larger) control message on top of
/// the regular updates; the bench reports both.
struct ModelSwitchingStats {
  int64_t ticks = 0;
  int64_t updates_sent = 0;
  int64_t switches = 0;
};

/// A dual link over a *bank* of candidate state models. The source feeds
/// every reading to one evaluation filter per candidate and tracks their
/// one-step prediction errors; when a rival model beats the active one by
/// the hysteresis margin, the source transmits a switch message and both
/// endpoints swap in a fresh predictor of the winning model (initialized
/// with the current reading).
///
/// Only the source sees every reading, so the decision is made there and
/// communicated — which is why a switch is a message, not free.
class ModelSwitchingLink {
 public:
  /// `bank` must be non-empty; all models must share the measurement
  /// width. `initial` indexes the starting model.
  static Result<ModelSwitchingLink> Create(
      std::vector<StateModel> bank, size_t initial,
      const ModelSwitchingOptions& options);

  ModelSwitchingLink(ModelSwitchingLink&&) = default;
  ModelSwitchingLink& operator=(ModelSwitchingLink&&) = default;

  Result<SwitchStepResult> Step(const Vector& reading);

  const ModelSwitchingStats& stats() const { return stats_; }
  size_t active_model() const { return active_; }
  const std::vector<StateModel>& bank() const { return bank_; }

  /// Windowed one-step prediction error of candidate `i`.
  double candidate_error(size_t i) const { return candidate_error_[i]; }

 private:
  ModelSwitchingLink(std::vector<StateModel> bank, size_t initial,
                     DualLink link,
                     std::vector<std::unique_ptr<Predictor>> evaluators,
                     const ModelSwitchingOptions& options)
      : bank_(std::move(bank)), active_(initial), link_(std::move(link)),
        evaluators_(std::move(evaluators)), options_(options),
        candidate_error_(bank_.size(), 0.0) {}

  std::vector<StateModel> bank_;
  size_t active_;
  DualLink link_;
  /// Source-side evaluation filters, one per candidate, corrected with
  /// every reading.
  std::vector<std::unique_ptr<Predictor>> evaluators_;
  ModelSwitchingOptions options_;
  std::vector<double> candidate_error_;
  ModelSwitchingStats stats_;
};

}  // namespace dkf

#endif  // DKF_CORE_MODEL_SWITCHING_H_
