#include "core/synopsis_io.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace dkf {

namespace {

constexpr const char* kMagic = "dkf_synopsis";
constexpr const char* kVersion = "1";

std::vector<std::string> MatrixRow(const std::string& tag, const Matrix& m) {
  std::vector<std::string> row = {tag, StrFormat("%zu", m.rows()),
                                  StrFormat("%zu", m.cols())};
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      row.push_back(DoubleToString(m(r, c)));
    }
  }
  return row;
}

Result<Matrix> ParseMatrixRow(const std::vector<std::string>& row) {
  if (row.size() < 3) return Status::InvalidArgument("short matrix row");
  long long rows = 0;
  long long cols = 0;
  if (!ParseInt64(row[1], &rows) || !ParseInt64(row[2], &cols) ||
      rows < 0 || cols < 0) {
    return Status::InvalidArgument("bad matrix dimensions");
  }
  const size_t expected = static_cast<size_t>(rows * cols);
  if (row.size() != 3 + expected) {
    return Status::InvalidArgument("matrix cell count mismatch");
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  size_t cell = 3;
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      double value = 0.0;
      if (!ParseDouble(row[cell++], &value)) {
        return Status::InvalidArgument("bad matrix value");
      }
      m(r, c) = value;
    }
  }
  return m;
}

std::vector<std::string> VectorRow(const std::string& tag, const Vector& v) {
  std::vector<std::string> row = {tag, StrFormat("%zu", v.size())};
  for (size_t i = 0; i < v.size(); ++i) {
    row.push_back(DoubleToString(v[i]));
  }
  return row;
}

Result<Vector> ParseVectorRow(const std::vector<std::string>& row) {
  if (row.size() < 2) return Status::InvalidArgument("short vector row");
  long long size = 0;
  if (!ParseInt64(row[1], &size) || size < 0) {
    return Status::InvalidArgument("bad vector size");
  }
  if (row.size() != 2 + static_cast<size_t>(size)) {
    return Status::InvalidArgument("vector cell count mismatch");
  }
  Vector v(static_cast<size_t>(size));
  for (size_t i = 0; i < v.size(); ++i) {
    double value = 0.0;
    if (!ParseDouble(row[2 + i], &value)) {
      return Status::InvalidArgument("bad vector value");
    }
    v[i] = value;
  }
  return v;
}

/// The finiteness contract for one model recipe, applied on both the
/// save and the load path.
Status RequireFiniteModel(const StateModel& model) {
  DKF_RETURN_IF_ERROR(RequireFinite(model.options.transition, "transition"));
  DKF_RETURN_IF_ERROR(RequireFinite(model.options.measurement, "measurement"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.process_noise, "process_noise"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.measurement_noise, "measurement_noise"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.initial_state, "initial_state"));
  DKF_RETURN_IF_ERROR(
      RequireFinite(model.options.initial_covariance, "initial_covariance"));
  return Status::OK();
}

}  // namespace

Status RequireFinite(const Vector& v, const std::string& what) {
  if (!v.IsFinite()) {
    return Status::InvalidArgument(what + " contains a non-finite value");
  }
  return Status::OK();
}

Status RequireFinite(const Matrix& m, const std::string& what) {
  if (!m.IsFinite()) {
    return Status::InvalidArgument(what + " contains a non-finite value");
  }
  return Status::OK();
}

Status SaveSynopsis(const KfSynopsis& synopsis, const std::string& path) {
  const StateModel& model = synopsis.model();
  if (model.options.transition_fn) {
    return Status::Unimplemented(
        "time-varying transitions are not serializable");
  }
  DKF_RETURN_IF_ERROR(RequireFiniteModel(model));
  auto writer_or = CsvWriter::Open(path);
  if (!writer_or.ok()) return writer_or.status();
  CsvWriter writer = std::move(writer_or).value();

  DKF_RETURN_IF_ERROR(writer.WriteRow({kMagic, kVersion}));
  DKF_RETURN_IF_ERROR(writer.WriteRow({"name", model.name}));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      {"measurement_dim", StrFormat("%zu", model.measurement_dim)}));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      {"tolerance", DoubleToString(synopsis.options().tolerance)}));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      {"norm",
       StrFormat("%d", static_cast<int>(synopsis.options().norm))}));
  DKF_RETURN_IF_ERROR(
      writer.WriteRow(MatrixRow("transition", model.options.transition)));
  DKF_RETURN_IF_ERROR(
      writer.WriteRow(MatrixRow("measurement", model.options.measurement)));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      MatrixRow("process_noise", model.options.process_noise)));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      MatrixRow("measurement_noise", model.options.measurement_noise)));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      VectorRow("initial_state", model.options.initial_state)));
  DKF_RETURN_IF_ERROR(writer.WriteRow(
      MatrixRow("initial_covariance", model.options.initial_covariance)));

  std::vector<std::string> ts_row = {
      "timestamps", StrFormat("%zu", synopsis.timestamps().size())};
  for (double t : synopsis.timestamps()) {
    ts_row.push_back(DoubleToString(t));
  }
  DKF_RETURN_IF_ERROR(writer.WriteRow(ts_row));

  for (const SynopsisEntry& entry : synopsis.entries()) {
    std::vector<std::string> row = {"entry",
                                    StrFormat("%zu", entry.index)};
    for (size_t d = 0; d < entry.value.size(); ++d) {
      row.push_back(DoubleToString(entry.value[d]));
    }
    DKF_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

Result<KfSynopsis> LoadSynopsis(const std::string& path) {
  auto rows_or = ReadCsvFile(path);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != kMagic) {
    return Status::InvalidArgument("not a dkf synopsis file");
  }
  if (rows[0][1] != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported synopsis version %s (expected %s)",
                  rows[0][1].c_str(), kVersion));
  }

  StateModel model;
  SynopsisOptions options;
  std::vector<double> timestamps;
  std::vector<SynopsisEntry> entries;
  size_t measurement_dim = 0;

  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.empty()) continue;
    const std::string& tag = row[0];
    if (tag == "name") {
      if (row.size() != 2) return Status::InvalidArgument("bad name row");
      model.name = row[1];
    } else if (tag == "measurement_dim") {
      long long dim = 0;
      if (row.size() != 2 || !ParseInt64(row[1], &dim) || dim <= 0) {
        return Status::InvalidArgument("bad measurement_dim row");
      }
      measurement_dim = static_cast<size_t>(dim);
    } else if (tag == "tolerance") {
      if (row.size() != 2 || !ParseDouble(row[1], &options.tolerance)) {
        return Status::InvalidArgument("bad tolerance row");
      }
    } else if (tag == "norm") {
      long long norm = 0;
      if (row.size() != 2 || !ParseInt64(row[1], &norm) || norm < 0 ||
          norm > 2) {
        return Status::InvalidArgument("bad norm row");
      }
      options.norm = static_cast<DeviationNorm>(norm);
    } else if (tag == "transition") {
      DKF_ASSIGN_OR_RETURN(model.options.transition, ParseMatrixRow(row));
    } else if (tag == "measurement") {
      DKF_ASSIGN_OR_RETURN(model.options.measurement, ParseMatrixRow(row));
    } else if (tag == "process_noise") {
      DKF_ASSIGN_OR_RETURN(model.options.process_noise,
                           ParseMatrixRow(row));
    } else if (tag == "measurement_noise") {
      DKF_ASSIGN_OR_RETURN(model.options.measurement_noise,
                           ParseMatrixRow(row));
    } else if (tag == "initial_state") {
      DKF_ASSIGN_OR_RETURN(model.options.initial_state, ParseVectorRow(row));
    } else if (tag == "initial_covariance") {
      DKF_ASSIGN_OR_RETURN(model.options.initial_covariance,
                           ParseMatrixRow(row));
    } else if (tag == "timestamps") {
      auto ts_or = ParseVectorRow(row);
      if (!ts_or.ok()) return ts_or.status();
      timestamps = ts_or.value().ToStdVector();
    } else if (tag == "entry") {
      if (row.size() < 2) return Status::InvalidArgument("bad entry row");
      long long index = 0;
      if (!ParseInt64(row[1], &index) || index < 0) {
        return Status::InvalidArgument("bad entry index");
      }
      SynopsisEntry entry;
      entry.index = static_cast<size_t>(index);
      Vector value(row.size() - 2);
      for (size_t d = 0; d + 2 < row.size(); ++d) {
        double cell = 0.0;
        if (!ParseDouble(row[d + 2], &cell)) {
          return Status::InvalidArgument("bad entry value");
        }
        value[d] = cell;
      }
      entry.value = value;
      entries.push_back(std::move(entry));
    } else {
      return Status::InvalidArgument("unknown row tag: " + tag);
    }
  }
  model.measurement_dim = measurement_dim;
  DKF_RETURN_IF_ERROR(RequireFiniteModel(model));
  for (const SynopsisEntry& entry : entries) {
    DKF_RETURN_IF_ERROR(RequireFinite(entry.value, "entry value"));
  }
  return KfSynopsis::FromParts(std::move(model), options,
                               std::move(timestamps), std::move(entries));
}

}  // namespace dkf
