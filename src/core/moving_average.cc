#include "core/moving_average.h"

namespace dkf {

Result<MovingAverage> MovingAverage::Create(size_t window) {
  if (window == 0) return Status::InvalidArgument("window must be >= 1");
  return MovingAverage(window);
}

double MovingAverage::Push(double raw) {
  buffer_.push_back(raw);
  sum_ += raw;
  if (buffer_.size() > window_) {
    sum_ -= buffer_.front();
    buffer_.pop_front();
  }
  return sum_ / static_cast<double>(buffer_.size());
}

Result<TimeSeries> SmoothSeriesMovingAverage(const TimeSeries& series,
                                             size_t window) {
  if (series.width() != 1) {
    return Status::InvalidArgument(
        "moving-average smoothing expects a width-1 series");
  }
  auto ma_or = MovingAverage::Create(window);
  if (!ma_or.ok()) return ma_or.status();
  MovingAverage ma = std::move(ma_or).value();

  TimeSeries out(1);
  out.Reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    DKF_RETURN_IF_ERROR(
        out.Append(series.timestamp(i), ma.Push(series.value(i))));
  }
  return out;
}

}  // namespace dkf
