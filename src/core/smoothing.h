#ifndef DKF_CORE_SMOOTHING_H_
#define DKF_CORE_SMOOTHING_H_

#include "common/result.h"
#include "common/time_series.h"
#include "filter/kalman_filter.h"

namespace dkf {

/// The KF_c data-smoothing stage (§4.3): a one-state constant-model Kalman
/// filter whose process-noise variance is the user-supplied smoothing
/// factor F. Small F means the filter trusts its own state over the noisy
/// reading, producing a heavily smoothed output ("using sufficiently low F
/// the smoothed values match those of a moving average", Fig 10); large F
/// tracks the raw data closely.
///
/// Unlike a moving average, the smoother needs no history buffer — the
/// paper's "no extra memory, yet a true online solution" claim — and F is
/// a continuous sensitivity knob.
class KalmanSmoother {
 public:
  /// `smoothing_factor` is F > 0; `measurement_variance` is the assumed
  /// reading noise R > 0.
  static Result<KalmanSmoother> Create(double smoothing_factor,
                                       double measurement_variance = 1.0);

  /// Consumes one raw reading, returns the smoothed value.
  Result<double> Push(double raw);

  double smoothing_factor() const { return smoothing_factor_; }
  int64_t count() const { return count_; }

  /// Checkpoint hooks: the smoother is a KalmanFilter plus a push counter,
  /// so exposing both restores it exactly (src/checkpoint/).
  const KalmanFilter& filter() const { return filter_; }
  KalmanFilter& mutable_filter() { return filter_; }
  void set_count(int64_t count) { count_ = count; }

 private:
  KalmanSmoother(double smoothing_factor, KalmanFilter filter)
      : smoothing_factor_(smoothing_factor), filter_(std::move(filter)) {}

  double smoothing_factor_;
  KalmanFilter filter_;
  int64_t count_ = 0;
};

/// Smooths an entire width-1 series through a fresh KalmanSmoother.
Result<TimeSeries> SmoothSeriesKalman(const TimeSeries& series,
                                      double smoothing_factor,
                                      double measurement_variance = 1.0);

/// The smoothing factor F whose steady-state gain turns KF_c into an
/// exponential smoother with the same effective horizon as an N-sample
/// moving average.
///
/// At steady state the scalar random-walk filter satisfies
/// F = K^2 R / (1 - K); matching the EWMA coefficient K = 2/(N+1) of an
/// N-sample moving average yields the F below. This makes Figure 10's
/// "sufficiently low F matches the moving average" claim quantitative.
double SmoothingFactorForWindow(size_t window, double measurement_variance);

}  // namespace dkf

#endif  // DKF_CORE_SMOOTHING_H_
