#ifndef DKF_CORE_PREDICTOR_H_
#define DKF_CORE_PREDICTOR_H_

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "models/state_model.h"
#include "obs/trace_sink.h"

namespace dkf {

/// The prediction procedure the server caches for one stream source.
///
/// The DKF protocol (and its baselines) only need three operations from a
/// prediction scheme: advance one time step, report the value the server
/// would answer right now, and incorporate a transmitted measurement. Both
/// endpoints of a dual link run *identical* Predictor instances fed
/// identical inputs, which is what makes server-side prediction possible
/// without communication.
///
/// Implementations must be deterministic: equal call sequences on equal
/// initial states must produce bit-identical states (see StateEquals).
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Display name used in experiment tables.
  virtual std::string name() const = 0;

  /// Width of the values this predictor consumes and produces.
  virtual size_t dim() const = 0;

  /// Advances the internal model by one time step (the prediction half of
  /// the prediction-correction loop). Called exactly once per stream tick.
  virtual Status Tick() = 0;

  /// The value the server would answer for the current tick.
  virtual Vector Predicted() const = 0;

  /// Incorporates a measurement transmitted from the source (the
  /// correction half). Called only on ticks whose reading was sent.
  virtual Status Update(const Vector& value) = 0;

  /// Uncertainty of Predicted() — the state covariance projected through
  /// the measurement map (H P H^T) — when the scheme tracks one.
  /// std::nullopt for point predictors like the cached-value baseline.
  /// Lets the server attach confidence intervals to its answers.
  virtual std::optional<Matrix> PredictedCovariance() const {
    return std::nullopt;
  }

  /// A full snapshot of the predictor's internal state — the payload of a
  /// dual-link resync message.
  struct Snapshot {
    Vector state;
    Matrix covariance;
    int64_t step = 0;
  };

  /// Exports the internal state for a resync. Unimplemented by default;
  /// schemes that support the hardened protocol override both ends.
  virtual Result<Snapshot> ExportState() const {
    return Status::Unimplemented("predictor does not support state export");
  }

  /// Overwrites the internal state with a peer's snapshot, bit-exact —
  /// applying the mirror's export re-locks the two filters by
  /// construction.
  virtual Status ImportState(const Snapshot& snapshot) {
    (void)snapshot;
    return Status::Unimplemented("predictor does not support state import");
  }

  /// The *complete* running state, including the steady-state fast-path
  /// freeze cycle that the resync-oriented ExportState deliberately omits.
  /// Checkpoint/restore uses this pair so a restored predictor continues
  /// bit-identically (docs/checkpoint.md). Unimplemented by default.
  virtual Result<KalmanFilter::FullState> ExportFullState() const {
    return Status::Unimplemented(
        "predictor does not support full-state export");
  }

  virtual Status ImportFullState(const KalmanFilter::FullState& full) {
    (void)full;
    return Status::Unimplemented(
        "predictor does not support full-state import");
  }

  /// The underlying KalmanFilter when the scheme has one that online
  /// noise adaptation (filter/adaptive_noise.h) may retune, else nullptr.
  /// Point predictors and schemes with no tunable noise opt out by
  /// default, which disables adaptation on their links.
  virtual KalmanFilter* AdaptableFilter() { return nullptr; }

  /// Deep copy. A link clones its prototype once for the server filter and
  /// once for the source-side mirror.
  virtual std::unique_ptr<Predictor> Clone() const = 0;

  /// True when `other` is the same concrete type with bit-identical
  /// internal state — the mirror-consistency predicate.
  virtual bool StateEquals(const Predictor& other) const = 0;

  /// Wires an observability sink into the scheme's internals, stamping
  /// emitted events with (source_id, actor). Observation only — must not
  /// change any prediction. Default: nothing to observe.
  virtual void SetTrace(TraceSink* sink, int32_t source_id,
                        TraceActor actor) {
    (void)sink;
    (void)source_id;
    (void)actor;
  }
};

/// Kalman-filter predictor (the paper's proposal): wraps a KalmanFilter
/// built from a StateModel recipe. Tick = Predict, Update = Correct.
class KalmanPredictor : public Predictor {
 public:
  /// Builds the predictor from a model recipe; errors when the recipe is
  /// invalid.
  static Result<KalmanPredictor> Create(const StateModel& model);

  std::string name() const override { return name_; }
  size_t dim() const override { return filter_.measurement_dim(); }
  Status Tick() override { return filter_.Predict(); }
  Vector Predicted() const override { return filter_.PredictedMeasurement(); }
  Status Update(const Vector& value) override {
    return filter_.Correct(value);
  }
  std::optional<Matrix> PredictedCovariance() const override;
  Result<Snapshot> ExportState() const override {
    return Snapshot{filter_.state(), filter_.covariance(), filter_.step()};
  }
  Status ImportState(const Snapshot& snapshot) override {
    return filter_.ImportState(snapshot.state, snapshot.covariance,
                               snapshot.step);
  }
  Result<KalmanFilter::FullState> ExportFullState() const override {
    return filter_.ExportFullState();
  }
  Status ImportFullState(const KalmanFilter::FullState& full) override {
    return filter_.ImportFullState(full);
  }
  KalmanFilter* AdaptableFilter() override { return &filter_; }
  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<KalmanPredictor>(*this);
  }
  bool StateEquals(const Predictor& other) const override;
  void SetTrace(TraceSink* sink, int32_t source_id,
                TraceActor actor) override {
    filter_.set_trace(sink, source_id, actor);
  }

  /// Access to the underlying filter (innovation statistics, covariance).
  const KalmanFilter& filter() const { return filter_; }
  KalmanFilter& mutable_filter() { return filter_; }

 private:
  KalmanPredictor(std::string name, KalmanFilter filter)
      : name_(std::move(name)), filter_(std::move(filter)) {}

  std::string name_;
  KalmanFilter filter_;
};

/// The cached-approximation baseline of Olston et al. [23, 25] as used in
/// the paper's evaluation (§5): the server caches the last transmitted
/// value; the "prediction" never moves between updates.
///
/// In bound form the scheme keeps [L, H] = [V - delta, V + delta] around
/// the cached value V and transmits when a reading exits the bound; the
/// deviation test |v - V| > delta applied by the link is exactly that
/// bound check, so this class only needs to remember V. No dynamic bound
/// growing/shrinking (the paper disables it too).
class CachedValuePredictor : public Predictor {
 public:
  /// A cache for `dim`-wide values, initially all-zero (the first real
  /// reading virtually always deviates and forces the initial update).
  static Result<CachedValuePredictor> Create(size_t dim);

  std::string name() const override { return "caching"; }
  size_t dim() const override { return cached_.size(); }
  Status Tick() override { return Status::OK(); }
  Vector Predicted() const override { return cached_; }
  Status Update(const Vector& value) override;
  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<CachedValuePredictor>(*this);
  }
  bool StateEquals(const Predictor& other) const override;

 private:
  explicit CachedValuePredictor(size_t dim) : cached_(dim) {}
  Vector cached_;
};

}  // namespace dkf

#endif  // DKF_CORE_PREDICTOR_H_
