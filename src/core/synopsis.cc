#include "core/synopsis.h"

#include "common/string_util.h"
#include "core/dual_link.h"
#include "core/predictor.h"
#include "filter/rts_smoother.h"

namespace dkf {

Result<KfSynopsis> KfSynopsis::Build(const TimeSeries& series,
                                     const StateModel& model,
                                     const SynopsisOptions& options) {
  if (options.tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  if (series.width() != model.measurement_dim) {
    return Status::InvalidArgument(
        StrFormat("series width %zu, model expects %zu", series.width(),
                  model.measurement_dim));
  }

  auto predictor_or = KalmanPredictor::Create(model);
  if (!predictor_or.ok()) return predictor_or.status();
  DualLinkOptions link_options;
  link_options.delta = options.tolerance;
  link_options.norm = options.norm;
  auto link_or = DualLink::Create(predictor_or.value(), link_options);
  if (!link_or.ok()) return link_or.status();
  DualLink link = std::move(link_or).value();

  std::vector<double> timestamps;
  timestamps.reserve(series.size());
  std::vector<SynopsisEntry> entries;
  for (size_t i = 0; i < series.size(); ++i) {
    timestamps.push_back(series.timestamp(i));
    const Vector reading(series.Row(i));
    auto step_or = link.Step(reading);
    if (!step_or.ok()) return step_or.status();
    if (step_or.value().sent) {
      entries.push_back(SynopsisEntry{i, reading});
    }
  }
  return KfSynopsis(model, options, std::move(timestamps),
                    std::move(entries));
}

Result<KfSynopsis> KfSynopsis::FromParts(StateModel model,
                                         const SynopsisOptions& options,
                                         std::vector<double> timestamps,
                                         std::vector<SynopsisEntry> entries) {
  if (options.tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  if (timestamps.empty()) {
    return Status::InvalidArgument("synopsis needs at least one timestamp");
  }
  for (size_t i = 1; i < timestamps.size(); ++i) {
    if (timestamps[i] <= timestamps[i - 1]) {
      return Status::InvalidArgument("timestamps must be increasing");
    }
  }
  size_t previous = 0;
  bool first = true;
  for (const SynopsisEntry& entry : entries) {
    if (entry.index >= timestamps.size()) {
      return Status::InvalidArgument("entry index out of range");
    }
    if (!first && entry.index <= previous) {
      return Status::InvalidArgument("entries must be strictly increasing");
    }
    if (entry.value.size() != model.measurement_dim) {
      return Status::InvalidArgument("entry width does not match the model");
    }
    previous = entry.index;
    first = false;
  }
  // The model must be instantiable.
  auto filter_or = model.MakeFilter();
  if (!filter_or.ok()) return filter_or.status();
  return KfSynopsis(std::move(model), options, std::move(timestamps),
                    std::move(entries));
}

Result<TimeSeries> KfSynopsis::Reconstruct() const {
  auto predictor_or = KalmanPredictor::Create(model_);
  if (!predictor_or.ok()) return predictor_or.status();
  std::unique_ptr<Predictor> predictor = predictor_or.value().Clone();

  TimeSeries out(model_.measurement_dim);
  out.Reserve(timestamps_.size());
  size_t next_entry = 0;
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    DKF_RETURN_IF_ERROR(predictor->Tick());
    if (next_entry < entries_.size() && entries_[next_entry].index == i) {
      DKF_RETURN_IF_ERROR(predictor->Update(entries_[next_entry].value));
      ++next_entry;
    }
    const Vector value = predictor->Predicted();
    DKF_RETURN_IF_ERROR(out.Append(timestamps_[i], value.ToStdVector()));
  }
  return out;
}

Result<TimeSeries> KfSynopsis::ReconstructSmoothed() const {
  std::vector<std::optional<Vector>> measurements(timestamps_.size());
  for (const SynopsisEntry& entry : entries_) {
    measurements[entry.index] = entry.value;
  }
  auto rts_or = RtsSmooth(model_.options, measurements);
  if (!rts_or.ok()) return rts_or.status();
  const RtsResult& rts = rts_or.value();

  TimeSeries out(model_.measurement_dim);
  out.Reserve(timestamps_.size());
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    DKF_RETURN_IF_ERROR(
        out.Append(timestamps_[i], rts.measurements[i].ToStdVector()));
  }
  return out;
}

size_t KfSynopsis::StorageBytes() const {
  // Per entry: a 64-bit index plus measurement_dim doubles.
  return entries_.size() *
         (sizeof(uint64_t) + model_.measurement_dim * sizeof(double));
}

}  // namespace dkf
