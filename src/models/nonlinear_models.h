#ifndef DKF_MODELS_NONLINEAR_MODELS_H_
#define DKF_MODELS_NONLINEAR_MODELS_H_

#include "common/result.h"
#include "filter/extended_kalman_filter.h"
#include "filter/unscented_kalman_filter.h"

namespace dkf {

/// Noise knobs for the nonlinear models.
struct NonlinearModelNoise {
  double process_variance = 0.05;
  double measurement_variance = 0.05;
  double initial_variance = 100.0;
};

/// Coordinated-turn model for a platform that can rotate about itself
/// (§3.2 footnote 1 — the canonical case where linear KF is insufficient
/// and the extended KF is required).
///
/// State: [x, y, speed, heading, turn_rate]; measurement: (x, y).
///   x'       = x + speed * cos(heading) * dt
///   y'       = y + speed * sin(heading) * dt
///   heading' = heading + turn_rate * dt
/// speed and turn_rate follow random walks.
Result<ExtendedKalmanFilterOptions> MakeCoordinatedTurnModel(
    double dt, const NonlinearModelNoise& noise);

/// Same coordinated-turn dynamics as an unscented-filter configuration
/// (no Jacobians needed; the sigma points sample the nonlinearity).
///
/// Keep `process_variance` honest (small) for this model: the UKF's
/// second-order mean correction prices in the heading uncertainty
/// (E[cos h] < cos E[h]), so an inflated Q systematically biases the
/// speed estimate and ruins coasting — measured in the UKF tests; the
/// Jacobian-based EKF happens to ignore that term.
Result<UnscentedKalmanFilterOptions> MakeCoordinatedTurnUkf(
    double dt, const NonlinearModelNoise& noise);

}  // namespace dkf

#endif  // DKF_MODELS_NONLINEAR_MODELS_H_
