#include "models/nonlinear_models.h"

#include <cmath>

namespace dkf {

Result<ExtendedKalmanFilterOptions> MakeCoordinatedTurnModel(
    double dt, const NonlinearModelNoise& noise) {
  if (dt <= 0.0) return Status::InvalidArgument("dt must be positive");
  if (noise.process_variance < 0.0 || noise.measurement_variance <= 0.0 ||
      noise.initial_variance <= 0.0) {
    return Status::InvalidArgument("invalid noise configuration");
  }

  ExtendedKalmanFilterOptions options;
  // State layout: [x, y, speed, heading, turn_rate].
  options.transition = [dt](const Vector& x, int64_t /*k*/) {
    Vector next(5);
    next[0] = x[0] + x[2] * std::cos(x[3]) * dt;
    next[1] = x[1] + x[2] * std::sin(x[3]) * dt;
    next[2] = x[2];
    next[3] = x[3] + x[4] * dt;
    next[4] = x[4];
    return next;
  };
  options.transition_jacobian = [dt](const Vector& x, int64_t /*k*/) {
    Matrix jac = Matrix::Identity(5);
    jac(0, 2) = std::cos(x[3]) * dt;
    jac(0, 3) = -x[2] * std::sin(x[3]) * dt;
    jac(1, 2) = std::sin(x[3]) * dt;
    jac(1, 3) = x[2] * std::cos(x[3]) * dt;
    jac(3, 4) = dt;
    return jac;
  };
  options.measurement = [](const Vector& x) {
    return Vector{x[0], x[1]};
  };
  options.measurement_jacobian = [](const Vector& /*x*/) {
    return Matrix{{1.0, 0.0, 0.0, 0.0, 0.0}, {0.0, 1.0, 0.0, 0.0, 0.0}};
  };
  options.process_noise = Matrix::ScaledIdentity(5, noise.process_variance);
  options.measurement_noise =
      Matrix::ScaledIdentity(2, noise.measurement_variance);
  options.initial_state = Vector(5);
  options.initial_covariance =
      Matrix::ScaledIdentity(5, noise.initial_variance);
  return options;
}

Result<UnscentedKalmanFilterOptions> MakeCoordinatedTurnUkf(
    double dt, const NonlinearModelNoise& noise) {
  auto ekf_or = MakeCoordinatedTurnModel(dt, noise);
  if (!ekf_or.ok()) return ekf_or.status();
  const ExtendedKalmanFilterOptions& ekf = ekf_or.value();
  UnscentedKalmanFilterOptions options;
  options.transition = ekf.transition;
  options.measurement = ekf.measurement;
  options.process_noise = ekf.process_noise;
  options.measurement_noise = ekf.measurement_noise;
  options.initial_state = ekf.initial_state;
  options.initial_covariance = ekf.initial_covariance;
  return options;
}

}  // namespace dkf
