#ifndef DKF_MODELS_MODEL_FACTORY_H_
#define DKF_MODELS_MODEL_FACTORY_H_

#include <cstddef>

#include "common/result.h"
#include "models/state_model.h"

namespace dkf {

/// Common numeric knobs shared by the model factories. The defaults mirror
/// the paper's Example 1 setup: diagonal Q and R with value 0.05 (§4.1) and
/// a diffuse initial covariance so the first few updates dominate.
struct ModelNoise {
  double process_variance = 0.05;      ///< diagonal of Q
  double measurement_variance = 0.05;  ///< diagonal of R
  double initial_variance = 100.0;     ///< diagonal of P_0
};

/// Constant model (§4.1 eq. 15): x_k = x_{k-1} per measured attribute. The
/// state *is* the measurement, so this is conceptually the cached-value
/// scheme expressed as a filter; the paper uses it as the worst-case model.
Result<StateModel> MakeConstantModel(size_t dims, const ModelNoise& noise);

/// Linear (constant-velocity) model (§4.1 eq. 13-16): per measured axis the
/// state holds [position, rate]; positions integrate rates over `dt`. For
/// axes = 2 this is exactly the paper's 4-state moving-object model with
/// H = [[1,0,0,0],[0,0,1,0]].
Result<StateModel> MakeLinearModel(size_t axes, double dt,
                                   const ModelNoise& noise);

/// Higher-order polynomial model (§4.1 "jerky trajectories"): per axis the
/// state holds derivatives 0..order, propagated by the Taylor expansion
/// P_k = P + P'dt + P''dt^2/2 + ... order=1 reduces to the linear model.
Result<StateModel> MakePolynomialModel(size_t axes, size_t order, double dt,
                                       const ModelNoise& noise);

/// Sinusoidal model (§4.2 eq. 17-18) for a scalar stream with a known
/// periodic trend: state [x, s] with time-varying transition
///   x_k = x_{k-1} + gamma cos(omega k + theta) s_{k-1},  s_k = s_{k-1}.
Result<StateModel> MakeSinusoidalModel(double omega, double theta,
                                       double gamma, const ModelNoise& noise);

/// Scalar smoothing model (§4.3): the one-state constant model whose
/// process-noise variance is the user-facing smoothing factor F. This is
/// the configuration of the KF_c data-smoothing filter.
Result<StateModel> MakeSmoothingModel(double smoothing_factor,
                                      double measurement_variance);

/// Mean-reverting (AR(1)-around-a-learned-mean) model for streams that
/// fluctuate around a slowly drifting level — queue depths, traffic
/// volumes, utilization. State [x, mu]:
///   x_k  = rho x_{k-1} + (1 - rho) mu_{k-1}
///   mu_k = mu_{k-1}
/// with reversion rate rho in (0, 1). rho -> 1 degrades to the constant
/// model; small rho snaps hard toward the learned mean. Still linear, so
/// the plain KF applies; the win over `constant` is that after a burst
/// the server's prediction *decays back to the mean by itself*, saving
/// the come-down updates.
Result<StateModel> MakeMeanRevertingModel(double rho,
                                          const ModelNoise& noise);

}  // namespace dkf

#endif  // DKF_MODELS_MODEL_FACTORY_H_
