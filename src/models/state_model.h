#ifndef DKF_MODELS_STATE_MODEL_H_
#define DKF_MODELS_STATE_MODEL_H_

#include <string>

#include "common/result.h"
#include "filter/kalman_filter.h"

namespace dkf {

/// A named, ready-to-instantiate Kalman filter configuration describing how
/// a stream attribute evolves. The paper's central flexibility claim (§3.1
/// advantage 6, §4) is that switching applications only means switching
/// this recipe; everything else in the DKF pipeline stays fixed.
struct StateModel {
  /// Human-readable name used in experiment tables ("linear", ...).
  std::string name;

  /// Width of the measurement vector this model consumes (1 for scalar
  /// streams, 2 for 2-D positions).
  size_t measurement_dim = 1;

  /// The filter configuration.
  KalmanFilterOptions options;

  /// Builds a fresh filter from the recipe.
  Result<KalmanFilter> MakeFilter() const {
    return KalmanFilter::Create(options);
  }
};

}  // namespace dkf

#endif  // DKF_MODELS_STATE_MODEL_H_
