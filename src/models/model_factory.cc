#include "models/model_factory.h"

#include <cmath>

#include "common/string_util.h"

namespace dkf {

namespace {

Status ValidateNoise(const ModelNoise& noise) {
  if (noise.process_variance < 0.0) {
    return Status::InvalidArgument("process variance must be >= 0");
  }
  if (noise.measurement_variance <= 0.0) {
    return Status::InvalidArgument("measurement variance must be > 0");
  }
  if (noise.initial_variance <= 0.0) {
    return Status::InvalidArgument("initial variance must be > 0");
  }
  return Status::OK();
}

// Factorial as a double (orders here are <= 4).
double Factorial(size_t n) {
  double out = 1.0;
  for (size_t i = 2; i <= n; ++i) out *= static_cast<double>(i);
  return out;
}

}  // namespace

Result<StateModel> MakeConstantModel(size_t dims, const ModelNoise& noise) {
  if (dims == 0) return Status::InvalidArgument("dims must be positive");
  DKF_RETURN_IF_ERROR(ValidateNoise(noise));
  StateModel model;
  model.name = "constant";
  model.measurement_dim = dims;
  model.options.transition = Matrix::Identity(dims);
  model.options.measurement = Matrix::Identity(dims);
  model.options.process_noise =
      Matrix::ScaledIdentity(dims, noise.process_variance);
  model.options.measurement_noise =
      Matrix::ScaledIdentity(dims, noise.measurement_variance);
  model.options.initial_state = Vector(dims);
  model.options.initial_covariance =
      Matrix::ScaledIdentity(dims, noise.initial_variance);
  return model;
}

Result<StateModel> MakeLinearModel(size_t axes, double dt,
                                   const ModelNoise& noise) {
  return MakePolynomialModel(axes, /*order=*/1, dt, noise);
}

Result<StateModel> MakePolynomialModel(size_t axes, size_t order, double dt,
                                       const ModelNoise& noise) {
  if (axes == 0) return Status::InvalidArgument("axes must be positive");
  if (order == 0 || order > 4) {
    return Status::InvalidArgument("order must be in [1, 4]");
  }
  if (dt <= 0.0) return Status::InvalidArgument("dt must be positive");
  DKF_RETURN_IF_ERROR(ValidateNoise(noise));

  const size_t per_axis = order + 1;  // derivatives 0..order
  const size_t n = axes * per_axis;
  StateModel model;
  model.name = order == 1 ? "linear" : StrFormat("poly%zu", order);
  model.measurement_dim = axes;

  // Block-diagonal Taylor transition: entry (i, j) within an axis block is
  // dt^{j-i} / (j-i)! for j >= i.
  Matrix phi(n, n);
  for (size_t axis = 0; axis < axes; ++axis) {
    const size_t base = axis * per_axis;
    for (size_t i = 0; i < per_axis; ++i) {
      for (size_t j = i; j < per_axis; ++j) {
        phi(base + i, base + j) =
            std::pow(dt, static_cast<double>(j - i)) / Factorial(j - i);
      }
    }
  }
  model.options.transition = phi;

  // Measurement picks the 0th derivative of each axis (paper eq. 16).
  Matrix h(axes, n);
  for (size_t axis = 0; axis < axes; ++axis) {
    h(axis, axis * per_axis) = 1.0;
  }
  model.options.measurement = h;

  model.options.process_noise =
      Matrix::ScaledIdentity(n, noise.process_variance);
  model.options.measurement_noise =
      Matrix::ScaledIdentity(axes, noise.measurement_variance);
  model.options.initial_state = Vector(n);
  model.options.initial_covariance =
      Matrix::ScaledIdentity(n, noise.initial_variance);
  return model;
}

Result<StateModel> MakeSinusoidalModel(double omega, double theta,
                                       double gamma, const ModelNoise& noise) {
  if (omega == 0.0) {
    return Status::InvalidArgument("omega must be non-zero");
  }
  DKF_RETURN_IF_ERROR(ValidateNoise(noise));
  StateModel model;
  model.name = "sinusoidal";
  model.measurement_dim = 1;
  // Time-varying phi_k (paper eq. 17): the off-diagonal term carries the
  // known phase of the seasonal component while the state s tracks its
  // amplitude online.
  model.options.transition_fn = [omega, theta, gamma](int64_t k) {
    Matrix phi = Matrix::Identity(2);
    phi(0, 1) = gamma * std::cos(omega * static_cast<double>(k) + theta);
    return phi;
  };
  model.options.measurement = Matrix{{1.0, 0.0}};  // eq. 18
  model.options.process_noise =
      Matrix::ScaledIdentity(2, noise.process_variance);
  model.options.measurement_noise =
      Matrix::ScaledIdentity(1, noise.measurement_variance);
  model.options.initial_state = Vector(2);
  model.options.initial_covariance =
      Matrix::ScaledIdentity(2, noise.initial_variance);
  return model;
}

Result<StateModel> MakeSmoothingModel(double smoothing_factor,
                                      double measurement_variance) {
  if (smoothing_factor <= 0.0) {
    return Status::InvalidArgument("smoothing factor F must be positive");
  }
  if (measurement_variance <= 0.0) {
    return Status::InvalidArgument("measurement variance must be positive");
  }
  StateModel model;
  model.name = StrFormat("smoothing(F=%g)", smoothing_factor);
  model.measurement_dim = 1;
  model.options.transition = Matrix::Identity(1);
  model.options.measurement = Matrix::Identity(1);
  model.options.process_noise = Matrix{{smoothing_factor}};
  model.options.measurement_noise = Matrix{{measurement_variance}};
  model.options.initial_state = Vector(1);
  model.options.initial_covariance = Matrix{{100.0}};
  return model;
}

Result<StateModel> MakeMeanRevertingModel(double rho,
                                          const ModelNoise& noise) {
  if (rho <= 0.0 || rho >= 1.0) {
    return Status::InvalidArgument("rho must be in (0, 1)");
  }
  DKF_RETURN_IF_ERROR(ValidateNoise(noise));
  StateModel model;
  model.name = StrFormat("mean-reverting(rho=%g)", rho);
  model.measurement_dim = 1;
  model.options.transition = Matrix{{rho, 1.0 - rho}, {0.0, 1.0}};
  model.options.measurement = Matrix{{1.0, 0.0}};
  // The level state mu drifts much more slowly than x fluctuates.
  Matrix q(2, 2);
  q(0, 0) = noise.process_variance;
  q(1, 1) = noise.process_variance * 1e-3;
  model.options.process_noise = q;
  model.options.measurement_noise =
      Matrix{{noise.measurement_variance}};
  model.options.initial_state = Vector(2);
  model.options.initial_covariance =
      Matrix::ScaledIdentity(2, noise.initial_variance);
  return model;
}

}  // namespace dkf
