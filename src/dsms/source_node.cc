#include "dsms/source_node.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dkf {

Result<SourceNode> SourceNode::Create(const SourceNodeOptions& options) {
  if (!options.component_deltas.empty()) {
    if (options.component_deltas.size() != options.model.measurement_dim) {
      return Status::InvalidArgument(
          StrFormat("%zu component deltas for a %zu-wide model",
                    options.component_deltas.size(),
                    options.model.measurement_dim));
    }
    for (double delta : options.component_deltas) {
      if (delta <= 0.0) {
        return Status::InvalidArgument("component deltas must be positive");
      }
    }
  } else if (options.delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  if (options.protocol.resync_burst_retries < 1) {
    return Status::InvalidArgument("resync_burst_retries must be >= 1");
  }
  if (options.protocol.resync_retry_backoff < 1) {
    return Status::InvalidArgument("resync_retry_backoff must be >= 1");
  }
  auto predictor_or = KalmanPredictor::Create(options.model);
  if (!predictor_or.ok()) return predictor_or.status();

  std::optional<KalmanSmoother> smoother;
  if (options.smoothing_factor.has_value()) {
    if (options.model.measurement_dim != 1) {
      return Status::InvalidArgument(
          "KF_c smoothing is only supported for width-1 models");
    }
    auto smoother_or =
        KalmanSmoother::Create(*options.smoothing_factor,
                               options.smoothing_measurement_variance);
    if (!smoother_or.ok()) return smoother_or.status();
    smoother = std::move(smoother_or).value();
  }
  SourceNode node(options, predictor_or.value().Clone(),
                  std::move(smoother));
  if (options.protocol.adaptive.enabled &&
      node.mirror_->AdaptableFilter() != nullptr) {
    auto adapter_or =
        NoiseAdapter::Create(options.protocol.adaptive, options.model);
    if (!adapter_or.ok()) return adapter_or.status();
    node.adapter_ = std::move(adapter_or).value();
  }
  return node;
}

Status SourceNode::set_delta(double delta) {
  if (delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  options_.delta = delta;
  return Status::OK();
}

Status SourceNode::set_smoothing(std::optional<double> smoothing_factor) {
  if (!smoothing_factor.has_value()) {
    smoother_.reset();
    options_.smoothing_factor.reset();
    return Status::OK();
  }
  if (mirror_->dim() != 1) {
    return Status::InvalidArgument(
        "KF_c smoothing is only supported for width-1 models");
  }
  auto smoother_or = KalmanSmoother::Create(
      *smoothing_factor, options_.smoothing_measurement_variance);
  if (!smoother_or.ok()) return smoother_or.status();
  smoother_ = std::move(smoother_or).value();
  options_.smoothing_factor = smoothing_factor;
  return Status::OK();
}

Result<SourceNode::CheckpointState> SourceNode::ExportCheckpoint() const {
  CheckpointState state;
  state.delta = options_.delta;
  state.smoothing_factor = options_.smoothing_factor;
  state.smoothing_measurement_variance =
      options_.smoothing_measurement_variance;
  auto mirror_or = mirror_->ExportFullState();
  if (!mirror_or.ok()) return mirror_or.status();
  state.mirror = std::move(mirror_or).value();
  if (smoother_.has_value()) {
    state.smoother_filter = smoother_->filter().ExportFullState();
    state.smoother_count = smoother_->count();
  }
  state.energy_transmission = energy_.transmission();
  state.energy_compute = energy_.compute();
  state.energy_sensing = energy_.sensing();
  state.readings = readings_;
  state.updates_sent = updates_sent_;
  state.next_sequence = next_sequence_;
  state.pending = pending_;
  state.pending_since = pending_since_;
  state.first_resync_sequence = first_resync_sequence_;
  state.resync_attempts = resync_attempts_;
  state.last_resync_tick = last_resync_tick_;
  state.last_send_tick = last_send_tick_;
  state.faults = faults_;
  state.adapt = adapter_.ExportState();
  return state;
}

Status SourceNode::ImportCheckpoint(const CheckpointState& state) {
  DKF_RETURN_IF_ERROR(set_delta(state.delta));
  options_.smoothing_measurement_variance =
      state.smoothing_measurement_variance;
  DKF_RETURN_IF_ERROR(set_smoothing(state.smoothing_factor));
  DKF_RETURN_IF_ERROR(mirror_->ImportFullState(state.mirror));
  if (smoother_.has_value()) {
    DKF_RETURN_IF_ERROR(
        smoother_->mutable_filter().ImportFullState(state.smoother_filter));
    smoother_->set_count(state.smoother_count);
  }
  energy_.RestoreTotals(state.energy_transmission, state.energy_compute,
                        state.energy_sensing);
  readings_ = state.readings;
  updates_sent_ = state.updates_sent;
  next_sequence_ = state.next_sequence;
  pending_ = state.pending;
  pending_since_ = state.pending_since;
  first_resync_sequence_ = state.first_resync_sequence;
  resync_attempts_ = state.resync_attempts;
  last_resync_tick_ = state.last_resync_tick;
  last_send_tick_ = state.last_send_tick;
  faults_ = state.faults;
  // The mirror FullState above already carries the adapted effective Q/R;
  // only the servo's own statistics need restoring.
  DKF_RETURN_IF_ERROR(adapter_.ImportState(state.adapt));
  return Status::OK();
}

void SourceNode::HandleAck(uint32_t sequence, int64_t tick) {
  // Only a resync from the current episode proves the pair re-locked: a
  // late-ACKed *measurement* was delivered after its tick and therefore
  // stale-rejected by the server (the mirror was never corrected for it
  // either — rejecting it is what keeps the pair consistent).
  if (pending_ && first_resync_sequence_ != 0 &&
      sequence >= first_resync_sequence_) {
    Heal(tick);
  }
}

void SourceNode::Heal(int64_t tick) {
  faults_.max_recovery_ticks =
      std::max(faults_.max_recovery_ticks, tick - pending_since_);
  DKF_TRACE(obs_sink_, tick, options_.source_id, TraceEventKind::kHeal,
            TraceActor::kSource, static_cast<double>(tick - pending_since_));
  pending_ = false;
  first_resync_sequence_ = 0;
  resync_attempts_ = 0;
}

Status SourceNode::MaybeSendResync(int64_t tick, Channel* channel,
                                   SourceStepResult* result) {
  const bool due =
      resync_attempts_ < options_.protocol.resync_burst_retries ||
      tick - last_resync_tick_ >= options_.protocol.resync_retry_backoff;
  if (!due) return Status::OK();

  auto snapshot_or = mirror_->ExportState();
  if (!snapshot_or.ok()) return snapshot_or.status();
  Predictor::Snapshot snapshot = std::move(snapshot_or).value();

  Message message;
  message.type = MessageType::kResync;
  message.source_id = options_.source_id;
  message.tick = tick;
  message.sequence = next_sequence_++;
  message.resync_state = std::move(snapshot.state);
  message.resync_covariance = std::move(snapshot.covariance);
  message.resync_step = snapshot.step;
  // Adaptive links re-lock the noise servo along with the filter: the
  // resync carries the mirror's adapter state (empty when adaptation is
  // off, leaving the wire format byte-identical).
  if (adapter_.enabled()) message.resync_adapt = adapter_.ExportState();
  if (first_resync_sequence_ == 0) first_resync_sequence_ = message.sequence;

  energy_.ChargeTransmission(message.SizeBytes());
  ++faults_.resyncs_sent;
  ++resync_attempts_;
  last_resync_tick_ = tick;
  last_send_tick_ = tick;
  result->resync_sent = true;
  DKF_TRACE(obs_sink_, tick, options_.source_id, TraceEventKind::kResyncSent,
            TraceActor::kSource, static_cast<double>(resync_attempts_), 0.0,
            message.sequence);

  if (channel == nullptr) {
    // No channel means no server to diverge from; treat as healed.
    Heal(tick);
    return Status::OK();
  }
  auto ack_or = channel->Send(message);
  if (!ack_or.ok()) return ack_or.status();
  if (ack_or.value() == SendAck::kAcked) Heal(tick);
  // kDropped: definitely lost, retry per policy. kNoAck: may yet be
  // delivered (delay) — a deferred ACK heals the episode when it lands.
  return Status::OK();
}

Result<SourceStepResult> SourceNode::ProcessReading(int64_t tick,
                                                    const Vector& raw,
                                                    Channel* channel) {
  if (raw.size() != mirror_->dim()) {
    return Status::InvalidArgument(
        StrFormat("reading width %zu, model expects %zu", raw.size(),
                  mirror_->dim()));
  }
  // Deferred ACKs from delayed deliveries surface at the start of the
  // tick (the tick loop drained the in-flight queue before the sources
  // run).
  if (channel != nullptr && channel->has_deferred_acks()) {
    for (uint32_t sequence : channel->TakeAcks(options_.source_id)) {
      HandleAck(sequence, tick);
    }
  }

  energy_.ChargeReading();
  ++readings_;

  SourceStepResult result;
  result.protocol_value = raw;
  if (smoother_.has_value()) {
    auto smoothed_or = smoother_->Push(raw[0]);
    if (!smoothed_or.ok()) return smoothed_or.status();
    result.protocol_value = Vector{smoothed_or.value()};
    energy_.ChargeFilterStep();  // KF_c costs a filter step too
  }

  // Mirror prediction for this tick; the suppression decision is made
  // entirely at the source.
  DKF_RETURN_IF_ERROR(mirror_->Tick());
  energy_.ChargeFilterStep();

  // Pending resync: suppression is frozen (correcting the mirror while
  // the server's state is unknown would make the divergence permanent);
  // the mirror coasts and the node retransmits its snapshot until one is
  // ACKed. An immediate ACK re-enters the healthy path this same tick.
  if (pending_) {
    DKF_RETURN_IF_ERROR(MaybeSendResync(tick, channel, &result));
  }

  if (!pending_) {
    const Vector predicted = mirror_->Predicted();
    // The deviation is computed once and reused for both the decision and
    // the trace event, so instrumentation can never change the decision:
    // `deviation > bound` is exactly ShouldTransmit's test. In the
    // per-component case the decision stays with the dedicated rule and
    // the event reports the max delta-normalized component ratio (whose
    // `> 1` test agrees with the rule), computed only when wired.
    double deviation = 0.0;
    double bound = 1.0;
    if (options_.component_deltas.empty()) {
      deviation =
          Deviation(predicted, result.protocol_value, options_.norm);
      bound = options_.delta;
      result.sent = deviation > bound;
    } else {
      result.sent = ShouldTransmitPerComponent(
          predicted, result.protocol_value, Vector(options_.component_deltas));
      if (obs_sink_ != nullptr) {
        for (size_t i = 0; i < options_.component_deltas.size(); ++i) {
          deviation = std::max(
              deviation, std::abs(predicted[i] - result.protocol_value[i]) /
                             options_.component_deltas[i]);
        }
      }
    }

    if (result.sent) {
      Message message;
      message.type = MessageType::kMeasurement;
      message.source_id = options_.source_id;
      message.tick = tick;
      message.payload = result.protocol_value;
      message.sequence = next_sequence_++;
      energy_.ChargeTransmission(message.SizeBytes());
      ++updates_sent_;
      last_send_tick_ = tick;
      DKF_TRACE(obs_sink_, tick, options_.source_id,
                TraceEventKind::kTransmit, TraceActor::kSource, deviation,
                bound, message.sequence);

      SendAck ack = SendAck::kAcked;
      if (channel != nullptr) {
        auto ack_or = channel->Send(message);
        if (!ack_or.ok()) return ack_or.status();
        ack = ack_or.value();
      }
      switch (ack) {
        case SendAck::kAcked: {
          // Correct the mirror only on confirmed delivery: the mirror
          // must track the *server's* state. An ACKed correction is also
          // the only thing the noise servo may learn from — the server
          // sees exactly the same value, so both adapters move in
          // lockstep (docs/adaptive.md).
          result.delivered = true;
          KalmanFilter* adaptable =
              adapter_.enabled() ? mirror_->AdaptableFilter() : nullptr;
          NoiseAdapter::Decision adapt_decision;
          if (adaptable != nullptr) {
            auto decision_or =
                adapter_.OnCorrection(*adaptable, result.protocol_value, tick);
            if (!decision_or.ok()) return decision_or.status();
            adapt_decision = decision_or.value();
          }
          DKF_RETURN_IF_ERROR(mirror_->Update(result.protocol_value));
          if (adaptable != nullptr) {
            DKF_RETURN_IF_ERROR(adapter_.InstallInto(adaptable));
            if (adapt_decision.frozen) {
              DKF_TRACE(obs_sink_, tick, options_.source_id,
                        TraceEventKind::kAdaptFreeze, TraceActor::kSource,
                        adapter_.r_scale(), adapter_.q_scale(),
                        message.sequence);
            } else if (adapt_decision.adapted) {
              DKF_TRACE(obs_sink_, tick, options_.source_id,
                        TraceEventKind::kNoiseAdapt, TraceActor::kSource,
                        adapter_.r_scale(), adapter_.q_scale(),
                        message.sequence);
            }
          }
          break;
        }
        case SendAck::kDropped:
          // Reliable-ACK loss (legacy): the server never saw it, the
          // mirror stays uncorrected, the next tick's deviation test
          // retries automatically.
          DKF_TRACE(obs_sink_, tick, options_.source_id,
                    TraceEventKind::kSendDropped, TraceActor::kSource, 0.0,
                    0.0, message.sequence);
          break;
        case SendAck::kNoAck:
          // The divergence-inducing case: the server may or may not have
          // applied the measurement. Freeze suppression and start the
          // resync episode — the first snapshot goes out right now.
          result.ack_ambiguous = true;
          ++faults_.ambiguous_acks;
          ++faults_.divergence_events;
          DKF_TRACE(obs_sink_, tick, options_.source_id,
                    TraceEventKind::kDivergence, TraceActor::kSource, 0.0,
                    0.0, message.sequence);
          pending_ = true;
          pending_since_ = tick;
          first_resync_sequence_ = 0;
          resync_attempts_ = 0;
          DKF_RETURN_IF_ERROR(MaybeSendResync(tick, channel, &result));
          break;
      }
    } else {
      // Suppressed: the mirror's prediction still satisfies the precision
      // constraint. Heartbeat ticks are suppressed ticks too — the beacon
      // carries no measurement.
      DKF_TRACE(obs_sink_, tick, options_.source_id,
                TraceEventKind::kSuppress, TraceActor::kSource, deviation,
                bound);
      if (options_.protocol.heartbeat_interval > 0 &&
          tick - last_send_tick_ >= options_.protocol.heartbeat_interval) {
        // Healthy but silent: tell the server the prediction still holds.
        // Heartbeats correct nothing, so their ACK (or its loss) carries
        // no divergence risk and is ignored.
        Message beacon;
        beacon.type = MessageType::kHeartbeat;
        beacon.source_id = options_.source_id;
        beacon.tick = tick;
        beacon.sequence = next_sequence_++;
        energy_.ChargeTransmission(beacon.SizeBytes());
        ++faults_.heartbeats_sent;
        last_send_tick_ = tick;
        result.heartbeat_sent = true;
        DKF_TRACE(obs_sink_, tick, options_.source_id,
                  TraceEventKind::kHeartbeatSent, TraceActor::kSource, 0.0,
                  0.0, beacon.sequence);
        if (channel != nullptr) {
          auto ack_or = channel->Send(beacon);
          if (!ack_or.ok()) return ack_or.status();
        }
      }
    }
  }

  if (pending_) ++faults_.ticks_diverged;
  result.pending_resync = pending_;
  return result;
}

}  // namespace dkf
