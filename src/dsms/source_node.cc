#include "dsms/source_node.h"

#include "common/string_util.h"

namespace dkf {

Result<SourceNode> SourceNode::Create(const SourceNodeOptions& options) {
  if (!options.component_deltas.empty()) {
    if (options.component_deltas.size() != options.model.measurement_dim) {
      return Status::InvalidArgument(
          StrFormat("%zu component deltas for a %zu-wide model",
                    options.component_deltas.size(),
                    options.model.measurement_dim));
    }
    for (double delta : options.component_deltas) {
      if (delta <= 0.0) {
        return Status::InvalidArgument("component deltas must be positive");
      }
    }
  } else if (options.delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  auto predictor_or = KalmanPredictor::Create(options.model);
  if (!predictor_or.ok()) return predictor_or.status();

  std::optional<KalmanSmoother> smoother;
  if (options.smoothing_factor.has_value()) {
    if (options.model.measurement_dim != 1) {
      return Status::InvalidArgument(
          "KF_c smoothing is only supported for width-1 models");
    }
    auto smoother_or =
        KalmanSmoother::Create(*options.smoothing_factor,
                               options.smoothing_measurement_variance);
    if (!smoother_or.ok()) return smoother_or.status();
    smoother = std::move(smoother_or).value();
  }
  return SourceNode(options, predictor_or.value().Clone(),
                    std::move(smoother));
}

Status SourceNode::set_delta(double delta) {
  if (delta <= 0.0) {
    return Status::InvalidArgument("delta must be positive");
  }
  options_.delta = delta;
  return Status::OK();
}

Status SourceNode::set_smoothing(std::optional<double> smoothing_factor) {
  if (!smoothing_factor.has_value()) {
    smoother_.reset();
    options_.smoothing_factor.reset();
    return Status::OK();
  }
  if (mirror_->dim() != 1) {
    return Status::InvalidArgument(
        "KF_c smoothing is only supported for width-1 models");
  }
  auto smoother_or = KalmanSmoother::Create(
      *smoothing_factor, options_.smoothing_measurement_variance);
  if (!smoother_or.ok()) return smoother_or.status();
  smoother_ = std::move(smoother_or).value();
  options_.smoothing_factor = smoothing_factor;
  return Status::OK();
}

Result<SourceStepResult> SourceNode::ProcessReading(int64_t tick,
                                                    const Vector& raw,
                                                    Channel* channel) {
  if (raw.size() != mirror_->dim()) {
    return Status::InvalidArgument(
        StrFormat("reading width %zu, model expects %zu", raw.size(),
                  mirror_->dim()));
  }
  energy_.ChargeReading();
  ++readings_;

  SourceStepResult result;
  result.protocol_value = raw;
  if (smoother_.has_value()) {
    auto smoothed_or = smoother_->Push(raw[0]);
    if (!smoothed_or.ok()) return smoothed_or.status();
    result.protocol_value = Vector{smoothed_or.value()};
    energy_.ChargeFilterStep();  // KF_c costs a filter step too
  }

  // Mirror prediction for this tick; the suppression decision is made
  // entirely at the source.
  DKF_RETURN_IF_ERROR(mirror_->Tick());
  energy_.ChargeFilterStep();
  const Vector predicted = mirror_->Predicted();
  if (options_.component_deltas.empty()) {
    result.sent = ShouldTransmit(predicted, result.protocol_value,
                                 options_.delta, options_.norm);
  } else {
    result.sent = ShouldTransmitPerComponent(
        predicted, result.protocol_value, Vector(options_.component_deltas));
  }

  if (result.sent) {
    Message message;
    message.type = MessageType::kMeasurement;
    message.source_id = options_.source_id;
    message.tick = tick;
    message.payload = result.protocol_value;
    energy_.ChargeTransmission(message.SizeBytes());
    ++updates_sent_;

    result.delivered = true;
    if (channel != nullptr) {
      auto delivered_or = channel->Send(message);
      if (!delivered_or.ok()) return delivered_or.status();
      result.delivered = delivered_or.value();
    }
    // Correct the mirror only on confirmed delivery: the mirror must
    // track the *server's* state, and the server never saw a dropped
    // message. The next tick's deviation test retries automatically.
    if (result.delivered) {
      DKF_RETURN_IF_ERROR(mirror_->Update(result.protocol_value));
    }
  }
  return result;
}

}  // namespace dkf
