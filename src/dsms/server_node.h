#ifndef DKF_DSMS_SERVER_NODE_H_
#define DKF_DSMS_SERVER_NODE_H_

#include <map>
#include <memory>
#include <optional>

#include "common/result.h"
#include "core/predictor.h"
#include "dsms/message.h"
#include "dsms/protocol.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace_sink.h"

namespace dkf {

/// The central server: one predictor KF_s per registered source, advanced
/// every tick and corrected only when an update message arrives. Continuous
/// queries are answered from the predictors without contacting the sources.
///
/// The hardened ingress (docs/protocol.md §6) validates every sequenced
/// message before it can touch a filter: the wire checksum catches
/// corruption, per-source sequence numbers catch duplicates and reorderings,
/// and a freshness check rejects late measurements (the mirror was never
/// corrected for those, so applying them would *cause* divergence).
/// Rejections are protocol events, not errors — they are counted and the
/// message is discarded. A kResync message overwrites the predictor with
/// the mirror's snapshot and replays the ticks the snapshot missed in
/// flight, re-locking the pair bit-exactly by construction.
class ServerNode {
 public:
  ServerNode() = default;
  explicit ServerNode(const ProtocolOptions& protocol)
      : protocol_(protocol) {}
  ServerNode(ServerNode&&) = default;
  ServerNode& operator=(ServerNode&&) = default;

  /// Installs a predictor for `source_id` built from `model`. Errors when
  /// the id is already registered.
  Status RegisterSource(int source_id, const StateModel& model);

  /// Removes a source's predictor.
  Status UnregisterSource(int source_id);

  /// Advances every source predictor by one tick. Call exactly once per
  /// simulation tick, before delivering that tick's messages.
  Status TickAll();

  /// Advances exactly one source's predictor, without touching the tick
  /// clock or degraded-link accounting. Used by the batched fleet engine
  /// when it spills a lane mid-tick: the freshly re-registered predictor
  /// must catch up to the tick that TickAll (spilled sources only) already
  /// applied to everyone else.
  Status TickSource(int source_id);

  /// Applies an update, resync, heartbeat, or model-switch message.
  Status OnMessage(const Message& message);

  /// The server's current answer for `source_id`'s stream value.
  Result<Vector> Answer(int source_id) const;

  /// An answer plus its uncertainty. The covariance is the predictor's
  /// state covariance projected through the measurement map; it grows
  /// during suppression runs (the longer the source stays silent, the
  /// wider the confidence band) and collapses on each update. Empty for
  /// point predictors. `degraded` is set — and the covariance further
  /// inflated — when the link is overdue (nothing valid heard within the
  /// staleness budget) or recovering from a resync this very tick; a
  /// degraded answer carries no delta guarantee.
  struct ConfidentAnswer {
    Vector value;
    std::optional<Matrix> covariance;
    bool degraded = false;
  };
  Result<ConfidentAnswer> AnswerWithConfidence(int source_id) const;

  /// Whether answers for `source_id` are currently served degraded.
  Result<bool> degraded(int source_id) const;

  /// Tick index (0-based) of the last applied correction — measurement or
  /// resync — for `source_id`; -1 before the first. Lets harnesses tell
  /// corrected answers apart from pure predictions.
  Result<int64_t> last_update_tick(int source_id) const;

  /// Server-side protocol fault counters (rejections, resyncs applied,
  /// degraded ticks).
  const ProtocolFaultStats& fault_stats() const { return faults_; }

  /// Number of TickAll calls so far.
  int64_t ticks() const { return ticks_done_; }

  /// The predictor backing a source (for tests).
  Result<const Predictor*> predictor(int source_id) const;

  /// The server-side noise adaptation servo for a source (for tests and
  /// gauges); disabled unless ProtocolOptions::adaptive.enabled.
  Result<const NoiseAdapter*> noise_adapter(int source_id) const;

  size_t num_sources() const { return predictors_.size(); }

  /// Wires an observability sink: every ingress outcome (update applied,
  /// resync applied, heartbeat, corrupt/stale rejection) and every tick
  /// served degraded becomes a trace event; server-side filters forward
  /// their fast-path transitions as server_filter events. Applies to
  /// already-registered sources and to later registrations. Pass nullptr
  /// to unwire.
  void set_trace_sink(TraceSink* sink);

  /// Checkpoint hooks (src/checkpoint/, docs/checkpoint.md): one source's
  /// KF_s full state plus its link ingress bookkeeping.
  struct LinkSnapshot {
    uint32_t last_sequence = 0;
    int64_t last_valid_tick = -1;
    int64_t last_resync_tick = -2;
    int64_t last_update_tick = -1;
    KalmanFilter::FullState predictor;
    /// NoiseAdapter::ExportState() payload; empty when adaptation is off
    /// (snapshot v4, docs/checkpoint.md).
    Vector adapt;
  };

  Result<LinkSnapshot> ExportLink(int source_id) const;

  /// Restores a source registered with the same model. Errors when the
  /// source is unknown or dimensions disagree.
  Status RestoreLink(int source_id, const LinkSnapshot& snapshot);

  /// Rewinds/advances the tick counter to a checkpoint's value. Call
  /// before RegisterSource so the per-link staleness clocks initialize
  /// consistently.
  void RestoreClock(int64_t ticks_done) { ticks_done_ = ticks_done; }

  /// Overwrites the server-wide fault counters with a checkpoint's
  /// aggregate.
  void RestoreFaultStats(const ProtocolFaultStats& faults) {
    faults_ = faults;
  }

 private:
  /// Per-link ingress state for the hardened protocol.
  struct LinkState {
    uint32_t last_sequence = 0;
    /// Tick of the last validated arrival (measurement, resync, or
    /// heartbeat); -1 before the first.
    int64_t last_valid_tick = -1;
    /// Tick at which the last resync was applied; -2 = never.
    int64_t last_resync_tick = -2;
    /// Tick of the last applied correction; -1 = never.
    int64_t last_update_tick = -1;
    /// Server half of the Q/R servo; adapts on exactly the corrections
    /// it applies, mirroring the source (docs/adaptive.md).
    NoiseAdapter adapter;
  };

  bool IsDegraded(const LinkState& link) const;
  /// How many ticks past the staleness budget the link is (>= 1 when
  /// degraded; drives the covariance inflation).
  int64_t OverdueTicks(const LinkState& link) const;

  ProtocolOptions protocol_;
  std::map<int, std::unique_ptr<Predictor>> predictors_;
  std::map<int, LinkState> links_;
  ProtocolFaultStats faults_;
  int64_t ticks_done_ = 0;
  TraceSink* obs_sink_ = nullptr;
};

}  // namespace dkf

#endif  // DKF_DSMS_SERVER_NODE_H_
