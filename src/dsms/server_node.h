#ifndef DKF_DSMS_SERVER_NODE_H_
#define DKF_DSMS_SERVER_NODE_H_

#include <map>
#include <memory>
#include <optional>

#include "common/result.h"
#include "core/predictor.h"
#include "dsms/message.h"
#include "models/state_model.h"

namespace dkf {

/// The central server: one predictor KF_s per registered source, advanced
/// every tick and corrected only when an update message arrives. Continuous
/// queries are answered from the predictors without contacting the sources.
class ServerNode {
 public:
  ServerNode() = default;
  ServerNode(ServerNode&&) = default;
  ServerNode& operator=(ServerNode&&) = default;

  /// Installs a predictor for `source_id` built from `model`. Errors when
  /// the id is already registered.
  Status RegisterSource(int source_id, const StateModel& model);

  /// Removes a source's predictor.
  Status UnregisterSource(int source_id);

  /// Advances every source predictor by one tick. Call exactly once per
  /// simulation tick, before delivering that tick's messages.
  Status TickAll();

  /// Applies an update or model-switch message.
  Status OnMessage(const Message& message);

  /// The server's current answer for `source_id`'s stream value.
  Result<Vector> Answer(int source_id) const;

  /// An answer plus its uncertainty. The covariance is the predictor's
  /// state covariance projected through the measurement map; it grows
  /// during suppression runs (the longer the source stays silent, the
  /// wider the confidence band) and collapses on each update. Empty for
  /// point predictors.
  struct ConfidentAnswer {
    Vector value;
    std::optional<Matrix> covariance;
  };
  Result<ConfidentAnswer> AnswerWithConfidence(int source_id) const;

  /// The predictor backing a source (for tests).
  Result<const Predictor*> predictor(int source_id) const;

  size_t num_sources() const { return predictors_.size(); }

 private:
  std::map<int, std::unique_ptr<Predictor>> predictors_;
};

}  // namespace dkf

#endif  // DKF_DSMS_SERVER_NODE_H_
