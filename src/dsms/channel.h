#ifndef DKF_DSMS_CHANNEL_H_
#define DKF_DSMS_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "dsms/message.h"

namespace dkf {

/// Traffic counters for one direction of the simulated network.
struct ChannelStats {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t dropped = 0;
};

/// Lossiness configuration. The paper's testbed was a reliable LAN; the
/// drop knob models a flaky wireless uplink with link-layer delivery
/// feedback (802.15.4-style ACKs): the sender always learns whether the
/// frame got through, which is what lets the mirror filter stay
/// consistent with the server under loss.
struct ChannelOptions {
  double drop_probability = 0.0;
  uint64_t seed = 13;
  /// When true, each source's drop decisions come from an independent
  /// RNG stream derived from (seed, source_id) instead of one shared
  /// stream, so a source's drop sequence depends only on its own send
  /// history — not on how sends from other sources interleave. The
  /// sharded runtime forces this on: it is what makes lossy-channel
  /// results invariant under the shard count.
  bool per_source_rng = false;
};

/// The simulated uplink from the sensor field to the central server.
/// Delivery is instantaneous; a Send either reaches the sink or is
/// dropped (per `drop_probability`), and the caller is told which.
class Channel {
 public:
  using Sink = std::function<Status(const Message&)>;

  /// `sink` receives every delivered message (normally
  /// ServerNode::OnMessage).
  explicit Channel(Sink sink, const ChannelOptions& options = ChannelOptions())
      : sink_(std::move(sink)), options_(options), rng_(options.seed) {}

  /// Accounts for and attempts delivery of a message. Returns true when
  /// the message reached the sink, false when the channel dropped it —
  /// the link-layer ACK the source acts on. Transmission energy/bytes are
  /// charged either way (the bits went on air).
  Result<bool> Send(const Message& message);

  const ChannelStats& total() const { return total_; }

  /// Per-source counters (zero-initialized on first touch).
  const ChannelStats& for_source(int source_id) {
    return per_source_[source_id];
  }

 private:
  /// The drop-decision RNG for a message from `source_id`.
  Rng& DropRng(int source_id);

  Sink sink_;
  ChannelOptions options_;
  Rng rng_;
  ChannelStats total_;
  std::map<int, ChannelStats> per_source_;
  std::map<int, Rng> per_source_rng_;
};

}  // namespace dkf

#endif  // DKF_DSMS_CHANNEL_H_
