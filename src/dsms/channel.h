#ifndef DKF_DSMS_CHANNEL_H_
#define DKF_DSMS_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "dsms/fault_model.h"
#include "dsms/message.h"
#include "obs/trace_sink.h"

namespace dkf {

/// Traffic counters for one direction of the simulated network.
struct ChannelStats {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t dropped = 0;
  /// Messages whose payload was corrupted in flight (delivered, but the
  /// server's checksum rejects them).
  int64_t corrupted = 0;
  /// Messages that entered the in-flight queue (delivery delayed by at
  /// least one tick).
  int64_t delayed = 0;
  /// Delivered messages whose ACK was lost on the way back.
  int64_t ack_lost = 0;
  /// Messages lost to a scheduled outage window (also counted in
  /// `dropped`).
  int64_t outage_dropped = 0;
};

/// Lossiness configuration. The paper's testbed was a reliable LAN; the
/// drop knob models a flaky wireless uplink with link-layer delivery
/// feedback (802.15.4-style ACKs): the sender always learns whether the
/// frame got through, which is what lets the mirror filter stay
/// consistent with the server under loss. The `fault` model layers the
/// imperfect-link effects that break that guarantee — bursty loss,
/// delay/reordering, outages, lost ACKs, corruption — on top.
struct ChannelOptions {
  double drop_probability = 0.0;
  uint64_t seed = 13;
  /// When true, each source's drop decisions come from an independent
  /// RNG stream derived from (seed, source_id) instead of one shared
  /// stream, so a source's drop sequence depends only on its own send
  /// history — not on how sends from other sources interleave. The
  /// sharded runtime forces this on: it is what makes lossy-channel
  /// results invariant under the shard count.
  bool per_source_rng = false;
  /// Fault injection. Default-constructed = no faults, and the channel's
  /// behavior (including its RNG draw sequence) is identical to the
  /// pre-fault-layer code.
  FaultModel fault;
};

/// What the sender learns from a Send — the link-layer ACK the source
/// acts on.
enum class SendAck {
  /// Delivered, ACK received: the server saw the message.
  kAcked,
  /// Definitely lost (reliable-ACK loss, the legacy semantics): the
  /// server did NOT see the message, and the sender knows it.
  kDropped,
  /// Ambiguous: the message may or may not have reached (or may still
  /// reach) the server — lost ACK, in-flight delay, outage, or
  /// corruption. The sender must assume the mirror may have diverged.
  kNoAck,
};

/// The simulated uplink from the sensor field to the central server.
/// Without a fault model, delivery is instantaneous and a Send either
/// reaches the sink or is dropped (per `drop_probability`), with the
/// caller told which. With one, messages can additionally be delayed
/// (the tick loop drains the in-flight queue via BeginTick), lost in
/// outage windows or loss bursts, corrupted, or delivered without an
/// ACK.
class Channel {
 public:
  using Sink = std::function<Status(const Message&)>;

  /// `sink` receives every delivered message (normally
  /// ServerNode::OnMessage).
  explicit Channel(Sink sink, const ChannelOptions& options = ChannelOptions())
      : sink_(std::move(sink)), options_(options), rng_(options.seed) {}

  /// Accounts for and attempts delivery of a message, stamping the wire
  /// checksum first. Transmission energy/bytes are charged in every case
  /// (the bits went on air).
  Result<SendAck> Send(const Message& message);

  /// Delivers every in-flight message due at or before `tick`. The tick
  /// loop calls this once per tick, after the server has ticked and
  /// before the sources process their readings.
  Status BeginTick(int64_t tick);

  /// True when a delayed delivery has produced ACKs no sender has
  /// collected yet — the cheap guard before TakeAcks.
  bool has_deferred_acks() const { return !deferred_acks_.empty(); }

  /// Drains the ACKs (by sequence number) that arrived for `source_id`
  /// through delayed deliveries since the last call.
  std::vector<uint32_t> TakeAcks(int source_id);

  const ChannelStats& total() const { return total_; }

  /// Per-source counters. Never inserts: unknown ids observe zeros.
  const ChannelStats& for_source(int source_id) const;

  /// Messages currently sitting in the in-flight (delay) queue.
  size_t in_flight() const { return in_flight_.size(); }

  /// True while the channel still holds state for `source_id`: an
  /// in-flight (delayed) message, or a deferred ACK the sender has not
  /// collected yet. The batched fleet engine (src/fleet/) uses this as an
  /// absorb guard — a source with channel residue can still be mutated
  /// asymmetrically by a delivery, so it must stay on the per-source path.
  bool has_residual_for(int source_id) const;

  /// Appends every source id with channel residue (possibly with
  /// duplicates) to `out`: the bulk form of has_residual_for, so a scan
  /// over many sources pays for the in-flight queue once, not per id.
  void AppendResidualSources(std::vector<int>* out) const;

  /// Wires an observability sink: every fault the channel injects (drop,
  /// outage, corruption, delay, ACK loss) is emitted as a trace event
  /// stamped with the message's send tick and source. Pass nullptr to
  /// unwire.
  void set_trace_sink(TraceSink* sink) { obs_sink_ = sink; }

  /// Checkpoint hooks (src/checkpoint/, docs/checkpoint.md). The channel's
  /// state is per-source except for the shared RNG used when
  /// per_source_rng is off; both halves have export/import pairs so a
  /// snapshot can be fanned across any shard count.
  struct InFlightEntry {
    int64_t due = 0;
    bool ack_lost = false;
    bool corrupted = false;
    Message message;
  };

  struct SourceCheckpoint {
    ChannelStats stats;
    /// The (seed, source_id)-derived fault stream, present once the source
    /// has sent under per_source_rng.
    bool has_rng = false;
    Rng::State rng;
    /// Gilbert–Elliott chain state, present once the chain has stepped.
    bool has_ge_state = false;
    bool ge_bad = false;
    std::vector<InFlightEntry> in_flight;
    std::vector<uint32_t> deferred_acks;
  };

  SourceCheckpoint ExportSourceCheckpoint(int source_id) const;

  /// Stages one source's checkpoint into this channel. In-flight entries
  /// accumulate unsorted; call FinalizeRestore once after the last source.
  void ImportSourceCheckpoint(int source_id, const SourceCheckpoint& state);

  /// The shared fault stream (per_source_rng == false configurations).
  Rng::State ExportSharedRng() const { return rng_.SaveState(); }
  void ImportSharedRng(const Rng::State& state) { rng_.LoadState(state); }

  /// Orders the staged in-flight queue canonically — ascending (send tick,
  /// source id, sequence), which reproduces the original append order —
  /// and rebuilds the aggregate counters from the per-source ones.
  void FinalizeRestore();

 private:
  /// One delayed message waiting for its delivery tick.
  struct InFlight {
    int64_t due = 0;
    bool ack_lost = false;
    bool corrupted = false;
    Message message;
  };

  /// The fault-decision RNG for a message from `source_id`.
  Rng& DropRng(int source_id);

  /// Flips bits in the framed message so the stamped checksum no longer
  /// matches (in-flight payload corruption).
  void Corrupt(Message* framed, Rng& rng);

  Status Deliver(const Message& message);

  Sink sink_;
  ChannelOptions options_;
  TraceSink* obs_sink_ = nullptr;
  Rng rng_;
  ChannelStats total_;
  std::map<int, ChannelStats> per_source_;
  std::map<int, Rng> per_source_rng_;
  /// Gilbert–Elliott chain state per source (true = bad/bursty state).
  std::map<int, bool> ge_bad_;
  std::vector<InFlight> in_flight_;
  std::map<int, std::vector<uint32_t>> deferred_acks_;
};

}  // namespace dkf

#endif  // DKF_DSMS_CHANNEL_H_
