#ifndef DKF_DSMS_MESSAGE_H_
#define DKF_DSMS_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "linalg/matrix.h"

namespace dkf {

/// Kinds of source->server traffic in the simulated DSMS.
enum class MessageType {
  /// A measurement update: the reading the mirror filter failed to predict
  /// within delta.
  kMeasurement,
  /// A model-switch notification (extension): tells the server to swap in
  /// bank model `model_index`, primed with `payload`.
  kModelSwitch,
  /// A full-state resync: the mirror's state vector, covariance, and step
  /// counter. Sent after an ambiguous ACK; applying it re-locks KF_s to
  /// KF_m by construction (docs/protocol.md §6).
  kResync,
  /// A liveness beacon from a silent-but-healthy source, letting the
  /// server tell suppression apart from link death.
  kHeartbeat,
};

/// One unit of network traffic. The byte accounting mirrors a compact wire
/// format rather than any in-memory layout: a fixed header plus 8 bytes
/// per payload double.
struct Message {
  MessageType type = MessageType::kMeasurement;
  int source_id = 0;
  int64_t tick = 0;
  Vector payload;
  size_t model_index = 0;  ///< only meaningful for kModelSwitch

  /// Per-source sequence number, strictly increasing over every send
  /// attempt (including retries and heartbeats). 0 means "unsequenced":
  /// a locally delivered message that bypasses the server's
  /// stale/duplicate rejection — the legacy direct-OnMessage path.
  uint32_t sequence = 0;

  /// FNV-1a checksum over every other field, stamped by the channel at
  /// send time (link-layer framing). 0 means "unframed" and skips
  /// verification at the server.
  uint32_t checksum = 0;

  /// kResync payload: the mirror filter's full internal state.
  Vector resync_state;
  Matrix resync_covariance;
  int64_t resync_step = 0;

  /// kResync payload, adaptive links only: the mirror's NoiseAdapter
  /// state (filter/adaptive_noise.h), so a healed link re-locks the
  /// adaptation servo bit-exactly along with the filter. Empty on
  /// non-adaptive links — and an empty vector leaves SizeBytes and
  /// ComputeChecksum bit-identical to the pre-adaptive wire format.
  Vector resync_adapt;

  /// Fusion-group addressing (docs/fusion.md). A message with
  /// group_id >= 0 is fused traffic: `source_id` names the member and
  /// the server routes it to the group's fused posterior instead of a
  /// per-source link. -1 (the default) keeps plain traffic bit-identical
  /// on the wire: the group fields then contribute nothing to SizeBytes
  /// or ComputeChecksum.
  int group_id = -1;

  /// The group-posterior version the member's fused mirror tracked when
  /// it sent this message. Lets the server tell a correction tested
  /// against a fresh mirror from one sent across a partition (the member
  /// missed re-lock broadcasts). -1 when group_id < 0.
  int64_t group_version = -1;

  /// Serialized size: type/source/tick/sequence/checksum header
  /// (21 bytes; +12 for fused traffic's group id and posterior version)
  /// + the per-type payload: 8 bytes per payload double, + the
  /// model index for switch messages, + the full state dump for resyncs.
  /// Heartbeats are header-only.
  size_t SizeBytes() const {
    size_t bytes = 1 + 4 + 8 + 4 + 4;
    if (group_id >= 0) bytes += 4 + 8;  // group id + posterior version
    switch (type) {
      case MessageType::kMeasurement:
        bytes += payload.size() * sizeof(double);
        break;
      case MessageType::kModelSwitch:
        bytes += payload.size() * sizeof(double) + 4;
        break;
      case MessageType::kResync:
        bytes += resync_state.size() * sizeof(double) +
                 resync_covariance.rows() * resync_covariance.cols() *
                     sizeof(double) +
                 8 +  // the step counter
                 resync_adapt.size() * sizeof(double);
        break;
      case MessageType::kHeartbeat:
        break;
    }
    return bytes;
  }

  /// FNV-1a (32-bit) over every field except `checksum` itself. Used as
  /// the wire checksum: the channel stamps it before transmission and the
  /// server recomputes it, so fault-injected payload corruption is caught
  /// at the door instead of entering a filter.
  uint32_t ComputeChecksum() const {
    uint32_t hash = 2166136261u;
    auto mix_bytes = [&hash](const void* data, size_t size) {
      const unsigned char* bytes = static_cast<const unsigned char*>(data);
      for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 16777619u;
      }
    };
    auto mix_double = [&mix_bytes](double value) {
      uint64_t bits;
      std::memcpy(&bits, &value, sizeof(bits));
      mix_bytes(&bits, sizeof(bits));
    };
    const unsigned char type_byte = static_cast<unsigned char>(type);
    mix_bytes(&type_byte, 1);
    mix_bytes(&source_id, sizeof(source_id));
    mix_bytes(&tick, sizeof(tick));
    mix_bytes(&sequence, sizeof(sequence));
    mix_bytes(&model_index, sizeof(model_index));
    for (size_t i = 0; i < payload.size(); ++i) mix_double(payload[i]);
    mix_bytes(&resync_step, sizeof(resync_step));
    for (size_t i = 0; i < resync_state.size(); ++i) {
      mix_double(resync_state[i]);
    }
    for (size_t r = 0; r < resync_covariance.rows(); ++r) {
      for (size_t c = 0; c < resync_covariance.cols(); ++c) {
        mix_double(resync_covariance(r, c));
      }
    }
    for (size_t i = 0; i < resync_adapt.size(); ++i) {
      mix_double(resync_adapt[i]);
    }
    if (group_id >= 0) {
      mix_bytes(&group_id, sizeof(group_id));
      mix_bytes(&group_version, sizeof(group_version));
    }
    return hash;
  }
};

}  // namespace dkf

#endif  // DKF_DSMS_MESSAGE_H_
