#ifndef DKF_DSMS_MESSAGE_H_
#define DKF_DSMS_MESSAGE_H_

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.h"

namespace dkf {

/// Kinds of source->server traffic in the simulated DSMS.
enum class MessageType {
  /// A measurement update: the reading the mirror filter failed to predict
  /// within delta.
  kMeasurement,
  /// A model-switch notification (extension): tells the server to swap in
  /// bank model `model_index`, primed with `payload`.
  kModelSwitch,
};

/// One unit of network traffic. The byte accounting mirrors a compact wire
/// format rather than any in-memory layout: a fixed header plus 8 bytes
/// per payload double.
struct Message {
  MessageType type = MessageType::kMeasurement;
  int source_id = 0;
  int64_t tick = 0;
  Vector payload;
  size_t model_index = 0;  ///< only meaningful for kModelSwitch

  /// Serialized size: type/source/tick header (13 bytes) + payload, + the
  /// model index for switch messages.
  size_t SizeBytes() const {
    size_t bytes = 1 + 4 + 8 + payload.size() * sizeof(double);
    if (type == MessageType::kModelSwitch) bytes += 4;
    return bytes;
  }
};

}  // namespace dkf

#endif  // DKF_DSMS_MESSAGE_H_
