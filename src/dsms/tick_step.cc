#include "dsms/tick_step.h"

#include "common/string_util.h"

namespace dkf {

Status RunSourceTick(int64_t tick, ServerNode& server,
                     std::map<int, std::unique_ptr<SourceNode>>& sources,
                     const std::map<int, Vector>& readings,
                     Channel& channel) {
  // Resolve every reading up front so a malformed batch is rejected
  // before any filter state moves (a half-ticked link set would break
  // mirror consistency). The staging vector is thread-local so the per-tick
  // hot loop reuses its capacity instead of reallocating every call (each
  // shard worker drives its own sources on its own thread).
  static thread_local std::vector<std::pair<SourceNode*, const Vector*>> steps;
  steps.clear();
  steps.reserve(sources.size());
  for (auto& [id, node] : sources) {
    auto it = readings.find(id);
    if (it == readings.end()) {
      return Status::InvalidArgument(
          StrFormat("missing reading for source %d", id));
    }
    steps.emplace_back(node.get(), &it->second);
  }
  // Server-side prediction step for every stream, then the channel's
  // in-flight (delayed) messages due this tick, then the sources — so a
  // message delayed d ticks reaches the server after it has ticked past
  // the send tick, and its deferred ACK is visible to the sender when it
  // processes this tick's reading.
  DKF_RETURN_IF_ERROR(server.TickAll());
  DKF_RETURN_IF_ERROR(channel.BeginTick(tick));
  for (auto& [node, reading] : steps) {
    auto step_or = node->ProcessReading(tick, *reading, &channel);
    if (!step_or.ok()) return step_or.status();
  }
  return Status::OK();
}

Result<bool> InstallEffectiveConfig(
    const QueryRegistry& registry, double default_delta, int source_id,
    SourceNode& node, std::optional<double>& installed_smoothing) {
  auto delta_or = registry.EffectiveDelta(source_id);
  const double new_delta = delta_or.ok() ? delta_or.value() : default_delta;

  std::optional<double> new_smoothing;
  auto smoothing_or = registry.EffectiveSmoothing(source_id);
  if (smoothing_or.ok()) new_smoothing = smoothing_or.value();

  bool changed = false;
  if (node.delta() != new_delta) {
    DKF_RETURN_IF_ERROR(node.set_delta(new_delta));
    changed = true;
  }
  // Only touch (and thereby restart) the KF_c smoother when the factor
  // actually changed.
  if (installed_smoothing != new_smoothing) {
    DKF_RETURN_IF_ERROR(node.set_smoothing(new_smoothing));
    installed_smoothing = new_smoothing;
    changed = true;
  }
  return changed;
}

}  // namespace dkf
