#ifndef DKF_DSMS_SOURCE_NODE_H_
#define DKF_DSMS_SOURCE_NODE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/predictor.h"
#include "core/smoothing.h"
#include "core/suppression.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace_sink.h"

namespace dkf {

/// Configuration of one remote sensor node.
struct SourceNodeOptions {
  int source_id = 0;

  /// The stream model shared with the server (defines KF_m / KF_s).
  StateModel model;

  /// Precision width delta_i installed by the query layer.
  double delta = 1.0;
  DeviationNorm norm = DeviationNorm::kMaxAbs;

  /// When non-empty, overrides delta/norm with per-attribute widths
  /// (transmit when ANY attribute deviates beyond its own width). Must
  /// match the model's measurement width.
  std::vector<double> component_deltas;

  /// When set, readings pass through a KF_c smoothing filter with this
  /// factor F before reaching the mirror (§4.3). Only valid for width-1
  /// models.
  std::optional<double> smoothing_factor;
  /// Measurement variance assumed by KF_c.
  double smoothing_measurement_variance = 1.0;

  EnergyModelOptions energy;

  /// Hardened-protocol knobs (heartbeats, resync retry policy). The
  /// defaults keep legacy behavior on reliable-ACK channels.
  ProtocolOptions protocol;
};

/// Result of processing one reading at the source.
struct SourceStepResult {
  /// A measurement transmission was attempted.
  bool sent = false;
  /// The transmission reached the server AND its ACK came back (always
  /// equals `sent` on a loss-free channel). On a definite drop the mirror
  /// is NOT corrected — keeping it consistent with the server — and the
  /// suppression rule naturally retries on the next tick while the
  /// deviation persists.
  bool delivered = false;
  /// The measurement's ACK was ambiguous (lost ACK, delay, outage, or
  /// corruption): the node entered the pending-resync state this tick.
  bool ack_ambiguous = false;
  /// A full-state resync was transmitted this tick.
  bool resync_sent = false;
  /// A heartbeat was transmitted this tick.
  bool heartbeat_sent = false;
  /// The node ended the tick still pending resync (suppression frozen,
  /// the mirror coasting).
  bool pending_resync = false;
  /// The value that entered the protocol (smoothed if KF_c is active).
  Vector protocol_value;
};

/// A remote sensor node: owns the mirror predictor KF_m (and optionally
/// the smoothing filter KF_c), evaluates the suppression rule locally, and
/// transmits a measurement message only when the server-side prediction
/// would violate the precision constraint.
///
/// Under the hardened protocol the node also runs the source half of the
/// divergence state machine (docs/protocol.md §6): every send carries a
/// sequence number; an ambiguous ACK on a measurement freezes suppression
/// and switches the node to retransmitting a full-state resync (burst,
/// then backoff) until one is ACKed; while healthy but silent it emits
/// heartbeats so the server can bound undetected divergence time.
class SourceNode {
 public:
  static Result<SourceNode> Create(const SourceNodeOptions& options);

  SourceNode(SourceNode&&) = default;
  SourceNode& operator=(SourceNode&&) = default;

  /// Processes the reading for tick `tick`, possibly transmitting through
  /// `channel`. Must be called once per tick, after the server has ticked
  /// and the channel's in-flight queue was drained (Channel::BeginTick).
  Result<SourceStepResult> ProcessReading(int64_t tick, const Vector& raw,
                                          Channel* channel);

  /// Reconfigures the precision width mid-stream (a new/removed query
  /// changed the source's effective delta). Safe at any tick: delta only
  /// gates the suppression test; neither filter's state depends on it, so
  /// mirror consistency is untouched.
  Status set_delta(double delta);

  /// Reconfigures the KF_c smoothing stage mid-stream. Passing nullopt
  /// disables smoothing. The smoother restarts from scratch (its state is
  /// pre-protocol, so this too cannot break the mirror), which costs a
  /// short re-convergence transient on the smoothed values.
  Status set_smoothing(std::optional<double> smoothing_factor);

  double delta() const { return options_.delta; }

  const EnergyAccount& energy() const { return energy_; }
  int64_t readings() const { return readings_; }
  int64_t updates_sent() const { return updates_sent_; }
  int source_id() const { return options_.source_id; }

  /// True while the node is in the pending-resync state (the mirror may
  /// have diverged from KF_s; suppression is frozen).
  bool resync_pending() const { return pending_; }

  /// Source-side protocol fault counters.
  const ProtocolFaultStats& fault_stats() const { return faults_; }

  /// The mirror predictor (for the mirror-consistency tests).
  const Predictor& mirror() const { return *mirror_; }

  /// The mirror-side noise adaptation servo (disabled unless
  /// ProtocolOptions::adaptive.enabled and the predictor exposes an
  /// adaptable filter). Gauges, fleet re-absorption gating, and the
  /// mirror-consistency tests read it; only ProcessReading mutates it.
  const NoiseAdapter& noise_adapter() const { return adapter_; }

  /// Everything that distinguishes this node from a freshly created one
  /// with the same model: filters (KF_m and, when active, KF_c), installed
  /// reconfig state, energy totals, wire sequence counter, the divergence
  /// state machine, and the fault counters. Export/Import round-trips the
  /// node bit-exactly across a checkpoint (docs/checkpoint.md).
  struct CheckpointState {
    double delta = 1.0;
    std::optional<double> smoothing_factor;
    double smoothing_measurement_variance = 1.0;
    KalmanFilter::FullState mirror;
    KalmanFilter::FullState smoother_filter;  // valid iff smoothing_factor
    int64_t smoother_count = 0;
    double energy_transmission = 0.0;
    double energy_compute = 0.0;
    double energy_sensing = 0.0;
    int64_t readings = 0;
    int64_t updates_sent = 0;
    uint32_t next_sequence = 1;
    bool pending = false;
    int64_t pending_since = 0;
    uint32_t first_resync_sequence = 0;
    int32_t resync_attempts = 0;
    int64_t last_resync_tick = -1;
    int64_t last_send_tick = -1;
    ProtocolFaultStats faults;
    /// NoiseAdapter::ExportState() payload; empty when adaptation is off
    /// (snapshot v4, docs/checkpoint.md).
    Vector adapt;
  };

  Result<CheckpointState> ExportCheckpoint() const;

  /// Restores a checkpoint into a node freshly created from the same
  /// model/protocol options. Errors when dimensions disagree.
  Status ImportCheckpoint(const CheckpointState& state);

  /// Wires an observability sink: every protocol decision this node makes
  /// (suppress/transmit with the measured deviation, resync, heal,
  /// heartbeat) becomes a trace event, and the mirror filter's fast-path
  /// transitions are forwarded as source_filter events. Pass nullptr to
  /// unwire.
  void set_trace_sink(TraceSink* sink) {
    obs_sink_ = sink;
    mirror_->SetTrace(sink, options_.source_id, TraceActor::kSourceFilter);
  }

 private:
  SourceNode(const SourceNodeOptions& options,
             std::unique_ptr<Predictor> mirror,
             std::optional<KalmanSmoother> smoother)
      : options_(options), mirror_(std::move(mirror)),
        smoother_(std::move(smoother)), energy_(options.energy) {}

  /// Processes a deferred ACK (delayed delivery) for sequence `sequence`.
  void HandleAck(uint32_t sequence, int64_t tick);

  /// Leaves the pending state, recording the episode length.
  void Heal(int64_t tick);

  /// Transmits a full-state resync if the retry policy says one is due.
  Status MaybeSendResync(int64_t tick, Channel* channel,
                         SourceStepResult* result);

  SourceNodeOptions options_;
  std::unique_ptr<Predictor> mirror_;
  std::optional<KalmanSmoother> smoother_;
  EnergyAccount energy_;
  int64_t readings_ = 0;
  int64_t updates_sent_ = 0;

  /// Next wire sequence number (0 is reserved for "unsequenced").
  uint32_t next_sequence_ = 1;
  /// Divergence state machine (see docs/protocol.md §6).
  bool pending_ = false;
  int64_t pending_since_ = 0;
  /// First sequence number used for a resync in the current episode; any
  /// ACKed sequence >= this proves a resync got through.
  uint32_t first_resync_sequence_ = 0;
  int resync_attempts_ = 0;
  int64_t last_resync_tick_ = -1;
  /// Tick of the last transmission attempt of any kind (heartbeat pacing).
  int64_t last_send_tick_ = -1;
  ProtocolFaultStats faults_;
  /// Mirror-side Q/R servo; adapts only on ACKed corrections so it stays
  /// bit-identical to the server-side instance (docs/adaptive.md).
  NoiseAdapter adapter_;
  TraceSink* obs_sink_ = nullptr;
};

}  // namespace dkf

#endif  // DKF_DSMS_SOURCE_NODE_H_
