#ifndef DKF_DSMS_SIMULATION_H_
#define DKF_DSMS_SIMULATION_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "core/suppression.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "models/state_model.h"

namespace dkf {

/// One stream source in a multi-source simulation.
struct SimulationSourceConfig {
  int id = 0;
  TimeSeries data{1};  ///< the readings the sensor will observe
  StateModel model;    ///< shared KF_m / KF_s recipe
  double delta = 1.0;
  DeviationNorm norm = DeviationNorm::kMaxAbs;
  std::optional<double> smoothing_factor;  ///< KF_c factor F, if smoothing
  double smoothing_measurement_variance = 1.0;
};

/// Per-source outcome of a simulation run.
struct SourceReport {
  int id = 0;
  int64_t readings = 0;
  int64_t updates_sent = 0;
  double update_percentage = 0.0;

  /// Error of the server answer against the protocol value (the smoothed
  /// reading when KF_c is active), summed over components per the paper's
  /// metric and averaged over ticks.
  double avg_error = 0.0;
  double max_error = 0.0;
  double rmse = 0.0;

  int64_t bytes_sent = 0;
  /// Sensor energy actually spent (instruction equivalents).
  double energy_spent = 0.0;
  /// Energy a filterless send-every-reading sensor would have spent —
  /// the denominator for the paper's power-saving argument (§1).
  double energy_send_all = 0.0;
};

/// Drives SourceNodes, the Channel, and the ServerNode tick by tick over
/// the configured datasets and gathers per-source reports. This is the
/// end-to-end path of Figure 1: user query -> precision width installed at
/// both filters -> suppressed stream -> server-side answers.
class DsmsSimulation {
 public:
  /// Validates the configuration. Source ids must be unique; every data
  /// series width must match its model's measurement width. `channel`
  /// configures uplink lossiness (loss-free by default).
  static Result<DsmsSimulation> Create(
      std::vector<SimulationSourceConfig> sources,
      const EnergyModelOptions& energy = EnergyModelOptions(),
      const ChannelOptions& channel = ChannelOptions());

  /// Runs all sources to the end of their data and reports. Can be called
  /// once per instance.
  Result<std::vector<SourceReport>> Run();

 private:
  DsmsSimulation(std::vector<SimulationSourceConfig> sources,
                 const EnergyModelOptions& energy,
                 const ChannelOptions& channel)
      : configs_(std::move(sources)), energy_(energy), channel_(channel) {}

  std::vector<SimulationSourceConfig> configs_;
  EnergyModelOptions energy_;
  ChannelOptions channel_;
  bool ran_ = false;
};

}  // namespace dkf

#endif  // DKF_DSMS_SIMULATION_H_
