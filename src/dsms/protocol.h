#ifndef DKF_DSMS_PROTOCOL_H_
#define DKF_DSMS_PROTOCOL_H_

#include <cstdint>

#include "filter/adaptive_noise.h"

namespace dkf {

/// Tunables of the hardened dual-link protocol (divergence detection,
/// resync, heartbeats, degraded answers). The defaults keep legacy
/// behavior on a fault-free or plain-Bernoulli channel: no heartbeats,
/// no staleness-based degradation, and the resync machinery only
/// engages when a send's ACK is ambiguous — which a reliable-ACK
/// channel never produces. See docs/protocol.md §6 for the state
/// machine these knobs drive.
struct ProtocolOptions {
  /// When > 0, a healthy source that has not transmitted anything for
  /// this many ticks sends a heartbeat so the server can distinguish
  /// "suppressed (prediction is fine)" from "link dead". This bounds
  /// the worst-case time an undetected outage can leave the server
  /// serving unflagged answers. 0 disables heartbeats (legacy).
  int64_t heartbeat_interval = 0;

  /// On entering the pending-resync state a source retransmits its
  /// full-state resync every tick for this many attempts...
  int resync_burst_retries = 8;

  /// ...then falls back to one attempt every `resync_retry_backoff`
  /// ticks until an ACK heals the episode, so a long outage costs
  /// bounded bandwidth but recovery is still guaranteed once the link
  /// returns.
  int64_t resync_retry_backoff = 8;

  /// When > 0, the server flags a source degraded once it has heard
  /// nothing valid for `staleness_budget` ticks (with heartbeats on,
  /// silence means loss, not suppression). 1 is the strictest setting:
  /// any tick without a validated arrival is flagged. 0 disables
  /// staleness-based degradation (legacy).
  int64_t staleness_budget = 0;

  /// Covariance inflation applied to degraded answers, per tick overdue:
  /// the reported covariance is scaled by (1 + inflation * overdue).
  double degraded_inflation = 0.25;

  /// Online Q/R adaptation (docs/adaptive.md). Both link endpoints run
  /// identical NoiseAdapter instances over the *transmitted* corrections
  /// only, so the mirror and the server filter adapt bit-identically;
  /// resync messages carry the adapter state to re-lock a healed link.
  /// Disabled by default (fixed nominal noise, legacy behavior).
  AdaptiveNoiseConfig adaptive;
};

}  // namespace dkf

#endif  // DKF_DSMS_PROTOCOL_H_
