#ifndef DKF_DSMS_STREAM_MANAGER_H_
#define DKF_DSMS_STREAM_MANAGER_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "dsms/channel.h"
#include "dsms/energy_model.h"
#include "dsms/protocol.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "fusion/fusion_engine.h"
#include "metrics/fault_stats.h"
#include "models/state_model.h"
#include "obs/trace_merge.h"
#include "obs/trace_sink.h"
#include "query/aggregate.h"
#include "query/query.h"
#include "query/registry.h"
#include "serve/subscription.h"
#include "serve/subscription_engine.h"

namespace dkf {

class CheckpointAccess;  // src/checkpoint/: snapshot save/restore plumbing

/// Configuration of the end-to-end stream manager.
struct StreamManagerOptions {
  EnergyModelOptions energy;
  ChannelOptions channel;
  /// Delta a source runs at before any query binds to it (a registered
  /// source with no query still streams, at this loose precision).
  double default_delta = 1e6;
  /// Hardened-protocol knobs shared by the server and every source
  /// (heartbeats, resync retry policy, degraded-answer thresholds).
  ProtocolOptions protocol;
  /// Serving front-end knobs (standing-query notification delivery).
  ServeOptions serve;
};

/// The paper's Figure-1 system as one object (§6 first future-work item:
/// "developing an end-to-end system"): users submit continuous queries
/// with precision constraints; the manager derives each source's
/// effective delta and smoothing from the registry, installs/reconfigures
/// the dual filters, drives the tick loop, and answers queries from the
/// server-side predictors.
///
/// Reconfiguration (a query arriving or leaving mid-stream) is pushed to
/// the source as a control message on the (perfect, out-of-band) downlink
/// and counted, so the cost of query churn is visible.
class StreamManager {
 public:
  explicit StreamManager(const StreamManagerOptions& options);

  StreamManager(StreamManager&&) = delete;
  StreamManager& operator=(StreamManager&&) = delete;

  /// Installs a source and its dual filters. The model's measurement
  /// width defines the reading width ProcessTick expects for it.
  Status RegisterSource(int source_id, const StateModel& model);

  /// Registers a continuous query and reconfigures its source's delta /
  /// smoothing to the registry's new effective values. The query's source
  /// must be registered.
  Status SubmitQuery(const ContinuousQuery& query);

  /// Removes a query and relaxes its source's configuration accordingly.
  Status RemoveQuery(int query_id);

  /// Registers a continuous SUM query over scalar sources: the precision
  /// budget is split into per-source deltas (uniformly, or proportional
  /// to `weights`) and installed as synthetic per-source queries, so the
  /// aggregate guarantee |sum answers - sum readings| <= precision holds
  /// on every suppressed tick by construction.
  Status SubmitAggregateQuery(const AggregateQuery& query,
                              const std::vector<double>& weights = {});

  /// Removes an aggregate query and its synthetic per-source queries.
  Status RemoveAggregateQuery(int aggregate_id);

  /// Registers a multi-sensor fusion group (src/fusion/, docs/fusion.md):
  /// N correlated sensors observing one shared state, fused into one
  /// posterior with event-triggered cross-source suppression. Member ids
  /// share the channel's per-source namespace with plain sources and must
  /// be disjoint from every registered source id. From the next tick on,
  /// `ProcessTick` expects one reading per member.
  Status RegisterFusionGroup(const FusionGroupConfig& config);

  /// Adds / removes a member of a live group between ticks. Both charge
  /// one control message (the admission state handoff / the dismissal).
  Status AddFusionMember(int group_id, int member_id);
  Status RemoveFusionMember(int group_id, int member_id);

  /// Registers a continuous query against a fusion group's fused
  /// posterior (QueryType::kFused) and tightens the group's event
  /// trigger to the tightest active fused precision. Reconfiguration is
  /// pushed to every member (one control message each when it changed).
  Status SubmitFusedQuery(const FusedQuery& query);

  /// Removes a fused query; the group's trigger relaxes to the remaining
  /// queries' minimum (or back to its registration delta).
  Status RemoveFusedQuery(int query_id);

  /// The fused answer for a group: the posterior's predicted measurement.
  Result<Vector> AnswerFused(int group_id) const;

  /// Fused answer plus projected covariance, inflated while degraded.
  Result<FusionEngine::ConfidentAnswer> AnswerFusedWithConfidence(
      int group_id) const;

  /// Whether the group's fused answers are currently served degraded
  /// (the whole group silent past the staleness budget).
  Result<bool> fused_degraded(int group_id) const;

  /// Fusion-subsystem counters merged over every group.
  FusionStats fusion_stats() const { return fusion_.stats(); }

  /// The extended mirror-consistency contract over fusion groups: every
  /// member that is not pending re-lock and saw the latest broadcast
  /// holds a mirror bit-identical to the fused posterior.
  Status VerifyFusedConsistency() const {
    return fusion_.VerifyGroupConsistency();
  }

  /// Read access to the fusion subsystem (group topology, per-group
  /// introspection).
  const FusionEngine& fusion() const { return fusion_; }

  /// The server's current answer for an aggregate query's sum.
  Result<double> AnswerAggregate(int aggregate_id) const;

  /// An aggregate answer plus its degradation status: how many member
  /// sources are currently served degraded. A nonzero count voids the
  /// aggregate's precision guarantee for this tick (see
  /// docs/protocol.md §6).
  struct AggregateAnswer {
    double value = 0.0;
    int degraded_members = 0;
    bool degraded() const { return degraded_members > 0; }
  };
  Result<AggregateAnswer> AnswerAggregateWithStatus(int aggregate_id) const;

  /// Advances one tick: the server propagates every filter (per-source
  /// and fused), then each source — plain sources first, fusion members
  /// after — processes its reading (suppressing or transmitting).
  /// `readings` must contain exactly one entry per registered source and
  /// per fusion member.
  Status ProcessTick(const std::map<int, Vector>& readings);

  /// The server's current answer for a source's stream.
  Result<Vector> Answer(int source_id) const;

  /// Answer plus confidence (projected state covariance).
  Result<ServerNode::ConfidentAnswer> AnswerWithConfidence(
      int source_id) const;

  /// Attaches a standing query to the serving front-end (src/serve/).
  /// The subscription's source (or aggregate) must be registered; the
  /// subscriber's initial answer is evaluated against the current
  /// between-ticks state and delivered in the next drained batch.
  Status Subscribe(const Subscription& subscription);

  /// Detaches a standing query.
  Status Unsubscribe(int64_t subscription_id);

  /// Removes and returns every undrained notification batch in
  /// canonical (step, source_id, subscription_id) order.
  std::vector<NotificationBatch> DrainNotifications();

  /// Serving-layer counters plus the live subscription count.
  ServeStats serve_stats() const { return serve_.stats(); }

  size_t num_subscriptions() const { return serve_.num_subscriptions(); }

  /// Whether answers for a source are currently served degraded.
  Result<bool> answer_degraded(int source_id) const;

  /// Whether a source is in the pending-resync state.
  Result<bool> resync_pending(int source_id) const;

  /// Fleet-wide protocol fault counters: the server's ingress counters
  /// merged with every source's divergence/resync counters.
  ProtocolFaultStats fault_stats() const;

  /// Verifies the mirror-consistency invariant across every source.
  Status VerifyMirrorConsistency() const;

  /// The relaxed invariant that holds even under divergence-inducing
  /// faults: every source that is NOT pending resync has a mirror
  /// bit-identical to its server predictor. (VerifyMirrorConsistency is
  /// this with zero sources pending.)
  Status VerifyLinkConsistency() const;

  const ChannelStats& uplink_traffic() const { return channel_.total(); }
  int64_t control_messages() const { return control_messages_; }
  int64_t ticks() const { return ticks_; }
  const QueryRegistry& registry() const { return registry_; }

  /// Turns on observability: creates the trace sink and wires it into
  /// the channel, the server (and its filters), and every source node —
  /// including ones registered later. Idempotent reconfiguration: calling
  /// again replaces the sink (events so far are discarded).
  Status EnableTracing(const ObsOptions& obs = ObsOptions());

  /// Unwires and destroys the sink; every component reverts to the
  /// zero-cost untraced path. Safe between ticks.
  void DisableTracing();

  /// The trace sink, or nullptr while tracing is off.
  const TraceSink* trace_sink() const { return sink_.get(); }

  /// A copy of the retained trace events (oldest first).
  std::vector<TraceEvent> Trace() const;

  /// Snapshot of the event-derived counters, sampled gauges, and
  /// (when ObsOptions::record_timing) latency histograms.
  MetricsRegistry MetricsSnapshot() const;

  /// Per-source effective delta currently installed.
  Result<double> source_delta(int source_id) const;

  /// Per-source update totals.
  Result<int64_t> updates_sent(int source_id) const;

  /// Writes a deterministic snapshot of the entire engine — every dual
  /// link's filter states, protocol state machines, channel fault/RNG
  /// state, queries, and observability counters — to `path` (see
  /// docs/checkpoint.md for the wire format). Call between ticks.
  /// Defined in src/checkpoint/engine_checkpoint.cc.
  Status Save(const std::string& path) const;

  /// Reconstructs a manager from a snapshot written by either
  /// StreamManager::Save or ShardedStreamEngine::Save. The restored
  /// manager continues bit-identically to the uninterrupted run: same
  /// answers, same fault sequence, same trace.
  static Result<std::unique_ptr<StreamManager>> Restore(
      const std::string& path);

 private:
  friend class CheckpointAccess;

  /// Pushes the registry's current effective delta/smoothing to a source
  /// (one control message when something actually changed).
  Status ReconfigureSource(int source_id);

  /// Pushes the registry's tightest fused precision (or the group's
  /// registration delta when no query binds) to a group — one control
  /// message per member when the trigger actually changed.
  Status ReconfigureFusionGroup(int group_id);

  StreamManagerOptions options_;
  ServerNode server_;
  Channel channel_;
  /// Multi-sensor fusion groups (src/fusion/). Fused uplink traffic
  /// (message.group_id >= 0) is routed here by the channel sink instead
  /// of the per-source server node.
  FusionEngine fusion_;
  std::map<int, std::unique_ptr<SourceNode>> sources_;
  /// Smoothing factor currently installed at each source (the manager
  /// tracks it so an unrelated reconfiguration does not restart KF_c).
  std::map<int, std::optional<double>> installed_smoothing_;
  /// Aggregate id -> {member sources, synthetic query ids}.
  struct AggregateBinding {
    std::vector<int> source_ids;
    std::vector<int> synthetic_query_ids;
  };
  std::map<int, AggregateBinding> aggregates_;
  /// The model recipe each source was registered with, retained so a
  /// checkpoint can re-create the source on restore.
  std::map<int, StateModel> models_;
  QueryRegistry registry_;
  /// The serving front-end: standing queries and their notification
  /// buffer, driven at the end of every ProcessTick.
  SubscriptionEngine serve_;
  int64_t control_messages_ = 0;
  int64_t ticks_ = 0;
  /// Observability sink (null while tracing is off). Owned here; the
  /// channel/server/source nodes hold raw pointers into it.
  std::unique_ptr<TraceSink> sink_;
};

}  // namespace dkf

#endif  // DKF_DSMS_STREAM_MANAGER_H_
