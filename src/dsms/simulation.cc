#include "dsms/simulation.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"

namespace dkf {

Result<DsmsSimulation> DsmsSimulation::Create(
    std::vector<SimulationSourceConfig> sources,
    const EnergyModelOptions& energy, const ChannelOptions& channel) {
  if (channel.drop_probability < 0.0 || channel.drop_probability >= 1.0) {
    return Status::InvalidArgument("drop probability must be in [0, 1)");
  }
  if (sources.empty()) {
    return Status::InvalidArgument("simulation needs at least one source");
  }
  std::set<int> ids;
  for (const auto& config : sources) {
    if (!ids.insert(config.id).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate source id %d", config.id));
    }
    if (config.data.width() != config.model.measurement_dim) {
      return Status::InvalidArgument(
          StrFormat("source %d: data width %zu, model expects %zu",
                    config.id, config.data.width(),
                    config.model.measurement_dim));
    }
    if (config.data.empty()) {
      return Status::InvalidArgument(
          StrFormat("source %d has no data", config.id));
    }
  }
  return DsmsSimulation(std::move(sources), energy, channel);
}

Result<std::vector<SourceReport>> DsmsSimulation::Run() {
  if (ran_) return Status::FailedPrecondition("simulation already ran");
  ran_ = true;

  ServerNode server;
  for (const auto& config : configs_) {
    DKF_RETURN_IF_ERROR(server.RegisterSource(config.id, config.model));
  }
  Channel channel(
      [&server](const Message& message) { return server.OnMessage(message); },
      channel_);

  std::vector<SourceNode> nodes;
  nodes.reserve(configs_.size());
  for (const auto& config : configs_) {
    SourceNodeOptions options;
    options.source_id = config.id;
    options.model = config.model;
    options.delta = config.delta;
    options.norm = config.norm;
    options.smoothing_factor = config.smoothing_factor;
    options.smoothing_measurement_variance =
        config.smoothing_measurement_variance;
    options.energy = energy_;
    auto node_or = SourceNode::Create(options);
    if (!node_or.ok()) return node_or.status();
    nodes.push_back(std::move(node_or).value());
  }

  struct ErrorAccumulator {
    double sum = 0.0;
    double sum_sq = 0.0;
    double max = 0.0;
    int64_t count = 0;
  };
  std::vector<ErrorAccumulator> errors(configs_.size());

  size_t max_ticks = 0;
  for (const auto& config : configs_) {
    max_ticks = std::max(max_ticks, config.data.size());
  }

  for (size_t tick = 0; tick < max_ticks; ++tick) {
    // 1. Server propagates all its filters (prediction step at KF_s).
    //    Sources whose data is exhausted have stopped streaming, but the
    //    server keeps extrapolating their filters, so tick everything.
    DKF_RETURN_IF_ERROR(server.TickAll());
    DKF_RETURN_IF_ERROR(channel.BeginTick(static_cast<int64_t>(tick)));

    // 2. Each live source processes its reading and possibly transmits;
    //    deliveries correct KF_s through the channel sink.
    for (size_t s = 0; s < configs_.size(); ++s) {
      const auto& config = configs_[s];
      if (tick >= config.data.size()) continue;
      const Vector raw(config.data.Row(tick));
      auto step_or = nodes[s].ProcessReading(static_cast<int64_t>(tick), raw,
                                             &channel);
      if (!step_or.ok()) return step_or.status();
      const SourceStepResult& step = step_or.value();

      // 3. Measure the server answer against the protocol value using the
      //    paper's error metric: sum of absolute component errors.
      auto answer_or = server.Answer(config.id);
      if (!answer_or.ok()) return answer_or.status();
      const double err =
          Deviation(answer_or.value(), step.protocol_value,
                    DeviationNorm::kL1);
      ErrorAccumulator& acc = errors[s];
      acc.sum += err;
      acc.sum_sq += err * err;
      acc.max = std::max(acc.max, err);
      ++acc.count;
    }
  }

  std::vector<SourceReport> reports;
  reports.reserve(configs_.size());
  for (size_t s = 0; s < configs_.size(); ++s) {
    const auto& config = configs_[s];
    const SourceNode& node = nodes[s];
    SourceReport report;
    report.id = config.id;
    report.readings = node.readings();
    report.updates_sent = node.updates_sent();
    report.update_percentage =
        node.readings() == 0
            ? 0.0
            : 100.0 * static_cast<double>(node.updates_sent()) /
                  static_cast<double>(node.readings());
    const ErrorAccumulator& acc = errors[s];
    if (acc.count > 0) {
      report.avg_error = acc.sum / static_cast<double>(acc.count);
      report.rmse = std::sqrt(acc.sum_sq / static_cast<double>(acc.count));
      report.max_error = acc.max;
    }
    report.bytes_sent = channel.for_source(config.id).bytes;
    report.energy_spent = node.energy().total();

    // What a filterless node would have paid: one reading plus one
    // full-payload transmission per tick, no filter steps.
    Message probe;
    probe.source_id = config.id;
    probe.payload = Vector(config.data.width());
    EnergyAccount send_all(energy_);
    for (int64_t i = 0; i < node.readings(); ++i) {
      send_all.ChargeReading();
      send_all.ChargeTransmission(probe.SizeBytes());
    }
    report.energy_send_all = send_all.total();
    reports.push_back(report);
  }
  return reports;
}

}  // namespace dkf
