#ifndef DKF_DSMS_TICK_STEP_H_
#define DKF_DSMS_TICK_STEP_H_

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dsms/channel.h"
#include "dsms/server_node.h"
#include "dsms/source_node.h"
#include "query/registry.h"

namespace dkf {

/// The protocol tick over one set of dual links, factored out of
/// StreamManager so the sequential manager and each shard of the
/// parallel runtime (src/runtime/) drive sources through the *same*
/// code path: the server side predicts every stream, then each source
/// (in ascending id order) processes its reading, suppressing or
/// transmitting through `channel`.
///
/// `readings` may contain entries for sources outside `sources` (the
/// sharded runtime hands every shard the full tick batch); entries are
/// looked up by id and extras are ignored. A missing reading for an
/// owned source is an error. Count-level validation ("exactly one
/// reading per registered source") is the caller's job.
Status RunSourceTick(int64_t tick, ServerNode& server,
                     std::map<int, std::unique_ptr<SourceNode>>& sources,
                     const std::map<int, Vector>& readings,
                     Channel& channel);

/// Pushes the registry's current effective delta/smoothing for
/// `source_id` down to its node — the body of a reconfiguration control
/// message, shared by StreamManager and the sharded runtime.
///
/// `installed_smoothing` is the caller-tracked smoothing factor last
/// installed at the node; it is compared and updated here so an
/// unrelated reconfiguration does not restart the KF_c smoother.
/// Returns true when something actually changed (i.e. a control
/// message went on the downlink).
Result<bool> InstallEffectiveConfig(
    const QueryRegistry& registry, double default_delta, int source_id,
    SourceNode& node, std::optional<double>& installed_smoothing);

}  // namespace dkf

#endif  // DKF_DSMS_TICK_STEP_H_
