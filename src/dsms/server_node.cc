#include "dsms/server_node.h"

#include "common/string_util.h"

namespace dkf {

Status ServerNode::RegisterSource(int source_id, const StateModel& model) {
  if (predictors_.contains(source_id)) {
    return Status::AlreadyExists(
        StrFormat("source %d already registered", source_id));
  }
  auto predictor_or = KalmanPredictor::Create(model);
  if (!predictor_or.ok()) return predictor_or.status();
  predictors_[source_id] = predictor_or.value().Clone();
  return Status::OK();
}

Status ServerNode::UnregisterSource(int source_id) {
  if (predictors_.erase(source_id) == 0) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return Status::OK();
}

Status ServerNode::TickAll() {
  for (auto& [id, predictor] : predictors_) {
    DKF_RETURN_IF_ERROR(predictor->Tick());
  }
  return Status::OK();
}

Status ServerNode::OnMessage(const Message& message) {
  auto it = predictors_.find(message.source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(
        StrFormat("message for unregistered source %d", message.source_id));
  }
  switch (message.type) {
    case MessageType::kMeasurement:
      return it->second->Update(message.payload);
    case MessageType::kModelSwitch:
      return Status::Unimplemented(
          "model switching runs through ModelSwitchingLink; the plain "
          "server node does not carry a model bank");
  }
  return Status::Internal("unknown message type");
}

Result<Vector> ServerNode::Answer(int source_id) const {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->Predicted();
}

Result<ServerNode::ConfidentAnswer> ServerNode::AnswerWithConfidence(
    int source_id) const {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  ConfidentAnswer answer;
  answer.value = it->second->Predicted();
  answer.covariance = it->second->PredictedCovariance();
  return answer;
}

Result<const Predictor*> ServerNode::predictor(int source_id) const {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return static_cast<const Predictor*>(it->second.get());
}

}  // namespace dkf
