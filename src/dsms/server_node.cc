#include "dsms/server_node.h"

#include <algorithm>

#include "common/string_util.h"

namespace dkf {

Status ServerNode::RegisterSource(int source_id, const StateModel& model) {
  if (predictors_.contains(source_id)) {
    return Status::AlreadyExists(
        StrFormat("source %d already registered", source_id));
  }
  auto predictor_or = KalmanPredictor::Create(model);
  if (!predictor_or.ok()) return predictor_or.status();
  predictors_[source_id] = predictor_or.value().Clone();
  predictors_[source_id]->SetTrace(obs_sink_, source_id,
                                   TraceActor::kServerFilter);
  LinkState link;
  // The staleness clock starts at registration, not at tick 0.
  link.last_valid_tick = ticks_done_ - 1;
  if (protocol_.adaptive.enabled &&
      predictors_[source_id]->AdaptableFilter() != nullptr) {
    auto adapter_or = NoiseAdapter::Create(protocol_.adaptive, model);
    if (!adapter_or.ok()) return adapter_or.status();
    link.adapter = std::move(adapter_or).value();
  }
  links_[source_id] = std::move(link);
  return Status::OK();
}

Status ServerNode::UnregisterSource(int source_id) {
  if (predictors_.erase(source_id) == 0) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  links_.erase(source_id);
  return Status::OK();
}

void ServerNode::set_trace_sink(TraceSink* sink) {
  obs_sink_ = sink;
  for (auto& [id, predictor] : predictors_) {
    predictor->SetTrace(sink, id, TraceActor::kServerFilter);
  }
}

Status ServerNode::TickAll() {
  // Account degraded service for the tick that just completed (its
  // final message state is now known). Skipped entirely in legacy
  // configurations so the fault-free hot path pays nothing.
  if (ticks_done_ > 0 &&
      (protocol_.staleness_budget > 0 || faults_.resyncs_applied > 0)) {
    for (const auto& [id, link] : links_) {
      if (IsDegraded(link)) {
        ++faults_.degraded_ticks;
        DKF_TRACE(obs_sink_, ticks_done_ - 1, id,
                  TraceEventKind::kDegradedTick, TraceActor::kServer,
                  static_cast<double>(OverdueTicks(link)));
      }
    }
  }
  for (auto& [id, predictor] : predictors_) {
    DKF_RETURN_IF_ERROR(predictor->Tick());
  }
  ++ticks_done_;
  return Status::OK();
}

Status ServerNode::TickSource(int source_id) {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->Tick();
}

Status ServerNode::OnMessage(const Message& message) {
  auto it = predictors_.find(message.source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(
        StrFormat("message for unregistered source %d", message.source_id));
  }
  LinkState& link = links_[message.source_id];
  const int64_t now = ticks_done_ - 1;

  // Ingress validation. Rejections are protocol events, not errors: the
  // message is counted and dropped, the tick loop continues.
  if (message.checksum != 0 &&
      message.ComputeChecksum() != message.checksum) {
    ++faults_.rejected_corrupt;
    DKF_TRACE(obs_sink_, now, message.source_id,
              TraceEventKind::kCorruptReject, TraceActor::kServer, 0.0, 0.0,
              message.sequence);
    return Status::OK();
  }
  const bool sequenced = message.sequence != 0;
  if (sequenced && message.sequence <= link.last_sequence) {
    ++faults_.rejected_stale;  // duplicate or out-of-order
    DKF_TRACE(obs_sink_, now, message.source_id,
              TraceEventKind::kStaleReject, TraceActor::kServer, 0.0, 0.0,
              message.sequence);
    return Status::OK();
  }
  auto accept_sequenced = [&]() {
    if (!sequenced) return;
    faults_.sequence_gaps +=
        static_cast<int64_t>(message.sequence) -
        static_cast<int64_t>(link.last_sequence) - 1;
    link.last_sequence = message.sequence;
    link.last_valid_tick = now;
  };

  switch (message.type) {
    case MessageType::kMeasurement:
      // A late measurement must not be applied: the mirror was never
      // corrected for it (no ACK made it back in time), so applying it
      // here would *create* the divergence the protocol guards against.
      if (sequenced && message.tick != now) {
        ++faults_.rejected_stale;
        DKF_TRACE(obs_sink_, now, message.source_id,
                  TraceEventKind::kStaleReject, TraceActor::kServer, 0.0,
                  0.0, message.sequence);
        return Status::OK();
      }
      accept_sequenced();
      link.last_update_tick = now;
      DKF_TRACE(obs_sink_, now, message.source_id,
                TraceEventKind::kUpdateApplied, TraceActor::kServer, 0.0,
                0.0, message.sequence);
      {
        // Adapt on exactly the corrections the server applies — the same
        // values, in the same order, that corrected the mirror, which is
        // what keeps both NoiseAdapter instances bit-identical.
        KalmanFilter* adaptable =
            link.adapter.enabled() ? it->second->AdaptableFilter() : nullptr;
        NoiseAdapter::Decision adapt_decision;
        if (adaptable != nullptr) {
          auto decision_or =
              link.adapter.OnCorrection(*adaptable, message.payload, now);
          if (!decision_or.ok()) return decision_or.status();
          adapt_decision = decision_or.value();
        }
        DKF_RETURN_IF_ERROR(it->second->Update(message.payload));
        if (adaptable != nullptr) {
          DKF_RETURN_IF_ERROR(link.adapter.InstallInto(adaptable));
          if (adapt_decision.frozen) {
            DKF_TRACE(obs_sink_, now, message.source_id,
                      TraceEventKind::kAdaptFreeze, TraceActor::kServer,
                      link.adapter.r_scale(), link.adapter.q_scale(),
                      message.sequence);
          } else if (adapt_decision.adapted) {
            DKF_TRACE(obs_sink_, now, message.source_id,
                      TraceEventKind::kNoiseAdapt, TraceActor::kServer,
                      link.adapter.r_scale(), link.adapter.q_scale(),
                      message.sequence);
          }
        }
      }
      return Status::OK();

    case MessageType::kResync: {
      // Overwrite with the mirror's snapshot, then replay the ticks the
      // snapshot spent in flight: the pair is bit-exact afterwards no
      // matter how stale the snapshot is. Sequence ordering (above)
      // guarantees a late resync can never clobber a newer correction.
      const int64_t in_flight_ticks = now - message.tick;
      if (in_flight_ticks < 0) {
        return Status::Internal(
            StrFormat("resync from future tick %lld at server tick %lld",
                      static_cast<long long>(message.tick),
                      static_cast<long long>(now)));
      }
      Predictor::Snapshot snapshot;
      snapshot.state = message.resync_state;
      snapshot.covariance = message.resync_covariance;
      snapshot.step = message.resync_step;
      DKF_RETURN_IF_ERROR(it->second->ImportState(snapshot));
      if (link.adapter.enabled()) {
        // Re-lock the noise servo with the mirror's shipped state and
        // install its effective Q/R *before* replaying the in-flight
        // ticks, so the replayed Predicts inflate with the same Q the
        // mirror used while the snapshot was in flight.
        DKF_RETURN_IF_ERROR(link.adapter.ImportState(message.resync_adapt));
        if (KalmanFilter* adaptable = it->second->AdaptableFilter()) {
          DKF_RETURN_IF_ERROR(link.adapter.InstallInto(adaptable));
        }
      }
      for (int64_t i = 0; i < in_flight_ticks; ++i) {
        DKF_RETURN_IF_ERROR(it->second->Tick());
      }
      accept_sequenced();
      ++faults_.resyncs_applied;
      link.last_resync_tick = now;
      link.last_update_tick = now;
      DKF_TRACE(obs_sink_, now, message.source_id,
                TraceEventKind::kResyncApplied, TraceActor::kServer,
                static_cast<double>(in_flight_ticks), 0.0, message.sequence);
      return Status::OK();
    }

    case MessageType::kHeartbeat:
      // A delayed heartbeat proves nothing about the present; only a
      // fresh one refreshes liveness.
      if (sequenced && message.tick != now) {
        ++faults_.rejected_stale;
        DKF_TRACE(obs_sink_, now, message.source_id,
                  TraceEventKind::kStaleReject, TraceActor::kServer, 0.0,
                  0.0, message.sequence);
        return Status::OK();
      }
      accept_sequenced();
      ++faults_.heartbeats_received;
      DKF_TRACE(obs_sink_, now, message.source_id,
                TraceEventKind::kHeartbeatReceived, TraceActor::kServer, 0.0,
                0.0, message.sequence);
      return Status::OK();

    case MessageType::kModelSwitch:
      return Status::Unimplemented(
          "model switching runs through ModelSwitchingLink; the plain "
          "server node does not carry a model bank");
  }
  return Status::Internal("unknown message type");
}

Result<ServerNode::LinkSnapshot> ServerNode::ExportLink(int source_id) const {
  auto it = predictors_.find(source_id);
  auto link_it = links_.find(source_id);
  if (it == predictors_.end() || link_it == links_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  LinkSnapshot snapshot;
  snapshot.last_sequence = link_it->second.last_sequence;
  snapshot.last_valid_tick = link_it->second.last_valid_tick;
  snapshot.last_resync_tick = link_it->second.last_resync_tick;
  snapshot.last_update_tick = link_it->second.last_update_tick;
  auto full_or = it->second->ExportFullState();
  if (!full_or.ok()) return full_or.status();
  snapshot.predictor = std::move(full_or).value();
  snapshot.adapt = link_it->second.adapter.ExportState();
  return snapshot;
}

Status ServerNode::RestoreLink(int source_id, const LinkSnapshot& snapshot) {
  auto it = predictors_.find(source_id);
  auto link_it = links_.find(source_id);
  if (it == predictors_.end() || link_it == links_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  DKF_RETURN_IF_ERROR(it->second->ImportFullState(snapshot.predictor));
  link_it->second.last_sequence = snapshot.last_sequence;
  link_it->second.last_valid_tick = snapshot.last_valid_tick;
  link_it->second.last_resync_tick = snapshot.last_resync_tick;
  link_it->second.last_update_tick = snapshot.last_update_tick;
  // The FullState above already carries the adapted effective Q/R; only
  // the servo statistics need restoring.
  DKF_RETURN_IF_ERROR(link_it->second.adapter.ImportState(snapshot.adapt));
  return Status::OK();
}

bool ServerNode::IsDegraded(const LinkState& link) const {
  if (ticks_done_ <= 0) return false;
  const int64_t now = ticks_done_ - 1;
  // The resync landed this tick: the pair is re-locked, but this tick's
  // answer is the coasted snapshot — no delta test backed it.
  if (link.last_resync_tick == now) return true;
  if (protocol_.staleness_budget > 0 &&
      now - link.last_valid_tick >= protocol_.staleness_budget) {
    return true;
  }
  return false;
}

int64_t ServerNode::OverdueTicks(const LinkState& link) const {
  if (ticks_done_ <= 0) return 0;
  const int64_t now = ticks_done_ - 1;
  int64_t overdue = 0;
  if (protocol_.staleness_budget > 0) {
    overdue = now - link.last_valid_tick - protocol_.staleness_budget + 1;
  }
  if (link.last_resync_tick == now) overdue = std::max<int64_t>(overdue, 1);
  return std::max<int64_t>(overdue, 0);
}

Result<Vector> ServerNode::Answer(int source_id) const {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->Predicted();
}

Result<ServerNode::ConfidentAnswer> ServerNode::AnswerWithConfidence(
    int source_id) const {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  ConfidentAnswer answer;
  answer.value = it->second->Predicted();
  answer.covariance = it->second->PredictedCovariance();
  auto link_it = links_.find(source_id);
  if (link_it != links_.end() && IsDegraded(link_it->second)) {
    answer.degraded = true;
    if (answer.covariance.has_value()) {
      const double scale =
          1.0 + protocol_.degraded_inflation *
                    static_cast<double>(OverdueTicks(link_it->second));
      Matrix& covariance = *answer.covariance;
      for (size_t r = 0; r < covariance.rows(); ++r) {
        for (size_t c = 0; c < covariance.cols(); ++c) {
          covariance(r, c) *= scale;
        }
      }
    }
  }
  return answer;
}

Result<bool> ServerNode::degraded(int source_id) const {
  auto it = links_.find(source_id);
  if (it == links_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return IsDegraded(it->second);
}

Result<int64_t> ServerNode::last_update_tick(int source_id) const {
  auto it = links_.find(source_id);
  if (it == links_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second.last_update_tick;
}

Result<const Predictor*> ServerNode::predictor(int source_id) const {
  auto it = predictors_.find(source_id);
  if (it == predictors_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return static_cast<const Predictor*>(it->second.get());
}

Result<const NoiseAdapter*> ServerNode::noise_adapter(int source_id) const {
  auto it = links_.find(source_id);
  if (it == links_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return static_cast<const NoiseAdapter*>(&it->second.adapter);
}

}  // namespace dkf
