#ifndef DKF_DSMS_ENERGY_MODEL_H_
#define DKF_DSMS_ENERGY_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace dkf {

/// Sensor-node energy accounting in *instruction equivalents*: the paper
/// motivates source-side filtering with the measured ratio of
/// energy-per-transmitted-bit to energy-per-instruction of 220-2900 across
/// architectures (§1, [26, 27]). Expressing everything in instructions
/// makes the trade — spend a few hundred instructions on a filter step to
/// avoid shipping a multi-byte message — directly visible.
struct EnergyModelOptions {
  /// Energy of transmitting one bit, in instruction equivalents. The paper
  /// cites 220-2900; default sits mid-range.
  double instructions_per_bit = 1000.0;

  /// Cost of one mirror-filter predict + suppression test. A 4-state KF
  /// step is a handful of small matrix products.
  double instructions_per_filter_step = 400.0;

  /// Cost of taking one sensor reading.
  double instructions_per_reading = 50.0;
};

/// Accumulates a node's energy spend.
class EnergyAccount {
 public:
  explicit EnergyAccount(const EnergyModelOptions& options)
      : options_(options) {}

  void ChargeTransmission(size_t bytes) {
    transmission_ += static_cast<double>(bytes) * 8.0 *
                     options_.instructions_per_bit;
  }
  void ChargeFilterStep() { compute_ += options_.instructions_per_filter_step; }
  void ChargeReading() { sensing_ += options_.instructions_per_reading; }

  double transmission() const { return transmission_; }
  double compute() const { return compute_; }
  double sensing() const { return sensing_; }
  double total() const { return transmission_ + compute_ + sensing_; }

  const EnergyModelOptions& options() const { return options_; }

  /// Overwrites the accumulated totals — the restore half of a checkpoint.
  /// Charging rules stay whatever this account was constructed with.
  void RestoreTotals(double transmission, double compute, double sensing) {
    transmission_ = transmission;
    compute_ = compute;
    sensing_ = sensing;
  }

 private:
  EnergyModelOptions options_;
  double transmission_ = 0.0;
  double compute_ = 0.0;
  double sensing_ = 0.0;
};

}  // namespace dkf

#endif  // DKF_DSMS_ENERGY_MODEL_H_
