#include "dsms/channel.h"

namespace dkf {

Result<bool> Channel::Send(const Message& message) {
  const size_t bytes = message.SizeBytes();
  ++total_.messages;
  total_.bytes += static_cast<int64_t>(bytes);
  ChannelStats& stats = per_source_[message.source_id];
  ++stats.messages;
  stats.bytes += static_cast<int64_t>(bytes);

  if (options_.drop_probability > 0.0 &&
      rng_.Bernoulli(options_.drop_probability)) {
    ++total_.dropped;
    ++stats.dropped;
    return false;
  }
  if (sink_) {
    DKF_RETURN_IF_ERROR(sink_(message));
  }
  return true;
}

}  // namespace dkf
