#include "dsms/channel.h"

#include <algorithm>
#include <cstring>

namespace dkf {

Rng& Channel::DropRng(int source_id) {
  if (!options_.per_source_rng) return rng_;
  auto it = per_source_rng_.find(source_id);
  if (it == per_source_rng_.end()) {
    // Decorrelate the per-source streams: Rng's own constructor runs the
    // seed through SplitMix64, so a simple odd-multiplier mix suffices.
    const uint64_t mixed =
        options_.seed ^
        (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(source_id) + 1));
    it = per_source_rng_.emplace(source_id, Rng(mixed)).first;
  }
  return it->second;
}

const ChannelStats& Channel::for_source(int source_id) const {
  static const ChannelStats kEmpty;
  auto it = per_source_.find(source_id);
  return it == per_source_.end() ? kEmpty : it->second;
}

void Channel::Corrupt(Message* framed, Rng& rng) {
  // Flip a mantissa bit in one payload double; for payload-free types,
  // damage the header (checksum) instead. Either way the receiver's
  // recomputed checksum no longer matches the stamped one.
  Vector* target = nullptr;
  size_t span = 0;
  if (framed->payload.size() > 0) {
    target = &framed->payload;
    span = framed->payload.size();
  } else if (framed->resync_state.size() > 0) {
    // Resyncs expose the state vector plus (on adaptive links) the
    // adapter payload as one combined corruption span, chosen with a
    // single draw so the RNG stream — and therefore every shard-count
    // equivalence — is unchanged when resync_adapt is empty.
    target = &framed->resync_state;
    span = framed->resync_state.size() + framed->resync_adapt.size();
  }
  if (target == nullptr) {
    framed->checksum ^= 0xA5A5A5A5u;
    return;
  }
  size_t index = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(span) - 1));
  if (index >= target->size()) {
    index -= target->size();
    target = &framed->resync_adapt;
  }
  double value = (*target)[index];
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  bits ^= (1ULL << 20);
  std::memcpy(&value, &bits, sizeof(value));
  (*target)[index] = value;
}

Status Channel::Deliver(const Message& message) {
  if (sink_) {
    DKF_RETURN_IF_ERROR(sink_(message));
  }
  return Status::OK();
}

Result<SendAck> Channel::Send(const Message& message) {
  // Link-layer framing: stamp the wire checksum before any fault can
  // touch the bits.
  Message framed = message;
  framed.checksum = framed.ComputeChecksum();

  const size_t bytes = framed.SizeBytes();
  ++total_.messages;
  total_.bytes += static_cast<int64_t>(bytes);
  ChannelStats& stats = per_source_[framed.source_id];
  ++stats.messages;
  stats.bytes += static_cast<int64_t>(bytes);

  Rng& rng = DropRng(framed.source_id);
  const FaultModel& fault = options_.fault;
  const bool fault_active = fault.ActiveAt(framed.tick);
  // Any fault feature that hides a loss from the sender makes even a
  // "clean" drop ambiguous: the ACK path itself is unreliable.
  const bool reliable_ack = fault.ack_loss_probability <= 0.0;

  // 1. Legacy independent Bernoulli drop. Drawn first so a fault-free
  //    channel's RNG sequence is bit-identical to the pre-fault code.
  if (options_.drop_probability > 0.0 &&
      rng.Bernoulli(options_.drop_probability)) {
    ++total_.dropped;
    ++stats.dropped;
    DKF_TRACE(obs_sink_, framed.tick, framed.source_id,
              TraceEventKind::kChannelDrop, TraceActor::kChannel, 0.0, 0.0,
              framed.sequence);
    return (fault_active && !reliable_ack) ? SendAck::kNoAck
                                           : SendAck::kDropped;
  }
  if (!fault_active) {
    DKF_RETURN_IF_ERROR(Deliver(framed));
    return SendAck::kAcked;
  }

  // 2. Scheduled outage: everything sent in the window vanishes, ACK
  //    included (deterministic, no RNG draw).
  if (fault.InOutage(framed.tick)) {
    ++total_.dropped;
    ++stats.dropped;
    ++total_.outage_dropped;
    ++stats.outage_dropped;
    DKF_TRACE(obs_sink_, framed.tick, framed.source_id,
              TraceEventKind::kChannelOutage, TraceActor::kChannel, 0.0, 0.0,
              framed.sequence);
    return SendAck::kNoAck;
  }

  // 3. Gilbert–Elliott bursty loss: advance the per-source chain, then
  //    draw against the current state's loss rate (two draws per send,
  //    unconditionally, to keep the stream layout fixed).
  if (fault.gilbert_elliott.has_value()) {
    const GilbertElliottLoss& ge = *fault.gilbert_elliott;
    bool& bad = ge_bad_[framed.source_id];
    if (rng.Bernoulli(bad ? ge.p_bad_to_good : ge.p_good_to_bad)) bad = !bad;
    if (rng.Bernoulli(bad ? ge.bad_loss : ge.good_loss)) {
      ++total_.dropped;
      ++stats.dropped;
      DKF_TRACE(obs_sink_, framed.tick, framed.source_id,
                TraceEventKind::kChannelDrop, TraceActor::kChannel, 1.0, 0.0,
                framed.sequence);
      return reliable_ack ? SendAck::kDropped : SendAck::kNoAck;
    }
  }

  // 4. In-flight corruption: the message still arrives, but the server's
  //    checksum will reject it — and no ACK comes back.
  bool corrupted = false;
  if (fault.corruption_probability > 0.0 &&
      rng.Bernoulli(fault.corruption_probability)) {
    Corrupt(&framed, rng);
    corrupted = true;
    ++total_.corrupted;
    ++stats.corrupted;
    DKF_TRACE(obs_sink_, framed.tick, framed.source_id,
              TraceEventKind::kChannelCorrupt, TraceActor::kChannel, 0.0, 0.0,
              framed.sequence);
  }

  // 5. Delivery delay: a nonzero draw parks the message in the in-flight
  //    queue until BeginTick(send tick + delay).
  int64_t delay = 0;
  if (fault.delay.has_value()) {
    delay = rng.UniformInt(fault.delay->min_ticks, fault.delay->max_ticks);
  }

  // 6. ACK loss (drawn now, even for delayed messages, so the draw
  //    order per source is independent of queue timing).
  bool ack_lost = false;
  if (fault.ack_loss_probability > 0.0 &&
      rng.Bernoulli(fault.ack_loss_probability)) {
    ack_lost = true;
    ++total_.ack_lost;
    ++stats.ack_lost;
    DKF_TRACE(obs_sink_, framed.tick, framed.source_id,
              TraceEventKind::kChannelAckLoss, TraceActor::kChannel, 0.0, 0.0,
              framed.sequence);
  }

  if (delay > 0) {
    ++total_.delayed;
    ++stats.delayed;
    DKF_TRACE(obs_sink_, framed.tick, framed.source_id,
              TraceEventKind::kChannelDelay, TraceActor::kChannel,
              static_cast<double>(delay), 0.0, framed.sequence);
    in_flight_.push_back(
        InFlight{framed.tick + delay, ack_lost, corrupted, std::move(framed)});
    return SendAck::kNoAck;
  }

  DKF_RETURN_IF_ERROR(Deliver(framed));
  if (corrupted || ack_lost) return SendAck::kNoAck;
  return SendAck::kAcked;
}

Status Channel::BeginTick(int64_t tick) {
  if (in_flight_.empty()) return Status::OK();
  // Deliver in insertion (send) order; reordering across sends emerges
  // from differing delays, not from the drain.
  size_t kept = 0;
  Status failure = Status::OK();
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    InFlight& entry = in_flight_[i];
    if (failure.ok() && entry.due <= tick) {
      Status delivered = Deliver(entry.message);
      if (!delivered.ok()) {
        failure = delivered;
        in_flight_[kept++] = std::move(entry);
        continue;
      }
      // A corrupted frame triggers no receiver ACK; a lost ACK never
      // arrives. Everything else reaches the sender on its next tick.
      if (!entry.ack_lost && !entry.corrupted) {
        deferred_acks_[entry.message.source_id].push_back(
            entry.message.sequence);
      }
      continue;
    }
    in_flight_[kept++] = std::move(entry);
  }
  in_flight_.resize(kept);
  return failure;
}

Channel::SourceCheckpoint Channel::ExportSourceCheckpoint(
    int source_id) const {
  SourceCheckpoint state;
  state.stats = for_source(source_id);
  auto rng_it = per_source_rng_.find(source_id);
  if (rng_it != per_source_rng_.end()) {
    state.has_rng = true;
    state.rng = rng_it->second.SaveState();
  }
  auto ge_it = ge_bad_.find(source_id);
  if (ge_it != ge_bad_.end()) {
    state.has_ge_state = true;
    state.ge_bad = ge_it->second;
  }
  for (const InFlight& entry : in_flight_) {
    if (entry.message.source_id != source_id) continue;
    state.in_flight.push_back(InFlightEntry{entry.due, entry.ack_lost,
                                            entry.corrupted, entry.message});
  }
  auto ack_it = deferred_acks_.find(source_id);
  if (ack_it != deferred_acks_.end()) state.deferred_acks = ack_it->second;
  return state;
}

void Channel::ImportSourceCheckpoint(int source_id,
                                     const SourceCheckpoint& state) {
  per_source_[source_id] = state.stats;
  if (state.has_rng) {
    Rng rng;
    rng.LoadState(state.rng);
    per_source_rng_.insert_or_assign(source_id, rng);
  }
  if (state.has_ge_state) ge_bad_[source_id] = state.ge_bad;
  for (const InFlightEntry& entry : state.in_flight) {
    in_flight_.push_back(
        InFlight{entry.due, entry.ack_lost, entry.corrupted, entry.message});
  }
  if (!state.deferred_acks.empty()) {
    deferred_acks_[source_id] = state.deferred_acks;
  }
}

void Channel::FinalizeRestore() {
  // Sends append to the queue in chronological order: ticks ascend, the
  // tick loop runs sources in ascending id, and a source's messages
  // within one tick carry ascending sequence numbers. Sorting by that key
  // therefore reproduces the exact pre-checkpoint queue order regardless
  // of how the entries were fanned across shards.
  std::sort(in_flight_.begin(), in_flight_.end(),
            [](const InFlight& a, const InFlight& b) {
              if (a.message.tick != b.message.tick) {
                return a.message.tick < b.message.tick;
              }
              if (a.message.source_id != b.message.source_id) {
                return a.message.source_id < b.message.source_id;
              }
              return a.message.sequence < b.message.sequence;
            });
  total_ = ChannelStats();
  for (const auto& [id, stats] : per_source_) {
    total_.messages += stats.messages;
    total_.bytes += stats.bytes;
    total_.dropped += stats.dropped;
    total_.corrupted += stats.corrupted;
    total_.delayed += stats.delayed;
    total_.ack_lost += stats.ack_lost;
    total_.outage_dropped += stats.outage_dropped;
  }
}

bool Channel::has_residual_for(int source_id) const {
  for (const auto& entry : in_flight_) {
    if (entry.message.source_id == source_id) return true;
  }
  auto it = deferred_acks_.find(source_id);
  return it != deferred_acks_.end() && !it->second.empty();
}

void Channel::AppendResidualSources(std::vector<int>* out) const {
  for (const auto& entry : in_flight_) {
    out->push_back(entry.message.source_id);
  }
  for (const auto& [id, acks] : deferred_acks_) {
    if (!acks.empty()) out->push_back(id);
  }
}

std::vector<uint32_t> Channel::TakeAcks(int source_id) {
  auto it = deferred_acks_.find(source_id);
  if (it == deferred_acks_.end()) return {};
  std::vector<uint32_t> acks = std::move(it->second);
  deferred_acks_.erase(it);
  return acks;
}

}  // namespace dkf
