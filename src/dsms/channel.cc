#include "dsms/channel.h"

namespace dkf {

Rng& Channel::DropRng(int source_id) {
  if (!options_.per_source_rng) return rng_;
  auto it = per_source_rng_.find(source_id);
  if (it == per_source_rng_.end()) {
    // Decorrelate the per-source streams: Rng's own constructor runs the
    // seed through SplitMix64, so a simple odd-multiplier mix suffices.
    const uint64_t mixed =
        options_.seed ^
        (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(source_id) + 1));
    it = per_source_rng_.emplace(source_id, Rng(mixed)).first;
  }
  return it->second;
}

Result<bool> Channel::Send(const Message& message) {
  const size_t bytes = message.SizeBytes();
  ++total_.messages;
  total_.bytes += static_cast<int64_t>(bytes);
  ChannelStats& stats = per_source_[message.source_id];
  ++stats.messages;
  stats.bytes += static_cast<int64_t>(bytes);

  if (options_.drop_probability > 0.0 &&
      DropRng(message.source_id).Bernoulli(options_.drop_probability)) {
    ++total_.dropped;
    ++stats.dropped;
    return false;
  }
  if (sink_) {
    DKF_RETURN_IF_ERROR(sink_(message));
  }
  return true;
}

}  // namespace dkf
