#include "dsms/stream_manager.h"

#include <chrono>
#include <cmath>

#include "common/string_util.h"
#include "dsms/tick_step.h"

namespace dkf {

namespace {

/// The serving layer's view of a StreamManager: component 0 of the
/// server-side answers, the projected state variance, and aggregate
/// sums.
class ManagerAnswers final : public ServeAnswerSource {
 public:
  explicit ManagerAnswers(const StreamManager& manager) : manager_(manager) {}

  Result<double> SourceValue(int source_id) const override {
    auto answer_or = manager_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> SourceUncertainty(int source_id) const override {
    auto answer_or = manager_.AnswerWithConfidence(source_id);
    if (!answer_or.ok()) return answer_or.status();
    if (!answer_or.value().covariance.has_value()) return 0.0;
    return (*answer_or.value().covariance)(0, 0);
  }

  Result<double> AggregateValue(int aggregate_id) const override {
    return manager_.AnswerAggregate(aggregate_id);
  }

  Result<double> FusedValue(int group_id) const override {
    auto answer_or = manager_.AnswerFused(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value()[0];
  }

  Result<double> FusedUncertainty(int group_id) const override {
    auto answer_or = manager_.AnswerFusedWithConfidence(group_id);
    if (!answer_or.ok()) return answer_or.status();
    return answer_or.value().covariance(0, 0);
  }

 private:
  const StreamManager& manager_;
};

}  // namespace

StreamManager::StreamManager(const StreamManagerOptions& options)
    : options_(options),
      server_(options.protocol),
      channel_(
          [this](const Message& message) {
            // Fused traffic is addressed by group; everything else is a
            // per-source dual link.
            return message.group_id >= 0 ? fusion_.OnMessage(message)
                                         : server_.OnMessage(message);
          },
          options.channel),
      fusion_(options.protocol, options.channel.fault),
      serve_(options.serve) {}

Status StreamManager::RegisterSource(int source_id, const StateModel& model) {
  if (sources_.contains(source_id)) {
    return Status::AlreadyExists(
        StrFormat("source %d already registered", source_id));
  }
  if (fusion_.owns_member(source_id)) {
    return Status::AlreadyExists(
        StrFormat("id %d already belongs to fusion group %d", source_id,
                  fusion_.member_group(source_id)));
  }
  DKF_RETURN_IF_ERROR(server_.RegisterSource(source_id, model));

  SourceNodeOptions node_options;
  node_options.source_id = source_id;
  node_options.model = model;
  node_options.delta = options_.default_delta;
  node_options.energy = options_.energy;
  node_options.protocol = options_.protocol;
  auto node_or = SourceNode::Create(node_options);
  if (!node_or.ok()) {
    // Keep server and source sets consistent on failure.
    (void)server_.UnregisterSource(source_id);
    return node_or.status();
  }
  sources_[source_id] =
      std::make_unique<SourceNode>(std::move(node_or).value());
  models_[source_id] = model;
  if (sink_ != nullptr) sources_[source_id]->set_trace_sink(sink_.get());
  return Status::OK();
}

Status StreamManager::EnableTracing(const ObsOptions& obs) {
  sink_ = std::make_unique<TraceSink>(obs);
  channel_.set_trace_sink(sink_.get());
  server_.set_trace_sink(sink_.get());
  fusion_.set_trace_sink(sink_.get());
  serve_.set_trace_sink(sink_.get());
  for (auto& [id, node] : sources_) node->set_trace_sink(sink_.get());
  return Status::OK();
}

void StreamManager::DisableTracing() {
  channel_.set_trace_sink(nullptr);
  server_.set_trace_sink(nullptr);
  fusion_.set_trace_sink(nullptr);
  serve_.set_trace_sink(nullptr);
  for (auto& [id, node] : sources_) node->set_trace_sink(nullptr);
  sink_.reset();
}

Status StreamManager::Subscribe(const Subscription& subscription) {
  if (subscription.kind == SubscriptionKind::kFused) {
    if (!fusion_.has_group(subscription.group_id)) {
      return Status::NotFound(
          StrFormat("subscription %lld targets unregistered fusion group %d",
                    static_cast<long long>(subscription.id),
                    subscription.group_id));
    }
    return serve_.Subscribe(subscription, ticks_, ManagerAnswers(*this));
  }
  if (subscription.kind == SubscriptionKind::kAggregate) {
    auto it = aggregates_.find(subscription.aggregate_id);
    if (it == aggregates_.end()) {
      return Status::NotFound(
          StrFormat("subscription %lld targets unregistered aggregate %d",
                    static_cast<long long>(subscription.id),
                    subscription.aggregate_id));
    }
    return serve_.Subscribe(subscription, ticks_, ManagerAnswers(*this),
                            it->second.source_ids);
  }
  if (!sources_.contains(subscription.source_id)) {
    return Status::NotFound(
        StrFormat("subscription %lld targets unregistered source %d",
                  static_cast<long long>(subscription.id),
                  subscription.source_id));
  }
  return serve_.Subscribe(subscription, ticks_, ManagerAnswers(*this));
}

Status StreamManager::Unsubscribe(int64_t subscription_id) {
  return serve_.Unsubscribe(subscription_id);
}

std::vector<NotificationBatch> StreamManager::DrainNotifications() {
  return MergeNotificationBatches({serve_.Drain()});
}

std::vector<TraceEvent> StreamManager::Trace() const {
  if (sink_ == nullptr) return {};
  return sink_->Events();
}

MetricsRegistry StreamManager::MetricsSnapshot() const {
  MetricsRegistry registry;
  if (sink_ != nullptr) {
    sink_->SnapshotInto(&registry);
    // Per-source uplink accounting, mirroring
    // ShardedStreamEngine::MetricsSnapshot so the two systems stay
    // gauge-for-gauge comparable.
    for (const auto& [source_id, node] : sources_) {
      registry.SetGauge(StrFormat("uplink.bytes.%d", source_id),
                        static_cast<double>(
                            channel_.for_source(source_id).bytes));
      if (node->noise_adapter().enabled()) {
        registry.SetGauge(StrFormat("adapt.r_scale.%d", source_id),
                          node->noise_adapter().r_scale());
        registry.SetGauge(StrFormat("adapt.q_scale.%d", source_id),
                          node->noise_adapter().q_scale());
      }
    }
  }
  return registry;
}

Status StreamManager::SubmitQuery(const ContinuousQuery& query) {
  if (query.id >= kReservedQueryIdBase) {
    return Status::InvalidArgument(
        StrFormat("query ids >= %d are reserved for aggregate members",
                  kReservedQueryIdBase));
  }
  if (!sources_.contains(query.source_id)) {
    return Status::NotFound(
        StrFormat("query %d targets unregistered source %d", query.id,
                  query.source_id));
  }
  DKF_RETURN_IF_ERROR(registry_.AddQuery(query));
  return ReconfigureSource(query.source_id);
}

Status StreamManager::RemoveQuery(int query_id) {
  if (query_id >= kReservedQueryIdBase) {
    return Status::InvalidArgument(
        "aggregate members are removed via RemoveAggregateQuery");
  }
  // Find the query's source before removal so we can relax it after.
  int source_id = -1;
  for (int candidate : registry_.ActiveSources()) {
    for (const ContinuousQuery& query :
         registry_.QueriesForSource(candidate)) {
      if (query.id == query_id) source_id = candidate;
    }
  }
  DKF_RETURN_IF_ERROR(registry_.RemoveQuery(query_id));
  if (source_id >= 0) return ReconfigureSource(source_id);
  return Status::OK();
}

Status StreamManager::SubmitAggregateQuery(
    const AggregateQuery& query, const std::vector<double>& weights) {
  if (aggregates_.contains(query.id)) {
    return Status::AlreadyExists(
        StrFormat("aggregate %d already registered", query.id));
  }
  for (int source_id : query.source_ids) {
    auto it = sources_.find(source_id);
    if (it == sources_.end()) {
      return Status::NotFound(
          StrFormat("aggregate %d targets unregistered source %d", query.id,
                    source_id));
    }
    if (it->second->mirror().dim() != 1) {
      return Status::InvalidArgument(
          "aggregate queries support scalar sources only");
    }
  }
  auto deltas_or = SplitAggregatePrecision(query, weights);
  if (!deltas_or.ok()) return deltas_or.status();
  const std::vector<double>& deltas = deltas_or.value();

  AggregateBinding binding;
  binding.source_ids = query.source_ids;
  for (size_t i = 0; i < query.source_ids.size(); ++i) {
    ContinuousQuery member;
    member.id = kReservedQueryIdBase + query.id * 1024 +
                static_cast<int>(i);
    member.source_id = query.source_ids[i];
    member.precision = deltas[i];
    member.description = StrFormat("aggregate %d member", query.id);
    Status status = registry_.AddQuery(member);
    if (!status.ok()) {
      // Roll back the members installed so far.
      for (int installed : binding.synthetic_query_ids) {
        (void)registry_.RemoveQuery(installed);
      }
      return status;
    }
    binding.synthetic_query_ids.push_back(member.id);
  }
  for (int source_id : query.source_ids) {
    DKF_RETURN_IF_ERROR(ReconfigureSource(source_id));
  }
  aggregates_[query.id] = std::move(binding);
  return Status::OK();
}

Status StreamManager::RemoveAggregateQuery(int aggregate_id) {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  if (serve_.has_aggregate_subscriptions(aggregate_id)) {
    return Status::FailedPrecondition(
        StrFormat("aggregate %d still has standing subscriptions",
                  aggregate_id));
  }
  for (int query_id : it->second.synthetic_query_ids) {
    DKF_RETURN_IF_ERROR(registry_.RemoveQuery(query_id));
  }
  for (int source_id : it->second.source_ids) {
    DKF_RETURN_IF_ERROR(ReconfigureSource(source_id));
  }
  aggregates_.erase(it);
  return Status::OK();
}

Result<double> StreamManager::AnswerAggregate(int aggregate_id) const {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  double sum = 0.0;
  for (int source_id : it->second.source_ids) {
    auto answer_or = server_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    sum += answer_or.value()[0];
  }
  return sum;
}

Result<StreamManager::AggregateAnswer> StreamManager::AnswerAggregateWithStatus(
    int aggregate_id) const {
  auto it = aggregates_.find(aggregate_id);
  if (it == aggregates_.end()) {
    return Status::NotFound(
        StrFormat("aggregate %d not registered", aggregate_id));
  }
  AggregateAnswer aggregate;
  for (int source_id : it->second.source_ids) {
    auto answer_or = server_.Answer(source_id);
    if (!answer_or.ok()) return answer_or.status();
    aggregate.value += answer_or.value()[0];
    auto degraded_or = server_.degraded(source_id);
    if (!degraded_or.ok()) return degraded_or.status();
    if (degraded_or.value()) ++aggregate.degraded_members;
  }
  return aggregate;
}

Status StreamManager::RegisterFusionGroup(const FusionGroupConfig& config) {
  for (int member_id : config.member_ids) {
    if (sources_.contains(member_id)) {
      return Status::AlreadyExists(
          StrFormat("fusion member id %d is a registered source",
                    member_id));
    }
  }
  DKF_RETURN_IF_ERROR(fusion_.RegisterGroup(config));
  if (sink_ != nullptr) fusion_.set_trace_sink(sink_.get());
  return Status::OK();
}

Status StreamManager::AddFusionMember(int group_id, int member_id) {
  if (sources_.contains(member_id)) {
    return Status::AlreadyExists(
        StrFormat("fusion member id %d is a registered source", member_id));
  }
  DKF_RETURN_IF_ERROR(fusion_.AddMember(group_id, member_id));
  if (sink_ != nullptr) fusion_.set_trace_sink(sink_.get());
  // The admission handoff: the newcomer's mirror is handed the current
  // posterior over the out-of-band downlink.
  ++control_messages_;
  return Status::OK();
}

Status StreamManager::RemoveFusionMember(int group_id, int member_id) {
  DKF_RETURN_IF_ERROR(fusion_.RemoveMember(group_id, member_id));
  ++control_messages_;  // the dismissal
  return Status::OK();
}

Status StreamManager::SubmitFusedQuery(const FusedQuery& query) {
  if (query.id >= kReservedQueryIdBase) {
    return Status::InvalidArgument(
        StrFormat("query ids >= %d are reserved for aggregate members",
                  kReservedQueryIdBase));
  }
  if (!fusion_.has_group(query.group_id)) {
    return Status::NotFound(
        StrFormat("fused query %d targets unregistered fusion group %d",
                  query.id, query.group_id));
  }
  DKF_RETURN_IF_ERROR(registry_.AddFusedQuery(query));
  return ReconfigureFusionGroup(query.group_id);
}

Status StreamManager::RemoveFusedQuery(int query_id) {
  // Find the query's group before removal so we can relax it after.
  int group_id = -1;
  for (int candidate : registry_.ActiveGroups()) {
    for (const FusedQuery& query :
         registry_.FusedQueriesForGroup(candidate)) {
      if (query.id == query_id) group_id = candidate;
    }
  }
  DKF_RETURN_IF_ERROR(registry_.RemoveFusedQuery(query_id));
  if (group_id >= 0) return ReconfigureFusionGroup(group_id);
  return Status::OK();
}

Result<Vector> StreamManager::AnswerFused(int group_id) const {
  return fusion_.Answer(group_id);
}

Result<FusionEngine::ConfidentAnswer> StreamManager::AnswerFusedWithConfidence(
    int group_id) const {
  return fusion_.AnswerWithConfidence(group_id);
}

Result<bool> StreamManager::fused_degraded(int group_id) const {
  return fusion_.answer_degraded(group_id);
}

Status StreamManager::ReconfigureFusionGroup(int group_id) {
  double effective;
  if (registry_.FusedQueriesForGroup(group_id).empty()) {
    auto base_or = fusion_.group_base_delta(group_id);
    if (!base_or.ok()) return base_or.status();
    effective = base_or.value();
  } else {
    auto delta_or = registry_.EffectiveFusedDelta(group_id);
    if (!delta_or.ok()) return delta_or.status();
    effective = delta_or.value();
  }
  auto changed_or = fusion_.set_group_delta(group_id, effective);
  if (!changed_or.ok()) return changed_or.status();
  if (changed_or.value()) {
    // Every member must learn the new trigger: one control message each.
    auto members_or = fusion_.group_members(group_id);
    if (!members_or.ok()) return members_or.status();
    control_messages_ += static_cast<int64_t>(members_or.value().size());
  }
  return Status::OK();
}

Status StreamManager::ReconfigureSource(int source_id) {
  auto changed_or = InstallEffectiveConfig(
      registry_, options_.default_delta, source_id, *sources_.at(source_id),
      installed_smoothing_[source_id]);
  if (!changed_or.ok()) return changed_or.status();
  if (changed_or.value()) ++control_messages_;
  return Status::OK();
}

Status StreamManager::ProcessTick(const std::map<int, Vector>& readings) {
  if (readings.size() != sources_.size() + fusion_.num_members()) {
    return Status::InvalidArgument(
        StrFormat("got %zu readings for %zu sources + %zu fusion members",
                  readings.size(), sources_.size(), fusion_.num_members()));
  }
  const bool timed = sink_ != nullptr && sink_->options().record_timing;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  // Fused posteriors and mirrors predict before the channel drains its
  // in-flight queue (inside RunSourceTick), so delayed fused deliveries
  // land on post-predict state — the same ordering ServerNode::TickAll
  // gives the per-source links. Unconditional: the engine's tick clock
  // must advance even while no group is registered yet, so a group
  // registered mid-run gets the right staleness origin.
  DKF_RETURN_IF_ERROR(fusion_.BeginTick(ticks_));
  DKF_RETURN_IF_ERROR(
      RunSourceTick(ticks_, server_, sources_, readings, channel_));
  // Fusion members run after the plain sources, in ascending (group,
  // member) order — one global deterministic source order per tick.
  DKF_RETURN_IF_ERROR(fusion_.ProcessReadings(ticks_, readings, &channel_));
  DKF_RETURN_IF_ERROR(serve_.EndTick(ticks_, ManagerAnswers(*this)));
  ++ticks_;
  if (sink_ != nullptr) {
    if (timed) {
      sink_->RecordTickLatencyNs(std::chrono::duration<double, std::nano>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
    }
    sink_->SetGauge("channel.in_flight",
                    static_cast<double>(channel_.in_flight()));
  }
  return Status::OK();
}

Result<Vector> StreamManager::Answer(int source_id) const {
  return server_.Answer(source_id);
}

Result<ServerNode::ConfidentAnswer> StreamManager::AnswerWithConfidence(
    int source_id) const {
  return server_.AnswerWithConfidence(source_id);
}

Status StreamManager::VerifyMirrorConsistency() const {
  for (const auto& [id, node] : sources_) {
    auto predictor_or = server_.predictor(id);
    if (!predictor_or.ok()) return predictor_or.status();
    if (!node->mirror().StateEquals(*predictor_or.value())) {
      return Status::Internal(
          StrFormat("mirror-consistency violated for source %d", id));
    }
  }
  return Status::OK();
}

Result<bool> StreamManager::answer_degraded(int source_id) const {
  return server_.degraded(source_id);
}

Result<bool> StreamManager::resync_pending(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->resync_pending();
}

ProtocolFaultStats StreamManager::fault_stats() const {
  ProtocolFaultStats merged = server_.fault_stats();
  for (const auto& [id, node] : sources_) {
    merged.MergeFrom(node->fault_stats());
  }
  return merged;
}

Status StreamManager::VerifyLinkConsistency() const {
  for (const auto& [id, node] : sources_) {
    if (node->resync_pending()) continue;
    auto predictor_or = server_.predictor(id);
    if (!predictor_or.ok()) return predictor_or.status();
    if (!node->mirror().StateEquals(*predictor_or.value())) {
      return Status::Internal(
          StrFormat("link-consistency violated for healthy source %d", id));
    }
  }
  return Status::OK();
}

Result<double> StreamManager::source_delta(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->delta();
}

Result<int64_t> StreamManager::updates_sent(int source_id) const {
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound(StrFormat("source %d not registered", source_id));
  }
  return it->second->updates_sent();
}

}  // namespace dkf
