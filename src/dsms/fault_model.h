#ifndef DKF_DSMS_FAULT_MODEL_H_
#define DKF_DSMS_FAULT_MODEL_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace dkf {

/// Two-state Markov (Gilbert–Elliott) loss: the link alternates between
/// a good and a bad state with the given per-message transition
/// probabilities, and drops each message with the state's loss rate.
/// Models bursty wireless loss, unlike the independent Bernoulli drops
/// of ChannelOptions::drop_probability.
struct GilbertElliottLoss {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double good_loss = 0.0;
  double bad_loss = 1.0;
};

/// Per-message delivery delay in whole ticks, drawn uniformly from
/// [min_ticks, max_ticks]. A message drawn > 0 enters the channel's
/// in-flight queue and reaches the server only when the tick loop drains
/// it, after the server has already ticked past the send tick; mixing
/// zero and nonzero draws reorders messages.
struct DelayModel {
  int64_t min_ticks = 0;
  int64_t max_ticks = 0;
};

/// A scheduled outage: every message sent at a tick in [start, end) is
/// silently lost (no ACK — the sender cannot distinguish an outage from
/// a slow link).
struct OutageWindow {
  int64_t start = 0;
  int64_t end = 0;
};

/// Pluggable fault injection for Channel, layered on top of the legacy
/// Bernoulli `drop_probability`. The default-constructed model injects
/// nothing and leaves the channel's behavior (including its RNG draw
/// sequence) bit-identical to the pre-fault-layer code.
///
/// Every random decision is drawn from the channel's per-source stream
/// in a fixed order, so fault schedules are deterministic and — with
/// ChannelOptions::per_source_rng — invariant under the shard layout.
///
/// ACK semantics: plain Bernoulli and Gilbert–Elliott losses keep the
/// legacy reliable link-layer ACK (the sender learns the message was
/// lost, unless ack_loss_probability also applies). Outages, delays,
/// corruption, and lost ACKs return `SendAck::kNoAck`: the sender
/// cannot tell whether the server got the message — the divergence-
/// inducing case the resync protocol exists for.
struct FaultModel {
  std::optional<GilbertElliottLoss> gilbert_elliott;
  std::optional<DelayModel> delay;
  std::vector<OutageWindow> outages;

  /// Probability that a delivered message's ACK is lost on the way back.
  double ack_loss_probability = 0.0;

  /// Probability that a message's payload is corrupted in flight. The
  /// corrupted message still reaches the sink (where the checksum
  /// rejects it) and yields no ACK.
  double corruption_probability = 0.0;

  /// Ticks >= this value inject no faults — a clean tail for chaos
  /// harnesses that must observe full recovery.
  int64_t active_until = INT64_MAX;

  bool any() const {
    return gilbert_elliott.has_value() || delay.has_value() ||
           !outages.empty() || ack_loss_probability > 0.0 ||
           corruption_probability > 0.0;
  }

  bool ActiveAt(int64_t tick) const { return any() && tick < active_until; }

  bool InOutage(int64_t tick) const {
    for (const OutageWindow& window : outages) {
      if (tick >= window.start && tick < window.end) return true;
    }
    return false;
  }
};

}  // namespace dkf

#endif  // DKF_DSMS_FAULT_MODEL_H_
