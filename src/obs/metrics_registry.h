#ifndef DKF_OBS_METRICS_REGISTRY_H_
#define DKF_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dkf {

/// A fixed-bucket histogram: `boundaries` are the inclusive upper edges
/// of the first N buckets, with an implicit +Inf bucket after the last
/// (Prometheus "le" semantics). Bucket counts, total count, and sum are
/// tracked; no per-sample storage.
struct HistogramSnapshot {
  std::vector<double> boundaries;
  std::vector<int64_t> counts;  // boundaries.size() + 1 entries
  int64_t count = 0;
  double sum = 0.0;

  void Record(double sample);

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// A snapshot/merge/export container of named metrics: monotonic
/// counters, point-in-time gauges, and fixed-bucket histograms, all keyed
/// by dotted lowercase names ("trace.suppress", "channel.in_flight").
///
/// This is NOT the hot-path recorder — TraceSink counts events in a flat
/// array and materializes a registry on demand (SnapshotInto). The
/// registry's job is everything after the hot path: merging per-shard
/// snapshots, equality checks in golden tests, and exporting to JSON or
/// Prometheus text format. Deterministic by construction: sorted maps,
/// no timestamps.
class MetricsRegistry {
 public:
  /// Adds `delta` to a counter, creating it at zero first.
  void AddCounter(const std::string& name, int64_t delta);

  /// Sets a gauge to `value`, creating it if needed.
  void SetGauge(const std::string& name, double value);

  /// Adds `delta` to a gauge (the cross-shard merge semantics for
  /// additive gauges like queue depths), creating it at zero first.
  void AddToGauge(const std::string& name, double delta);

  /// Records `sample` into a histogram, creating it with `boundaries` on
  /// first use. Later calls ignore `boundaries` (the first shape wins).
  void RecordHistogram(const std::string& name,
                       const std::vector<double>& boundaries, double sample);

  /// Folds a whole histogram in at once (bucket counts, count, sum) —
  /// inserting it, or bucket-merging when one with the same boundaries
  /// already exists. Mismatched boundary shapes keep the existing one.
  void MergeHistogram(const std::string& name,
                      const HistogramSnapshot& histogram);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  bool has_gauge(const std::string& name) const {
    return gauges_.contains(name);
  }
  const HistogramSnapshot* histogram(const std::string& name) const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramSnapshot>& histograms() const {
    return histograms_;
  }

  /// Folds another registry into this one: counters sum, gauges sum
  /// (shard gauges are additive partial values), histograms with equal
  /// boundaries merge bucket-wise (mismatched shapes keep the first).
  void MergeFrom(const MetricsRegistry& other);

  /// True when every counter, gauge, and histogram matches exactly — the
  /// snapshot-equality predicate the shard-invariance tests use.
  friend bool operator==(const MetricsRegistry&,
                         const MetricsRegistry&) = default;

  /// True when the counter maps match exactly. Replaying a trace can
  /// reproduce every event-derived counter but not gauges sampled from
  /// live component state; golden tests compare this subset.
  bool SameCounters(const MetricsRegistry& other) const {
    return counters_ == other.counters_;
  }

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with keys in sorted order.
  std::string ToJson() const;

  /// Prometheus text exposition format. Metric names are prefixed with
  /// `prefix` and dots become underscores; counters get a _total suffix.
  std::string ToPrometheus(const std::string& prefix = "dkf") const;

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

}  // namespace dkf

#endif  // DKF_OBS_METRICS_REGISTRY_H_
