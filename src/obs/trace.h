#ifndef DKF_OBS_TRACE_H_
#define DKF_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dkf {

// Compile-out switch for the observability layer. The sink interface and
// the registry are always compiled (so wiring code never needs #ifdefs),
// but with -DDKF_OBS_DISABLED (CMake option DKF_OBS=OFF) every emission
// site collapses to a no-op and tracing has zero cost.
#if defined(DKF_OBS_DISABLED)
#define DKF_OBS_ENABLED 0
#else
#define DKF_OBS_ENABLED 1
#endif

/// Everything the protocol can do that is worth observing. One enumerator
/// per event keeps the hot-path recorder a single array increment; the
/// string names live in TraceEventKindName (exporters only).
///
/// The enumerator order is part of the trace format (golden tests pin
/// event sequences by name, counters are exported by name) — append new
/// kinds at the end.
enum class TraceEventKind : uint8_t {
  // Source-side protocol decisions.
  kSuppress = 0,        // deviation within delta; nothing sent
  kTransmit,            // measurement sent (deviation exceeded delta)
  kSendDropped,         // measurement definitely lost (reliable-ACK drop)
  kDivergence,          // ambiguous ACK; node entered pending-resync
  kResyncSent,          // full-state snapshot transmitted
  kHeal,                // resync ACKed; node left the pending state
  kHeartbeatSent,       // liveness beacon transmitted

  // Server-side ingress outcomes.
  kUpdateApplied,       // measurement passed validation, corrected KF_s
  kResyncApplied,       // snapshot imported + in-flight ticks replayed
  kHeartbeatReceived,   // fresh heartbeat refreshed liveness
  kCorruptReject,       // wire checksum mismatch
  kStaleReject,         // duplicate / out-of-order / late message
  kDegradedTick,        // a tick served degraded (no delta guarantee)

  // Channel fault injections.
  kChannelDrop,         // Bernoulli or Gilbert-Elliott loss
  kChannelOutage,       // lost to a scheduled outage window
  kChannelCorrupt,      // payload corrupted in flight
  kChannelDelay,        // parked in the in-flight queue
  kChannelAckLoss,      // delivered but the ACK was lost

  // Filter fast-path transitions.
  kFastPathFreeze,      // steady-state detected; gain/covariance frozen
  kFastPathDisarm,      // cadence break / reconfig left the fast path

  // Serving layer (src/serve/) lifecycle + delivery.
  kSubscribe,           // a standing subscription attached
  kNotify,              // one notification entered a batch
  kNotifyDrop,          // backpressure evicted an undrained batch

  // Global delta governor (src/governor/) epochs + allocations.
  kGovernorEpoch,       // one allocation epoch ran (source_id = -1)
  kDeltaRaise,          // governor widened a source's delta
  kDeltaLower,          // governor tightened a source's delta
  kGovernorFreeze,      // unhealthy source excluded + held at last delta

  // Online noise adaptation (filter/adaptive_noise.h). Emitted by both
  // link endpoints; value = r_scale, aux = q_scale after the correction.
  kNoiseAdapt,          // a correction moved the Q/R servo
  kAdaptFreeze,         // holdover gap: statistics re-seeded, no movement

  // Multi-sensor fusion groups (src/fusion/, docs/fusion.md). Member
  // events carry the member's source id; group-level events carry the
  // group's negative serve key (FusedSourceKey).
  kFusedSuppress,       // member reading within delta of the fused mirror
  kFusedUpdate,         // member correction applied to the fused posterior
  kFusedBroadcast,      // posterior re-lock broadcast to the members

  kCount,  // sentinel, not a real event
};

inline constexpr int kNumTraceEventKinds =
    static_cast<int>(TraceEventKind::kCount);

/// Which component emitted the event. Disambiguates e.g. the mirror
/// filter's freeze from the server filter's freeze at the same step.
enum class TraceActor : uint8_t {
  kSource = 0,
  kServer,
  kChannel,
  kSourceFilter,
  kServerFilter,
  kServe,
  kGovernor,
  kCount,  // sentinel
};

/// One observed protocol event. 32 bytes, trivially copyable — the shape
/// the per-shard ring buffers store millions of.
///
/// `value` and `detail` are kind-specific:
///   suppress/transmit: value = measured deviation, aux = the threshold
///     it was tested against (delta, or 1.0 for per-component ratios);
///   resync_applied: value = in-flight ticks replayed;
///   channel_delay: value = delay in ticks;
///   heal: value = episode length in ticks;
///   fast_path_freeze: value = frozen cycle period;
///   sends/rejects: detail = wire sequence number.
struct TraceEvent {
  int64_t step = 0;
  int32_t source_id = 0;
  TraceEventKind kind = TraceEventKind::kSuppress;
  TraceActor actor = TraceActor::kSource;
  double value = 0.0;
  double aux = 0.0;
  int64_t detail = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Stable lower_snake name of an event kind ("suppress", "transmit", ...).
const char* TraceEventKindName(TraceEventKind kind);

/// Stable name of an actor ("source", "server", "channel", ...).
const char* TraceActorName(TraceActor actor);

/// One-line canonical rendering of an event — the format golden tests pin:
///   "<step> <source_id> <kind> <actor> <value> <aux> <detail>"
/// with doubles in shortest round-trip form.
std::string FormatTraceEvent(const TraceEvent& event);

/// Renders a trace as a JSON array of event objects.
std::string TraceToJson(const std::vector<TraceEvent>& events);

}  // namespace dkf

#endif  // DKF_OBS_TRACE_H_
