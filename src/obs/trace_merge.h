#ifndef DKF_OBS_TRACE_MERGE_H_
#define DKF_OBS_TRACE_MERGE_H_

#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace dkf {

/// Merges per-shard traces into one deterministic stream, stably sorted
/// by (step, source_id).
///
/// Why this is enough for bit-identical merges at any shard count: each
/// source lives on exactly one shard, every event names its source, and
/// the runtime's determinism contract (per-source RNG streams, fixed
/// per-tick order inside a shard) makes the *per-source* event sequence
/// invariant under the shard layout. Sorting by (step, source_id) groups
/// each source's events per tick; the stable sort preserves their
/// shard-local emission order inside the group — which is exactly the
/// per-source order. Events of different sources at the same step end up
/// in source-id order regardless of which shards emitted them.
///
/// Caveat: a wrapped ring buffer drops the *oldest* events of its own
/// shard, and different layouts wrap differently — size ObsOptions::
/// ring_capacity above the run's event count when merged traces must be
/// compared exactly (the dropped_events counter says when this bit).
std::vector<TraceEvent> MergeTraces(
    const std::vector<std::vector<TraceEvent>>& per_shard);

/// Rebuilds the event-derived metrics from a trace: one "trace.<kind>"
/// counter increment per event plus the derived rate gauges. A complete
/// trace (no ring overflow) replays into a registry whose counters match
/// the live sinks' merged snapshot exactly — the golden-trace tests pin
/// this round trip.
void ReplayTrace(const std::vector<TraceEvent>& events,
                 MetricsRegistry* registry);

}  // namespace dkf

#endif  // DKF_OBS_TRACE_MERGE_H_
