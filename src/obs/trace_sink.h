#ifndef DKF_OBS_TRACE_SINK_H_
#define DKF_OBS_TRACE_SINK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace dkf {

/// Sink configuration.
struct ObsOptions {
  /// Capacity of the event ring buffer. When a run emits more events
  /// than this, the oldest are overwritten (counted in dropped_events);
  /// the per-kind counters stay exact regardless. Shard-invariance tests
  /// must size this above the run's total event count — a wrapped ring
  /// keeps a different window per shard layout.
  size_t ring_capacity = 1 << 16;

  /// Record wall-clock timings (per-tick latency histograms, resync
  /// episode durations in wall time). Off by default because timings are
  /// nondeterministic and would break snapshot bit-equality across runs;
  /// benches turn it on via --trace.
  bool record_timing = false;
};

/// The hot-path event recorder: one per StreamManager / per shard, written
/// only by the thread driving that component's tick (the same contract as
/// every other per-shard object — see runtime/shard.h), read between
/// ticks.
///
/// Emit is an array increment plus a ring-slot write — no strings, no
/// locks, no allocation after construction. Components hold a nullable
/// TraceSink* and emit through the DKF_TRACE macro below, so an unwired
/// component pays one branch and a DKF_OBS=OFF build pays nothing.
class TraceSink {
 public:
  explicit TraceSink(const ObsOptions& options = ObsOptions());

  const ObsOptions& options() const { return options_; }

  void Emit(int64_t step, int32_t source_id, TraceEventKind kind,
            TraceActor actor, double value = 0.0, double aux = 0.0,
            int64_t detail = 0) {
#if DKF_OBS_ENABLED
    ++kind_counts_[static_cast<size_t>(kind)];
    TraceEvent& slot = ring_[next_];
    slot.step = step;
    slot.source_id = source_id;
    slot.kind = kind;
    slot.actor = actor;
    slot.value = value;
    slot.aux = aux;
    slot.detail = detail;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
#else
    (void)step, (void)source_id, (void)kind, (void)actor;
    (void)value, (void)aux, (void)detail;
#endif
  }

  /// Total emissions of one kind (exact even when the ring wrapped).
  int64_t count(TraceEventKind kind) const {
    return kind_counts_[static_cast<size_t>(kind)];
  }

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Events overwritten because the ring wrapped.
  int64_t dropped_events() const { return dropped_; }

  /// Number of retained events.
  size_t size() const { return size_; }

  /// Sets a named gauge (sampled component state like queue depth). Off
  /// the per-event hot path — called at most once per tick.
  void SetGauge(const std::string& name, double value);

  /// Records one tick's wall-clock latency. No-op unless
  /// options().record_timing (timings are nondeterministic).
  void RecordTickLatencyNs(double nanoseconds);

  /// Folds this sink's state into `registry`: every kind count as counter
  /// "trace.<kind>", ring overflow as "trace.dropped_events", gauges
  /// added (additive across shards), histograms merged, plus the derived
  /// gauge "suppression_ratio" = suppress / (suppress + transmit)
  /// recomputed on the merged counters.
  void SnapshotInto(MetricsRegistry* registry) const;

  /// Convenience: a fresh registry holding only this sink's snapshot.
  MetricsRegistry Snapshot() const;

  /// Clears events, counts, gauges, and histograms (options stay).
  void Reset();

  /// Current gauge values (for checkpointing; the hot path never reads
  /// them).
  const std::map<std::string, double>& gauges() const { return gauges_; }

  /// Overwrites this sink with checkpointed observability state: `events`
  /// fill the ring oldest-first (only the newest ring_capacity are kept,
  /// the spill counted as dropped on top of `dropped`), `kind_counts`
  /// restore the exact per-kind totals, and `gauges` replace the gauge
  /// map. Timing histograms are not restored — they are nondeterministic
  /// by design and excluded from snapshots.
  void RestoreForCheckpoint(const std::vector<TraceEvent>& events,
                            const std::array<int64_t, kNumTraceEventKinds>&
                                kind_counts,
                            int64_t dropped,
                            const std::map<std::string, double>& gauges);

 private:
  ObsOptions options_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  size_t size_ = 0;
  int64_t dropped_ = 0;
  std::array<int64_t, kNumTraceEventKinds> kind_counts_{};
  std::map<std::string, double> gauges_;
  HistogramSnapshot tick_latency_;
};

/// Recomputes the derived gauges ("suppression_ratio",
/// "degraded_tick_rate") from the registry's own counters. Idempotent;
/// callers merging several snapshots re-derive on the merged counters.
void DeriveRates(MetricsRegistry* registry);

// Emission macro for instrumented components: one pointer test when the
// observability layer is compiled in, nothing at all when it is not
// (arguments are not evaluated).
#if DKF_OBS_ENABLED
#define DKF_TRACE(sink, ...)                           \
  do {                                                 \
    if ((sink) != nullptr) (sink)->Emit(__VA_ARGS__);  \
  } while (0)
#else
#define DKF_TRACE(sink, ...) \
  do {                       \
    (void)(sink);            \
  } while (0)
#endif

}  // namespace dkf

#endif  // DKF_OBS_TRACE_SINK_H_
