#include "obs/metrics_registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace dkf {

void HistogramSnapshot::Record(double sample) {
  if (counts.size() != boundaries.size() + 1) {
    counts.assign(boundaries.size() + 1, 0);
  }
  size_t bucket = boundaries.size();  // +Inf bucket by default
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (sample <= boundaries[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  ++count;
  sum += sample;
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::AddToGauge(const std::string& name, double delta) {
  gauges_[name] += delta;
}

void MetricsRegistry::RecordHistogram(const std::string& name,
                                      const std::vector<double>& boundaries,
                                      double sample) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot histogram;
    histogram.boundaries = boundaries;
    histogram.counts.assign(boundaries.size() + 1, 0);
    it = histograms_.emplace(name, std::move(histogram)).first;
  }
  it->second.Record(sample);
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const HistogramSnapshot* MetricsRegistry::histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const HistogramSnapshot& histogram) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_[name] = histogram;
    return;
  }
  HistogramSnapshot& mine = it->second;
  if (mine.boundaries != histogram.boundaries ||
      mine.counts.size() != histogram.counts.size()) {
    return;  // incompatible shapes: keep the first
  }
  for (size_t i = 0; i < mine.counts.size(); ++i) {
    mine.counts[i] += histogram.counts[i];
  }
  mine.count += histogram.count;
  mine.sum += histogram.sum;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] += value;
  for (const auto& [name, histogram] : other.histograms_) {
    MergeHistogram(name, histogram);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(value));
    first = false;
  }
  out += first ? "},\n  \"gauges\": {" : "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",", name.c_str(),
                     DoubleToString(value).c_str());
    first = false;
  }
  out += first ? "},\n  \"histograms\": {" : "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    std::string boundaries, counts;
    for (size_t i = 0; i < histogram.boundaries.size(); ++i) {
      boundaries += StrFormat(
          "%s%s", i == 0 ? "" : ", ",
          DoubleToString(histogram.boundaries[i]).c_str());
    }
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      counts += StrFormat("%s%lld", i == 0 ? "" : ", ",
                          static_cast<long long>(histogram.counts[i]));
    }
    out += StrFormat(
        "%s\n    \"%s\": {\"boundaries\": [%s], \"counts\": [%s], "
        "\"count\": %lld, \"sum\": %s}",
        first ? "" : ",", name.c_str(), boundaries.c_str(), counts.c_str(),
        static_cast<long long>(histogram.count),
        DoubleToString(histogram.sum).c_str());
    first = false;
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

namespace {

/// "trace.suppress" -> "dkf_trace_suppress".
std::string PromName(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? name : prefix + "_" + name;
  std::replace(out.begin(), out.end(), '.', '_');
  std::replace(out.begin(), out.end(), '-', '_');
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus(const std::string& prefix) const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    const std::string metric = PromName(prefix, name) + "_total";
    out += StrFormat("# TYPE %s counter\n%s %lld\n", metric.c_str(),
                     metric.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges_) {
    const std::string metric = PromName(prefix, name);
    out += StrFormat("# TYPE %s gauge\n%s %s\n", metric.c_str(),
                     metric.c_str(), DoubleToString(value).c_str());
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = PromName(prefix, name);
    out += StrFormat("# TYPE %s histogram\n", metric.c_str());
    int64_t cumulative = 0;
    for (size_t i = 0; i < histogram.boundaries.size(); ++i) {
      cumulative += i < histogram.counts.size() ? histogram.counts[i] : 0;
      out += StrFormat("%s_bucket{le=\"%s\"} %lld\n", metric.c_str(),
                       DoubleToString(histogram.boundaries[i]).c_str(),
                       static_cast<long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", metric.c_str(),
                     static_cast<long long>(histogram.count));
    out += StrFormat("%s_sum %s\n%s_count %lld\n", metric.c_str(),
                     DoubleToString(histogram.sum).c_str(), metric.c_str(),
                     static_cast<long long>(histogram.count));
  }
  return out;
}

}  // namespace dkf
