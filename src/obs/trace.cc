#include "obs/trace.h"

#include "common/string_util.h"

namespace dkf {

namespace {

constexpr const char* kKindNames[kNumTraceEventKinds] = {
    "suppress",
    "transmit",
    "send_dropped",
    "divergence",
    "resync_sent",
    "heal",
    "heartbeat_sent",
    "update_applied",
    "resync_applied",
    "heartbeat_received",
    "corrupt_reject",
    "stale_reject",
    "degraded_tick",
    "channel_drop",
    "channel_outage",
    "channel_corrupt",
    "channel_delay",
    "channel_ack_loss",
    "fast_path_freeze",
    "fast_path_disarm",
    "subscribe",
    "notify",
    "notify_drop",
    "governor_epoch",
    "delta_raise",
    "delta_lower",
    "governor_freeze",
    "noise_adapt",
    "adapt_freeze",
    "fused_suppress",
    "fused_update",
    "fused_broadcast",
};

constexpr const char* kActorNames[static_cast<int>(TraceActor::kCount)] = {
    "source", "server", "channel", "source_filter", "server_filter", "serve",
    "governor",
};

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  const int index = static_cast<int>(kind);
  if (index < 0 || index >= kNumTraceEventKinds) return "unknown";
  return kKindNames[index];
}

const char* TraceActorName(TraceActor actor) {
  const int index = static_cast<int>(actor);
  if (index < 0 || index >= static_cast<int>(TraceActor::kCount)) {
    return "unknown";
  }
  return kActorNames[index];
}

std::string FormatTraceEvent(const TraceEvent& event) {
  return StrFormat("%lld %d %s %s %s %s %lld",
                   static_cast<long long>(event.step), event.source_id,
                   TraceEventKindName(event.kind), TraceActorName(event.actor),
                   DoubleToString(event.value).c_str(),
                   DoubleToString(event.aux).c_str(),
                   static_cast<long long>(event.detail));
}

std::string TraceToJson(const std::vector<TraceEvent>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += StrFormat(
        "%s\n  {\"step\": %lld, \"source\": %d, \"kind\": \"%s\", "
        "\"actor\": \"%s\", \"value\": %s, \"aux\": %s, \"detail\": %lld}",
        i == 0 ? "" : ",", static_cast<long long>(e.step), e.source_id,
        TraceEventKindName(e.kind), TraceActorName(e.actor),
        DoubleToString(e.value).c_str(), DoubleToString(e.aux).c_str(),
        static_cast<long long>(e.detail));
  }
  out += events.empty() ? "]" : "\n]";
  return out;
}

}  // namespace dkf
