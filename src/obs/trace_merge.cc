#include "obs/trace_merge.h"

#include <algorithm>
#include <string>

#include "obs/trace_sink.h"

namespace dkf {

std::vector<TraceEvent> MergeTraces(
    const std::vector<std::vector<TraceEvent>>& per_shard) {
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  std::vector<TraceEvent> merged;
  merged.reserve(total);
  for (const auto& shard : per_shard) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.step != b.step) return a.step < b.step;
                     return a.source_id < b.source_id;
                   });
  return merged;
}

void ReplayTrace(const std::vector<TraceEvent>& events,
                 MetricsRegistry* registry) {
  for (const TraceEvent& event : events) {
    registry->AddCounter(
        std::string("trace.") + TraceEventKindName(event.kind), 1);
  }
  // Touch every kind so a replayed registry has the same (possibly zero)
  // counter set as a live snapshot.
  for (int i = 0; i < kNumTraceEventKinds; ++i) {
    registry->AddCounter(
        std::string("trace.") +
            TraceEventKindName(static_cast<TraceEventKind>(i)),
        0);
  }
  registry->AddCounter("trace.dropped_events", 0);
  DeriveRates(registry);
}

}  // namespace dkf
