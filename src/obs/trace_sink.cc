#include "obs/trace_sink.h"

#include <algorithm>

namespace dkf {

namespace {

/// Fixed bucket edges for the per-tick latency histogram, in
/// nanoseconds: 1us .. 100ms in decades. Fixed (rather than adaptive)
/// buckets keep merged histograms well-defined across shards.
const std::vector<double>& LatencyBoundariesNs() {
  static const std::vector<double> kBoundaries = {1e3, 1e4, 1e5, 1e6,
                                                  1e7, 1e8};
  return kBoundaries;
}

}  // namespace

TraceSink::TraceSink(const ObsOptions& options) : options_(options) {
  ring_.resize(std::max<size_t>(options_.ring_capacity, 1));
  tick_latency_.boundaries = LatencyBoundariesNs();
  tick_latency_.counts.assign(tick_latency_.boundaries.size() + 1, 0);
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::vector<TraceEvent> events;
  events.reserve(size_);
  // Oldest first: when the ring wrapped, the oldest slot is `next_`.
  const size_t start = size_ < ring_.size() ? 0 : next_;
  for (size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(start + i) % ring_.size()]);
  }
  return events;
}

void TraceSink::SetGauge(const std::string& name, double value) {
#if DKF_OBS_ENABLED
  gauges_[name] = value;
#else
  (void)name, (void)value;
#endif
}

void TraceSink::RecordTickLatencyNs(double nanoseconds) {
#if DKF_OBS_ENABLED
  if (options_.record_timing) tick_latency_.Record(nanoseconds);
#else
  (void)nanoseconds;
#endif
}

void TraceSink::SnapshotInto(MetricsRegistry* registry) const {
  for (int i = 0; i < kNumTraceEventKinds; ++i) {
    registry->AddCounter(
        std::string("trace.") +
            TraceEventKindName(static_cast<TraceEventKind>(i)),
        kind_counts_[static_cast<size_t>(i)]);
  }
  registry->AddCounter("trace.dropped_events", dropped_);
  for (const auto& [name, value] : gauges_) {
    registry->AddToGauge(name, value);
  }
  if (tick_latency_.count > 0) {
    registry->MergeHistogram("tick_latency_ns", tick_latency_);
  }
  DeriveRates(registry);
}

MetricsRegistry TraceSink::Snapshot() const {
  MetricsRegistry registry;
  SnapshotInto(&registry);
  return registry;
}

void TraceSink::Reset() {
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
  kind_counts_.fill(0);
  gauges_.clear();
  tick_latency_.counts.assign(tick_latency_.boundaries.size() + 1, 0);
  tick_latency_.count = 0;
  tick_latency_.sum = 0.0;
}

void TraceSink::RestoreForCheckpoint(
    const std::vector<TraceEvent>& events,
    const std::array<int64_t, kNumTraceEventKinds>& kind_counts,
    int64_t dropped, const std::map<std::string, double>& gauges) {
  Reset();
  const size_t capacity = ring_.size();
  const size_t spill = events.size() > capacity ? events.size() - capacity : 0;
  for (size_t i = spill; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    TraceEvent& slot = ring_[next_];
    slot = event;
    next_ = next_ + 1 == capacity ? 0 : next_ + 1;
    if (size_ < capacity) ++size_;
  }
  kind_counts_ = kind_counts;
  dropped_ = dropped + static_cast<int64_t>(spill);
  gauges_ = gauges;
}

void DeriveRates(MetricsRegistry* registry) {
  const int64_t suppressed = registry->counter("trace.suppress");
  const int64_t transmitted = registry->counter("trace.transmit");
  if (suppressed + transmitted > 0) {
    registry->SetGauge("suppression_ratio",
                       static_cast<double>(suppressed) /
                           static_cast<double>(suppressed + transmitted));
  }
  const int64_t degraded = registry->counter("trace.degraded_tick");
  if (suppressed + transmitted > 0) {
    registry->SetGauge("degraded_tick_rate",
                       static_cast<double>(degraded) /
                           static_cast<double>(suppressed + transmitted));
  }
}

}  // namespace dkf
