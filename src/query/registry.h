#ifndef DKF_QUERY_REGISTRY_H_
#define DKF_QUERY_REGISTRY_H_

#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/query.h"

namespace dkf {

/// Tracks the continuous queries registered with the server and derives
/// the per-source precision width delta_i each source's filter pair must
/// honor.
///
/// The paper assumes one query per source (Delta_j = delta_i, §3.1); this
/// registry implements the natural multi-query generalization: a source
/// serving several queries must satisfy the *tightest* one, so
/// delta_i = min_j Delta_j over the queries on source i. Likewise the
/// effective smoothing factor is the smallest requested F (least
/// smoothing-induced lag... smallest F smooths hardest, so the choice is
/// conservative toward the least sensitive query; queries needing raw
/// sensitivity should use a separate source binding).
class QueryRegistry {
 public:
  /// Registers a query. Errors when the id already exists or the
  /// precision is not positive.
  Status AddQuery(const ContinuousQuery& query);

  /// Removes a query by id.
  Status RemoveQuery(int query_id);

  /// The tightest precision over the source's active queries.
  Result<double> EffectiveDelta(int source_id) const;

  /// Smallest requested smoothing factor on the source, if any query asked
  /// for smoothing.
  Result<std::optional<double>> EffectiveSmoothing(int source_id) const;

  /// All queries bound to a source.
  std::vector<ContinuousQuery> QueriesForSource(int source_id) const;

  /// Ids of all sources with at least one active query.
  std::vector<int> ActiveSources() const;

  /// Registers a fused query (docs/fusion.md). Ids share one namespace
  /// with plain queries: a fused query may not reuse a plain query's id
  /// or vice versa. Errors when the id exists or precision is not
  /// positive.
  Status AddFusedQuery(const FusedQuery& query);

  /// Removes a fused query by id.
  Status RemoveFusedQuery(int query_id);

  /// The tightest precision over the group's active fused queries.
  Result<double> EffectiveFusedDelta(int group_id) const;

  /// All fused queries bound to a group.
  std::vector<FusedQuery> FusedQueriesForGroup(int group_id) const;

  /// Ids of all fusion groups with at least one active fused query.
  std::vector<int> ActiveGroups() const;

  size_t size() const { return queries_.size() + fused_queries_.size(); }
  size_t num_fused() const { return fused_queries_.size(); }

 private:
  std::map<int, ContinuousQuery> queries_;  // by query id
  /// source id -> its query ids (ascending). Every per-source question
  /// above answers from this index; without it, registering a
  /// million-source fleet one query at a time is quadratic in the fleet
  /// size (each Add's reconfigure would rescan every query).
  std::map<int, std::set<int>> by_source_;
  std::map<int, FusedQuery> fused_queries_;  // by query id
  std::map<int, std::set<int>> by_group_;    // group id -> fused query ids
};

}  // namespace dkf

#endif  // DKF_QUERY_REGISTRY_H_
