#ifndef DKF_QUERY_AGGREGATE_H_
#define DKF_QUERY_AGGREGATE_H_

#include <vector>

#include "common/result.h"

namespace dkf {

/// A continuous SUM query over several scalar sources (§6 future-work
/// item "tuning system parameters for multiple queries with multiple
/// attributes"): the server must answer sum_i v_i within `precision` of
/// the true sum at all times.
struct AggregateQuery {
  int id = 0;
  std::vector<int> source_ids;
  double precision = 1.0;
};

/// Splits an aggregate precision budget into per-source deltas.
///
/// Soundness: per-source suppression guarantees |e_i| <= delta_i on every
/// tick, so |sum e_i| <= sum delta_i; any split with sum delta_i ==
/// precision answers the aggregate within its constraint. The split is
/// proportional to `weights` (volatile sources deserve wider slices —
/// they would otherwise dominate the update bill); empty weights mean a
/// uniform split.
Result<std::vector<double>> SplitAggregatePrecision(
    const AggregateQuery& query,
    const std::vector<double>& weights = {});

}  // namespace dkf

#endif  // DKF_QUERY_AGGREGATE_H_
