#ifndef DKF_QUERY_QUERY_H_
#define DKF_QUERY_QUERY_H_

#include <optional>
#include <string>

namespace dkf {

/// Query ids at or above this value are reserved for the synthetic
/// per-source members an aggregate query is split into; user queries
/// must stay below it, and the single-query removal path refuses to
/// touch the reserved range (members are managed through their
/// aggregate). Shared by StreamManager and the sharded runtime so both
/// carve up the id space identically.
inline constexpr int kReservedQueryIdBase = 1 << 24;

/// What a continuous query targets: one source's own stream (the
/// paper's Table 2 shape) or the fused posterior of a multi-sensor
/// fusion group (docs/fusion.md).
enum class QueryType {
  kPoint = 0,
  kFused,
};

/// A continuous query q_j over one streaming source (Table 2): the user
/// asks for the source's current attribute value, tolerating answers
/// within `precision` of the truth, optionally asking for KF_c-smoothed
/// semantics with sensitivity `smoothing_factor` (F_i).
struct ContinuousQuery {
  int id = 0;
  int source_id = 0;
  /// Precision width Delta_j: the server answer must stay within this of
  /// the source value.
  double precision = 1.0;
  /// Optional smoothing factor F for noisy streams (§4.3).
  std::optional<double> smoothing_factor;
  /// Free-form label for reports.
  std::string description;
};

/// A continuous query (QueryType::kFused) against the fused posterior of
/// a registered FusionGroup: the answer is the group estimate, and the
/// precision width becomes the group's event-trigger threshold — every
/// member suppresses readings that would move the *fused* estimate by
/// less than the tightest fused precision (docs/fusion.md).
struct FusedQuery {
  int id = 0;
  int group_id = 0;
  /// Precision width Delta_j for the fused answer.
  double precision = 1.0;
  /// Free-form label for reports.
  std::string description;
};

}  // namespace dkf

#endif  // DKF_QUERY_QUERY_H_
