#ifndef DKF_QUERY_QUERY_H_
#define DKF_QUERY_QUERY_H_

#include <optional>
#include <string>

namespace dkf {

/// A continuous query q_j over one streaming source (Table 2): the user
/// asks for the source's current attribute value, tolerating answers
/// within `precision` of the truth, optionally asking for KF_c-smoothed
/// semantics with sensitivity `smoothing_factor` (F_i).
struct ContinuousQuery {
  int id = 0;
  int source_id = 0;
  /// Precision width Delta_j: the server answer must stay within this of
  /// the source value.
  double precision = 1.0;
  /// Optional smoothing factor F for noisy streams (§4.3).
  std::optional<double> smoothing_factor;
  /// Free-form label for reports.
  std::string description;
};

}  // namespace dkf

#endif  // DKF_QUERY_QUERY_H_
