#include "query/aggregate.h"

#include <set>

#include "common/string_util.h"

namespace dkf {

Result<std::vector<double>> SplitAggregatePrecision(
    const AggregateQuery& query, const std::vector<double>& weights) {
  if (query.source_ids.empty()) {
    return Status::InvalidArgument("aggregate needs at least one source");
  }
  if (query.precision <= 0.0) {
    return Status::InvalidArgument("aggregate precision must be positive");
  }
  std::set<int> unique(query.source_ids.begin(), query.source_ids.end());
  if (unique.size() != query.source_ids.size()) {
    return Status::InvalidArgument("duplicate source in aggregate");
  }
  if (!weights.empty() && weights.size() != query.source_ids.size()) {
    return Status::InvalidArgument(
        StrFormat("%zu weights for %zu sources", weights.size(),
                  query.source_ids.size()));
  }

  const size_t n = query.source_ids.size();
  std::vector<double> deltas(n);
  if (weights.empty()) {
    for (double& delta : deltas) {
      delta = query.precision / static_cast<double>(n);
    }
    return deltas;
  }
  double total = 0.0;
  for (double w : weights) {
    if (w <= 0.0) {
      return Status::InvalidArgument("weights must be positive");
    }
    total += w;
  }
  for (size_t i = 0; i < n; ++i) {
    deltas[i] = query.precision * weights[i] / total;
  }
  return deltas;
}

}  // namespace dkf
