#include "query/registry.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace dkf {

Status QueryRegistry::AddQuery(const ContinuousQuery& query) {
  if (query.precision <= 0.0) {
    return Status::InvalidArgument("query precision must be positive");
  }
  if (query.smoothing_factor.has_value() && *query.smoothing_factor <= 0.0) {
    return Status::InvalidArgument("smoothing factor must be positive");
  }
  if (queries_.contains(query.id)) {
    return Status::AlreadyExists(
        StrFormat("query %d already registered", query.id));
  }
  queries_[query.id] = query;
  return Status::OK();
}

Status QueryRegistry::RemoveQuery(int query_id) {
  if (queries_.erase(query_id) == 0) {
    return Status::NotFound(StrFormat("query %d not registered", query_id));
  }
  return Status::OK();
}

Result<double> QueryRegistry::EffectiveDelta(int source_id) const {
  double best = 0.0;
  bool found = false;
  for (const auto& [id, query] : queries_) {
    if (query.source_id != source_id) continue;
    best = found ? std::min(best, query.precision) : query.precision;
    found = true;
  }
  if (!found) {
    return Status::NotFound(
        StrFormat("no queries on source %d", source_id));
  }
  return best;
}

Result<std::optional<double>> QueryRegistry::EffectiveSmoothing(
    int source_id) const {
  std::optional<double> best;
  bool any_query = false;
  for (const auto& [id, query] : queries_) {
    if (query.source_id != source_id) continue;
    any_query = true;
    if (query.smoothing_factor.has_value()) {
      best = best.has_value() ? std::min(*best, *query.smoothing_factor)
                              : *query.smoothing_factor;
    }
  }
  if (!any_query) {
    return Status::NotFound(
        StrFormat("no queries on source %d", source_id));
  }
  return best;
}

std::vector<ContinuousQuery> QueryRegistry::QueriesForSource(
    int source_id) const {
  std::vector<ContinuousQuery> out;
  for (const auto& [id, query] : queries_) {
    if (query.source_id == source_id) out.push_back(query);
  }
  return out;
}

std::vector<int> QueryRegistry::ActiveSources() const {
  std::set<int> sources;
  for (const auto& [id, query] : queries_) sources.insert(query.source_id);
  return std::vector<int>(sources.begin(), sources.end());
}

}  // namespace dkf
