#include "query/registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace dkf {

Status QueryRegistry::AddQuery(const ContinuousQuery& query) {
  if (query.precision <= 0.0) {
    return Status::InvalidArgument("query precision must be positive");
  }
  if (query.smoothing_factor.has_value() && *query.smoothing_factor <= 0.0) {
    return Status::InvalidArgument("smoothing factor must be positive");
  }
  if (queries_.contains(query.id) || fused_queries_.contains(query.id)) {
    return Status::AlreadyExists(
        StrFormat("query %d already registered", query.id));
  }
  queries_[query.id] = query;
  by_source_[query.source_id].insert(query.id);
  return Status::OK();
}

Status QueryRegistry::RemoveQuery(int query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrFormat("query %d not registered", query_id));
  }
  auto source_it = by_source_.find(it->second.source_id);
  source_it->second.erase(query_id);
  if (source_it->second.empty()) by_source_.erase(source_it);
  queries_.erase(it);
  return Status::OK();
}

Result<double> QueryRegistry::EffectiveDelta(int source_id) const {
  auto it = by_source_.find(source_id);
  if (it == by_source_.end()) {
    return Status::NotFound(
        StrFormat("no queries on source %d", source_id));
  }
  double best = 0.0;
  bool found = false;
  for (int query_id : it->second) {
    const double precision = queries_.at(query_id).precision;
    best = found ? std::min(best, precision) : precision;
    found = true;
  }
  return best;
}

Result<std::optional<double>> QueryRegistry::EffectiveSmoothing(
    int source_id) const {
  auto it = by_source_.find(source_id);
  if (it == by_source_.end()) {
    return Status::NotFound(
        StrFormat("no queries on source %d", source_id));
  }
  std::optional<double> best;
  for (int query_id : it->second) {
    const ContinuousQuery& query = queries_.at(query_id);
    if (query.smoothing_factor.has_value()) {
      best = best.has_value() ? std::min(*best, *query.smoothing_factor)
                              : *query.smoothing_factor;
    }
  }
  return best;
}

std::vector<ContinuousQuery> QueryRegistry::QueriesForSource(
    int source_id) const {
  std::vector<ContinuousQuery> out;
  auto it = by_source_.find(source_id);
  if (it == by_source_.end()) return out;
  for (int query_id : it->second) out.push_back(queries_.at(query_id));
  return out;
}

std::vector<int> QueryRegistry::ActiveSources() const {
  std::vector<int> sources;
  sources.reserve(by_source_.size());
  for (const auto& [source_id, ids] : by_source_) sources.push_back(source_id);
  return sources;
}

Status QueryRegistry::AddFusedQuery(const FusedQuery& query) {
  if (query.precision <= 0.0) {
    return Status::InvalidArgument("query precision must be positive");
  }
  if (queries_.contains(query.id) || fused_queries_.contains(query.id)) {
    return Status::AlreadyExists(
        StrFormat("query %d already registered", query.id));
  }
  fused_queries_[query.id] = query;
  by_group_[query.group_id].insert(query.id);
  return Status::OK();
}

Status QueryRegistry::RemoveFusedQuery(int query_id) {
  auto it = fused_queries_.find(query_id);
  if (it == fused_queries_.end()) {
    return Status::NotFound(
        StrFormat("fused query %d not registered", query_id));
  }
  auto group_it = by_group_.find(it->second.group_id);
  group_it->second.erase(query_id);
  if (group_it->second.empty()) by_group_.erase(group_it);
  fused_queries_.erase(it);
  return Status::OK();
}

Result<double> QueryRegistry::EffectiveFusedDelta(int group_id) const {
  auto it = by_group_.find(group_id);
  if (it == by_group_.end()) {
    return Status::NotFound(
        StrFormat("no fused queries on group %d", group_id));
  }
  double best = 0.0;
  bool found = false;
  for (int query_id : it->second) {
    const double precision = fused_queries_.at(query_id).precision;
    best = found ? std::min(best, precision) : precision;
    found = true;
  }
  return best;
}

std::vector<FusedQuery> QueryRegistry::FusedQueriesForGroup(
    int group_id) const {
  std::vector<FusedQuery> out;
  auto it = by_group_.find(group_id);
  if (it == by_group_.end()) return out;
  for (int query_id : it->second) out.push_back(fused_queries_.at(query_id));
  return out;
}

std::vector<int> QueryRegistry::ActiveGroups() const {
  std::vector<int> groups;
  groups.reserve(by_group_.size());
  for (const auto& [group_id, ids] : by_group_) groups.push_back(group_id);
  return groups;
}

}  // namespace dkf
