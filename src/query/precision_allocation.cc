#include "query/precision_allocation.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace dkf {

Result<AllocationPlan> AllocatePrecision(
    const std::vector<SourceLoadEstimate>& estimates,
    double budget_updates_per_tick) {
  if (estimates.empty()) {
    return Status::InvalidArgument("no sources to allocate for");
  }
  if (budget_updates_per_tick <= 0.0) {
    return Status::InvalidArgument("budget must be positive");
  }
  std::set<int> ids;
  for (const auto& estimate : estimates) {
    if (!ids.insert(estimate.source_id).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate source id %d", estimate.source_id));
    }
    if (estimate.required_precision <= 0.0 ||
        estimate.reference_precision <= 0.0) {
      return Status::InvalidArgument("precisions must be positive");
    }
    if (estimate.reference_rate < 0.0 || estimate.reference_rate > 1.0) {
      return Status::InvalidArgument(
          "reference rate must be a fraction in [0, 1]");
    }
  }

  // Predicted rate at the required precision under the ~1/delta law.
  auto rate_at = [](const SourceLoadEstimate& e, double delta) {
    // An update per tick is the ceiling regardless of precision.
    return std::min(1.0, e.reference_rate * e.reference_precision / delta);
  };

  double total_required = 0.0;
  for (const auto& estimate : estimates) {
    total_required += rate_at(estimate, estimate.required_precision);
  }

  AllocationPlan plan;
  plan.inflation = std::max(1.0, total_required / budget_updates_per_tick);

  plan.predicted_total_rate = 0.0;
  for (const auto& estimate : estimates) {
    PrecisionAllocation allocation;
    allocation.source_id = estimate.source_id;
    allocation.allocated_precision =
        estimate.required_precision * plan.inflation;
    allocation.predicted_rate =
        rate_at(estimate, allocation.allocated_precision);
    plan.predicted_total_rate += allocation.predicted_rate;
    plan.allocations.push_back(allocation);
  }
  return plan;
}

}  // namespace dkf
