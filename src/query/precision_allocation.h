#ifndef DKF_QUERY_PRECISION_ALLOCATION_H_
#define DKF_QUERY_PRECISION_ALLOCATION_H_

#include <vector>

#include "common/result.h"

namespace dkf {

/// Calibration data for one source: how chatty it is at a reference
/// precision. Update rates of threshold-suppressed streams scale roughly
/// inversely with the precision width (halving delta about doubles the
/// updates), which the allocator exploits as rate(delta) ~
/// reference_rate * reference_delta / delta.
struct SourceLoadEstimate {
  int source_id = 0;
  /// Tightest precision any query on the source requires (Delta).
  double required_precision = 1.0;
  /// Measured update rate (updates per tick, in [0, 1]) at
  /// `reference_precision`.
  double reference_rate = 0.1;
  double reference_precision = 1.0;
};

/// One source's allocation.
struct PrecisionAllocation {
  int source_id = 0;
  /// Precision width the source should run at. >= required_precision only
  /// when the bandwidth budget forces degradation.
  double allocated_precision = 1.0;
  /// Predicted update rate at the allocated precision.
  double predicted_rate = 0.0;
};

/// Result of an allocation round.
struct AllocationPlan {
  std::vector<PrecisionAllocation> allocations;
  /// Uniform inflation factor applied to the required precisions: 1 means
  /// every query constraint is met; >1 means the budget forced a
  /// proportional precision degradation (the STREAM trade-off of
  /// maximizing precision under a bandwidth constraint, inverted into our
  /// filtering framing).
  double inflation = 1.0;
  double predicted_total_rate = 0.0;
};

/// Picks per-source precision widths under a total update budget
/// (`budget_updates_per_tick`, summed across sources).
///
/// When the budget admits every source at its required precision, the
/// requirements are returned unchanged. Otherwise all precisions are
/// inflated by the common factor that brings the predicted total rate
/// down to the budget — degrading every query proportionally rather than
/// starving any single one.
Result<AllocationPlan> AllocatePrecision(
    const std::vector<SourceLoadEstimate>& estimates,
    double budget_updates_per_tick);

}  // namespace dkf

#endif  // DKF_QUERY_PRECISION_ALLOCATION_H_
