#ifndef DKF_QUERY_ADAPTIVE_FILTERS_H_
#define DKF_QUERY_ADAPTIVE_FILTERS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dkf {

/// Configuration of the Olston-et-al.-style adaptive filter bank [23] —
/// the STREAM-project baseline the paper builds on and compares against.
/// The paper's evaluation disables the dynamic bound growing/shrinking
/// ("we do not consider dynamic bound growing and shrinking in our
/// results as in [23]"); this implementation restores it so the ablation
/// bench can quantify exactly what that adaptivity buys, and how far
/// prediction-based suppression goes beyond it.
struct AdaptiveFiltersOptions {
  /// Total bound width shared by all sources (the precision budget the
  /// coordinator allocates). Each source i holds a bound of width w_i
  /// with sum(w_i) == total_width.
  double total_width = 10.0;

  /// Every `period` ticks each bound shrinks by this fraction and the
  /// reclaimed width is redistributed to the sources that need it most.
  double shrink_fraction = 0.05;
  int64_t period = 50;

  /// Bounds never shrink below this.
  double min_width = 1e-3;
};

/// Per-source running statistics.
struct AdaptiveFilterSourceStats {
  int64_t updates_sent = 0;
  double width = 0.0;  ///< current bound width w_i
};

/// A bank of cached-value filters over scalar streams with adaptive bound
/// reallocation.
///
/// Per tick, source i transmits when its reading exits the cached bound
/// [v_i - w_i/2, v_i + w_i/2]; the bound then recenters on the reading.
/// Periodically every bound shrinks by `shrink_fraction` and the
/// reclaimed width is redistributed proportionally to each source's
/// *burden* (updates sent in the last period per unit width), so volatile
/// streams earn wide bounds and quiet streams give theirs up — Olston's
/// adaptive precision-setting idea in its single-coordinator form.
class AdaptiveFilterBank {
 public:
  /// Starts with the budget split evenly across `num_sources`.
  static Result<AdaptiveFilterBank> Create(
      size_t num_sources, const AdaptiveFiltersOptions& options);

  /// Feeds one tick: `readings[i]` is source i's value. Returns per-source
  /// transmit flags.
  Result<std::vector<bool>> Step(const std::vector<double>& readings);

  /// The value the server answers for source i (bound center).
  double server_value(size_t i) const { return centers_[i]; }

  /// Current bound width of source i.
  double width(size_t i) const { return widths_[i]; }

  AdaptiveFilterSourceStats stats(size_t i) const;

  int64_t ticks() const { return ticks_; }
  size_t num_sources() const { return widths_.size(); }

  /// Sum of all widths — invariant: equals options.total_width.
  double TotalWidth() const;

 private:
  AdaptiveFilterBank(size_t num_sources,
                     const AdaptiveFiltersOptions& options);

  void Reallocate();

  AdaptiveFiltersOptions options_;
  std::vector<double> centers_;
  std::vector<double> widths_;
  std::vector<bool> initialized_;
  std::vector<int64_t> updates_total_;
  std::vector<int64_t> updates_this_period_;
  int64_t ticks_ = 0;
};

}  // namespace dkf

#endif  // DKF_QUERY_ADAPTIVE_FILTERS_H_
