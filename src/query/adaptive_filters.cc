#include "query/adaptive_filters.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dkf {

AdaptiveFilterBank::AdaptiveFilterBank(size_t num_sources,
                                       const AdaptiveFiltersOptions& options)
    : options_(options), centers_(num_sources, 0.0),
      widths_(num_sources,
              options.total_width / static_cast<double>(num_sources)),
      initialized_(num_sources, false), updates_total_(num_sources, 0),
      updates_this_period_(num_sources, 0) {}

Result<AdaptiveFilterBank> AdaptiveFilterBank::Create(
    size_t num_sources, const AdaptiveFiltersOptions& options) {
  if (num_sources == 0) {
    return Status::InvalidArgument("need at least one source");
  }
  if (options.total_width <= 0.0) {
    return Status::InvalidArgument("total width must be positive");
  }
  if (options.shrink_fraction <= 0.0 || options.shrink_fraction >= 1.0) {
    return Status::InvalidArgument("shrink fraction must be in (0, 1)");
  }
  if (options.period < 1) {
    return Status::InvalidArgument("period must be >= 1");
  }
  if (options.min_width <= 0.0 ||
      options.min_width * static_cast<double>(num_sources) >
          options.total_width) {
    return Status::InvalidArgument(
        "min_width must be positive and num_sources * min_width must fit "
        "in the budget");
  }
  return AdaptiveFilterBank(num_sources, options);
}

Result<std::vector<bool>> AdaptiveFilterBank::Step(
    const std::vector<double>& readings) {
  if (readings.size() != widths_.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu readings for %zu sources", readings.size(),
                  widths_.size()));
  }
  std::vector<bool> sent(readings.size(), false);
  for (size_t i = 0; i < readings.size(); ++i) {
    const double half = widths_[i] / 2.0;
    if (!initialized_[i] ||
        std::fabs(readings[i] - centers_[i]) > half) {
      // Violation: transmit and recenter (the paper's §5 description:
      // H_new = V + W/2, L_new = V - W/2).
      centers_[i] = readings[i];
      initialized_[i] = true;
      sent[i] = true;
      ++updates_total_[i];
      ++updates_this_period_[i];
    }
  }
  ++ticks_;
  if (ticks_ % options_.period == 0) Reallocate();
  return sent;
}

void AdaptiveFilterBank::Reallocate() {
  // Shrink every bound, pooling the reclaimed width.
  double pool = 0.0;
  for (double& w : widths_) {
    const double shrunk =
        std::max(options_.min_width, w * (1.0 - options_.shrink_fraction));
    pool += w - shrunk;
    w = shrunk;
  }
  if (pool <= 0.0) return;

  // Burden score: updates in the last period per unit of width — the
  // marginal benefit of widening this source's bound.
  std::vector<double> burden(widths_.size());
  double total_burden = 0.0;
  for (size_t i = 0; i < widths_.size(); ++i) {
    burden[i] =
        static_cast<double>(updates_this_period_[i]) / widths_[i];
    total_burden += burden[i];
    updates_this_period_[i] = 0;
  }
  if (total_burden <= 0.0) {
    // Nobody is paying updates: return the pool evenly.
    const double share = pool / static_cast<double>(widths_.size());
    for (double& w : widths_) w += share;
    return;
  }
  for (size_t i = 0; i < widths_.size(); ++i) {
    widths_[i] += pool * burden[i] / total_burden;
  }
}

AdaptiveFilterSourceStats AdaptiveFilterBank::stats(size_t i) const {
  AdaptiveFilterSourceStats stats;
  stats.updates_sent = updates_total_[i];
  stats.width = widths_[i];
  return stats;
}

double AdaptiveFilterBank::TotalWidth() const {
  double total = 0.0;
  for (double w : widths_) total += w;
  return total;
}

}  // namespace dkf
